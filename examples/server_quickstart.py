"""Serve an LSM database over TCP and talk to it with both clients.

Demonstrates the ``repro.server`` subsystem end to end:

1. open a DB with *background* compaction (the server's natural mode),
2. start the asyncio server on an ephemeral loopback port,
3. drive it with the blocking client — single calls and a pipeline,
4. drive it with the asyncio client — concurrent calls pipeline
   automatically on one connection,
5. read the per-opcode latency percentiles via the STATS opcode,
6. shut down gracefully (drains, flushes, compacts, closes the DB).

Run:  PYTHONPATH=src python examples/server_quickstart.py
"""

import asyncio

from repro.db import DB
from repro.devices import MemStorage
from repro.lsm import Options
from repro.server import AsyncClient, ServerThread, SyncClient


def sync_demo(host: str, port: int) -> None:
    with SyncClient(host, port) as client:
        assert client.ping(b"hello?") == b"hello?"
        client.put(b"user:1", b"ada")
        client.put(b"user:2", b"grace")
        client.delete(b"user:2")
        assert client.get(b"user:1") == b"ada"
        assert client.get(b"user:2") is None
        print("sync client: put/get/delete over the wire OK")

        # Pipelining: several requests, one socket round trip.
        with client.pipeline() as pipe:
            for i in range(10):
                pipe.put(b"k%03d" % i, b"v%03d" % i)
            pipe.get(b"k007")
        assert pipe.results[-1] == b"v007"
        print("sync client: pipelined 11 requests in one round trip")

        pairs, truncated = client.scan(start=b"k", end=b"l", limit=5)
        print(f"sync client: scan returned {len(pairs)} pairs "
              f"(truncated={truncated}), first={pairs[0]}")


async def async_demo(host: str, port: int) -> None:
    async with await AsyncClient.connect(host, port) as client:
        # Concurrent awaits share the connection with full pipelining.
        await asyncio.gather(
            *(client.put(b"a%03d" % i, b"x" * 32) for i in range(100))
        )
        values = await asyncio.gather(
            *(client.get(b"a%03d" % i) for i in range(100))
        )
        assert all(v == b"x" * 32 for v in values)
        print("async client: 200 concurrent ops pipelined on one socket")

        stats = await client.stats()
        put = stats["server"]["ops"]["PUT"]
        print(
            f"server stats: {put['requests']} PUTs, "
            f"p99={put['latency']['p99_ms']:.3f}ms, "
            f"engine flushes={stats['db']['flushes']}"
        )


def main() -> None:
    db = DB(MemStorage(), Options(), background=True)
    handle = ServerThread(db).start()
    print(f"server listening on {handle.host}:{handle.port}")
    try:
        sync_demo(handle.host, handle.port)
        asyncio.run(async_demo(handle.host, handle.port))
    finally:
        handle.stop()  # graceful: drain, flush, compact, close
    print("server quickstart OK")


if __name__ == "__main__":
    main()
