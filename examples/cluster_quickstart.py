"""Run a 4-shard sharded engine and read it through one server socket.

Demonstrates the ``repro.cluster`` subsystem end to end:

1. open a 4-shard :class:`repro.cluster.ShardedDB` (hash-partitioned,
   background compaction, one *shared* compute pool instead of
   4 x k compaction workers),
2. serve it over TCP — the wire protocol is unchanged; clients cannot
   tell a cluster from a single DB,
3. load YCSB keys and read them back: routed gets, grouped multi_get,
   and a cross-shard SCAN that comes back globally key-ordered from
   the k-way merge cursor,
4. inspect per-shard stats and the shard-dimensioned metrics the
   STATS opcode now carries,
5. shut down gracefully and reopen — the CLUSTER manifest remembers
   the layout.

Run:  PYTHONPATH=src python examples/cluster_quickstart.py
"""

from repro.cluster import ShardedDB
from repro.core.procedures import ProcedureSpec
from repro.lsm import Options
from repro.server import ServerThread, SyncClient
from repro.workload.ycsb import YCSBWorkload

N_SHARDS = 4

OPTIONS = Options(
    memtable_bytes=32 * 1024,
    sstable_bytes=16 * 1024,
    block_bytes=2 * 1024,
    level1_bytes=128 * 1024,
    level_multiplier=4,
)


def main() -> None:
    db = ShardedDB.in_memory(
        N_SHARDS,
        options=OPTIONS,
        compaction_spec=ProcedureSpec.cppcp(2, subtask_bytes=16 * 1024),
        background=True,
    )
    print(f"opened {db.n_shards} shards, partitioner={db.partitioner.spec()},"
          f" shared compute pool workers="
          f"{db.pool.workers if db.pool else 0}")

    workload = YCSBWorkload("a", n_ops=0, record_count=2000, value_bytes=64)
    with ServerThread(db) as handle:
        with SyncClient(handle.host, handle.port) as client:
            # Load through the socket: the server routes each key.
            batch = []
            for key, value in workload.load_phase():
                batch.append(("put", key, value))
                if len(batch) >= 256:
                    client.batch(batch)
                    batch.clear()
            if batch:
                client.batch(batch)
            print(f"loaded {workload.record_count} records over the wire")

            # Point reads are routed to the owning shard.
            from repro.workload.keys import format_key

            assert client.get(format_key(42)) is not None
            print("routed get: OK")

            # A cross-shard scan comes back globally ordered.
            pairs, truncated = client.scan(limit=100)
            keys = [k for k, _ in pairs]
            assert keys == sorted(keys) and len(keys) == 100
            print(f"cross-shard scan: first {len(keys)} keys globally "
                  f"ordered (truncated={truncated})")

            stats = client.stats()
            cluster = stats["cluster"]
            print(f"cluster stats: {cluster['n_shards']} shards, "
                  f"stalled={cluster['stalled_shards']}")
            for entry in cluster["shards"]:
                print(f"  shard {entry['shard']}: writes={entry['writes']} "
                      f"l0_files={entry['l0_files']} "
                      f"bytes={entry['total_bytes']}")
            pool_tasks = stats["engine"]["counters"].get(
                "cluster.pool.tasks", 0
            )
            print(f"shared pool compute tasks so far: {pool_tasks}")

    # Embedded use: multi_get groups keys into one batch per shard,
    # and a ClusterSnapshot pins a stable view on every shard.
    db2 = ShardedDB.in_memory(2, options=OPTIONS)
    for i in range(10):
        db2.put(b"k%02d" % i, b"v%02d" % i)
    values = db2.multi_get([b"k03", b"missing", b"k07"])
    assert values == [b"v03", None, b"v07"]
    with db2.snapshot() as snap:
        db2.put(b"k99", b"late")
        frozen = [k for k, _ in db2.scan(snapshot=snap)]
        assert b"k99" not in frozen
    print("embedded multi_get + cluster snapshot isolation: OK")
    db2.close()
    print("done")


if __name__ == "__main__":
    main()
