#!/usr/bin/env python
"""Capacity planning with the paper's analytical model (Eqs 1-7).

Given a device and a workload shape, answer the §III-C questions:

* is the compaction pipeline I/O-bound or CPU-bound here?
* how many disks until S-PPCP stops scaling (and it turns CPU-bound)?
* how many cores until C-PPCP stops scaling (and it turns I/O-bound)?
* what bandwidth does each configuration buy?

Run:  python examples/bottleneck_analysis.py
"""

from repro.bench.report import format_table
from repro.core import (
    CostModel,
    classify,
    cppcp_bandwidth,
    cppcp_saturation_k,
    pcp_bandwidth,
    pcp_speedup,
    scp_bandwidth,
    sppcp_bandwidth,
    sppcp_saturation_k,
)
from repro.devices import make_device

MB = 1 << 20


def analyse(device_kind: str, subtask_bytes: int, kv_bytes: int) -> None:
    cm = CostModel()
    dev = make_device(device_kind)
    entries = cm.entries_for(subtask_bytes, kv_bytes)
    t = cm.step_times(subtask_bytes, entries, dev, dev)

    print(f"\n=== {device_kind.upper()}, {subtask_bytes // 1024} KB sub-tasks, "
          f"{kv_bytes} B entries ===")
    print(format_table(
        ["step", "ms"],
        [[name, value * 1e3] for name, value in t.as_dict().items()],
    ))
    stages = t.stages()
    print(f"\nstages: read {stages.t_read*1e3:.2f} ms | "
          f"compute {stages.t_compute*1e3:.2f} ms | "
          f"write {stages.t_write*1e3:.2f} ms")
    print(f"the pipeline here is {classify(t).upper()} "
          f"(bottleneck stage: {stages.bottleneck})")
    print(f"ideal PCP speedup over SCP (Eq 3): {pcp_speedup(t):.2f}x")

    k_disks = sppcp_saturation_k(t)
    k_cores = cppcp_saturation_k(t)
    print(f"S-PPCP saturates at k* = {k_disks} disks "
          f"(then CPU-bound; more spindles buy nothing)")
    print(f"C-PPCP saturates at k* = {k_cores} cores "
          f"(then I/O-bound; more cores buy nothing)")

    rows = [["scp", scp_bandwidth(subtask_bytes, t) / 1e6]]
    rows.append(["pcp", pcp_bandwidth(subtask_bytes, t) / 1e6])
    for k in sorted({2, k_disks, k_disks + 2}):
        rows.append(
            [f"s-ppcp k={k}", sppcp_bandwidth(subtask_bytes, t, k) / 1e6]
        )
    for k in sorted({2, k_cores, k_cores + 2}):
        rows.append(
            [f"c-ppcp k={k}", cppcp_bandwidth(subtask_bytes, t, k) / 1e6]
        )
    print(format_table(["configuration", "ideal MB/s"], rows))


def main() -> None:
    # The paper's two testbed regimes...
    analyse("hdd", subtask_bytes=1 * MB, kv_bytes=116)
    analyse("ssd", subtask_bytes=1 * MB, kv_bytes=116)
    # ...and a what-if: tiny sub-tasks on HDD are seek-dominated, so
    # storage parallelism keeps paying much longer (Fig 12a's regime).
    analyse("hdd", subtask_bytes=160 * 1024, kv_bytes=116)
    # Large entries barely need the sort step: the SSD pipeline gets
    # closer to balanced and PCP's headroom grows (the headline case).
    analyse("ssd", subtask_bytes=1 * MB, kv_bytes=1024)


if __name__ == "__main__":
    main()
