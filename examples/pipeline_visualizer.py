#!/usr/bin/env python
"""Visualise the compaction schedules (the paper's Figures 3, 4, 6, 7).

Renders ASCII Gantt charts of SCP vs PCP vs the parallel variants on
the calibrated devices: you can *see* the sequential procedure leaving
the disk idle during compute (Fig 3), the pipeline overlapping stages
(Fig 4), the HDD's I/O-bound pipeline vs the SSD's CPU-bound one
(Fig 6), and the parallel variants clearing the bottleneck (Fig 7).

Run:  python examples/pipeline_visualizer.py
"""

from repro.bench.gantt import render_gantt
from repro.core import (
    CostModel,
    PipelineConfig,
    SimJob,
    simulate_pipeline,
    simulate_scp,
)
from repro.devices import make_device

MB = 1 << 20
N_SUBTASKS = 8


def jobs_for(device: str) -> list[SimJob]:
    cm = CostModel()
    dev = make_device(device)
    times = cm.step_times(MB, cm.entries_for(MB), dev, dev).stages()
    return [SimJob(i, times, MB) for i in range(N_SUBTASKS)]


def show(title: str, result) -> None:
    print(f"--- {title} ---")
    print(render_gantt(result))
    print(f"bandwidth: {result.bandwidth() / 1e6:.1f} MB/s\n")


def main() -> None:
    for device in ("hdd", "ssd"):
        jobs = jobs_for(device)
        print(f"===== {device.upper()} ({N_SUBTASKS} x 1 MB sub-tasks) =====\n")
        # Fig 3: sequential — one resource busy at a time.
        show("SCP (Fig 3: resources idle in turn)", simulate_scp(jobs))
        # Fig 4 / Fig 6: the three-stage pipeline and its bound.
        show(
            f"PCP (Fig 6{'a: I/O-bound' if device == 'hdd' else 'b: CPU-bound'})",
            simulate_pipeline(jobs, PipelineConfig()),
        )
        # Fig 7: the matching parallel variant clears the bottleneck.
        if device == "hdd":
            show(
                "S-PPCP k=2 (Fig 7a: sub-tasks alternate disks)",
                simulate_pipeline(jobs, PipelineConfig(n_devices=2)),
            )
        else:
            show(
                "C-PPCP k=2 (Fig 7b: compute fan-out)",
                simulate_pipeline(
                    jobs, PipelineConfig(compute_workers=2, queue_capacity=4)
                ),
            )


if __name__ == "__main__":
    main()
