#!/usr/bin/env python
"""Compare SCP, PCP, S-PPCP, and C-PPCP on one compaction.

Builds two real SSTables (an upper and a lower component), partitions
the merge into sub-tasks, and runs every procedure both ways:

* *functionally* (real threads, real bytes) — verifying all four
  produce bit-identical output, the property that legalises pipelining;
* *in virtual time* (discrete-event simulation with the calibrated
  HDD/SSD models) — showing the bandwidth ranking the paper measures.

Run:  python examples/compaction_comparison.py
"""

import itertools

from repro.bench.report import format_table
from repro.core import (
    CostModel,
    ProcedureSpec,
    classify,
    compact_tables,
    pcp_speedup,
    simulate_compaction,
)
from repro.devices import MemStorage, make_device
from repro.lsm import KIND_VALUE, Options, Table, TableBuilder, encode_internal_key

MB = 1 << 20


def build_inputs(storage, options):
    """An upper-level table shadowing half the keys of a lower one."""

    def build(name, rng, seq, tag):
        with storage.create(name) as f:
            builder = TableBuilder(f, options)
            for i in rng:
                key = encode_internal_key(b"key-%07d" % i, seq, KIND_VALUE)
                builder.add(key, b"%s-value-%d" % (tag, i) * 3)
            builder.finish()
        return Table(storage.open(name), options)

    upper = build("upper.sst", range(0, 40_000, 2), seq=9, tag=b"new")
    lower = build("lower.sst", range(0, 40_000, 3), seq=1, tag=b"old")
    return upper, lower


def main() -> None:
    options = Options(block_bytes=4096, sstable_bytes=256 * 1024,
                      compression="lz77")
    storage = MemStorage()
    upper, lower = build_inputs(storage, options)
    subtask_bytes = 64 * 1024

    specs = {
        "scp": ProcedureSpec.scp(subtask_bytes=subtask_bytes),
        "pcp": ProcedureSpec.pcp(subtask_bytes=subtask_bytes),
        "s-ppcp k=3": ProcedureSpec.sppcp(k=3, subtask_bytes=subtask_bytes),
        "c-ppcp k=3": ProcedureSpec.cppcp(k=3, subtask_bytes=subtask_bytes,
                                          queue_capacity=6),
    }

    # ---- functional runs: identical output, wall-clock stats ---------
    print("functional execution (real threads, in-memory files):")
    outputs_bytes = {}
    rows = []
    for label, spec in specs.items():
        counter = itertools.count(1)
        outputs, stats, subtasks = compact_tables(
            [upper, lower], storage, options,
            file_namer=lambda lbl=label: f"{lbl}-{next(counter):04d}.sst",
            spec=spec,
        )
        outputs_bytes[label] = [storage.open(m.name).read_all() for m in outputs]
        rows.append(
            [label, len(subtasks), len(outputs),
             stats.input_bytes / MB, stats.wall_seconds,
             stats.bandwidth() / 1e6]
        )
    print(format_table(
        ["procedure", "subtasks", "outputs", "in MB", "wall s", "MB/s"], rows
    ))
    reference = outputs_bytes["scp"]
    for label, blobs in outputs_bytes.items():
        assert blobs == reference, f"{label} output differs!"
    print("-> all four procedures produced bit-identical SSTables\n")
    print("   (wall-clock speedups are GIL-bound; see the virtual-time")
    print("    comparison below for the schedule-level behaviour)\n")

    # ---- virtual-time runs: the paper's bandwidth ranking -------------
    cm = CostModel()
    from repro.core import partition_subtasks

    subtasks = partition_subtasks([upper, lower], subtask_bytes)
    sizes = [(s.input_bytes(), cm.entries_for(s.input_bytes()))
             for s in subtasks]
    print("virtual-time schedules (calibrated device models):")
    for device in ("hdd", "ssd"):
        probe = make_device(device)
        times = cm.step_times(subtask_bytes, cm.entries_for(subtask_bytes),
                              probe, probe)
        print(f"\n{device}: pipeline is {classify(times)}; "
              f"ideal PCP speedup (Eq 3) = {pcp_speedup(times):.2f}")
        rows = []
        base = None
        for label, spec in specs.items():
            dev = make_device(device)
            result = simulate_compaction(sizes, spec, cm, dev, dev)
            bw = result.bandwidth()
            if base is None:
                base = bw
            rows.append([label, result.makespan, bw / 1e6, bw / base])
        print(format_table(
            ["procedure", "makespan s", "MB/s", "vs scp"], rows
        ))



if __name__ == "__main__":
    main()
