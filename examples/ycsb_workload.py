#!/usr/bin/env python
"""Drive the store with YCSB-style mixed workloads.

Loads a keyspace, then runs the classic YCSB mixes (A/B/C/D/F) against
the engine with pipelined compaction, reporting operation counts, the
tree shape, and cache behaviour.  Demonstrates that the engine is a
complete KV store (reads, updates, inserts, RMW), not just an
insert-only benchmark harness.

Run:  python examples/ycsb_workload.py
"""

import time

from repro.bench.report import format_table
from repro.core import ProcedureSpec
from repro.db import DB
from repro.devices import MemStorage
from repro.lsm import Options
from repro.workload import YCSBWorkload


def main() -> None:
    options = Options(
        memtable_bytes=64 * 1024,
        sstable_bytes=32 * 1024,
        block_bytes=4 * 1024,
        level1_bytes=128 * 1024,
        level_multiplier=4,
        compression="zlib",
        block_cache_entries=512,
    )
    record_count = 4000
    ops_per_mix = 4000

    rows = []
    for mix in ("a", "b", "c", "d", "f"):
        db = DB(
            MemStorage(), options,
            compaction_spec=ProcedureSpec.pcp(subtask_bytes=16 * 1024),
        )
        workload = YCSBWorkload(
            mix, n_ops=ops_per_mix, record_count=record_count, seed=17
        )
        for key, value in workload.load_phase():
            db.put(key, value)
        db.flush()

        t0 = time.perf_counter()
        counts = workload.apply_to(db)
        elapsed = time.perf_counter() - t0

        cache = db._cache.stats
        rows.append(
            [
                mix.upper(),
                counts.get("read", 0),
                counts.get("update", 0),
                counts.get("insert", 0),
                counts.get("rmw", 0),
                ops_per_mix / elapsed,
                f"{cache.hit_rate() * 100:.0f}%",
                db.stats.compactions,
            ]
        )
        db.close()

    print(format_table(
        ["mix", "reads", "updates", "inserts", "rmw", "ops/s",
         "cache hits", "compactions"],
        rows,
        title="YCSB mixes over the PCP-compacted store "
        f"({record_count} records loaded, {ops_per_mix} ops each)",
    ))


if __name__ == "__main__":
    main()
