#!/usr/bin/env python
"""Durability walk-through: WAL, MANIFEST, and crash recovery.

Writes through a real on-disk directory, "crashes" (abandons the DB
without closing), reopens, and shows that:

* every acknowledged write survives (WAL replay),
* the level structure survives (MANIFEST replay),
* a torn final WAL record is tolerated, interior corruption is not.

Run:  python examples/crash_recovery.py
"""

import os
import tempfile

from repro.db import DB
from repro.devices import OSStorage
from repro.lsm import Options


def options() -> Options:
    return Options(
        memtable_bytes=32 * 1024,
        sstable_bytes=16 * 1024,
        block_bytes=2 * 1024,
        level1_bytes=64 * 1024,
        level_multiplier=4,
        compression="lz77",
    )


def main() -> None:
    root = tempfile.mkdtemp(prefix="repro-recovery-")
    print(f"database directory: {root}")

    # -- phase 1: load some data, then 'crash' -------------------------
    db = DB(OSStorage(root), options())
    for i in range(3000):
        db.put(b"stable-%06d" % i, b"value-%d" % i)
    db.flush()
    db.put(b"tail-1", b"only-in-wal")
    db.put(b"tail-2", b"also-only-in-wal")
    shape_before = db.describe()
    print("\ntree before crash:")
    print(shape_before)
    # No db.close(): simulate the process dying here.
    del db

    files = sorted(os.listdir(root))
    print(f"\non disk after crash: {len(files)} files "
          f"({sum(1 for f in files if f.endswith('.sst'))} SSTables, "
          f"CURRENT + MANIFEST + WAL)")

    # -- phase 2: reopen and verify ------------------------------------
    db = DB(OSStorage(root), options())
    assert db.get(b"stable-001234") == b"value-1234"
    assert db.get(b"tail-1") == b"only-in-wal"
    assert db.get(b"tail-2") == b"also-only-in-wal"
    n = sum(1 for _ in db.items())
    print(f"\nreopened: all {n} keys present "
          "(flushed data via MANIFEST, tail writes via WAL replay)")
    db.close()

    # -- phase 3: torn final record is tolerated ------------------------
    db = DB(OSStorage(root), options())
    db.put(b"torn-write", b"acknowledged-but-torn")
    wal_name = db._wal_name(db._wal_number)
    del db  # crash again
    wal_path = os.path.join(root, wal_name)
    with open(wal_path, "rb") as f:
        data = f.read()
    with open(wal_path, "wb") as f:
        f.write(data[:-3])  # tear the last record mid-payload
    db = DB(OSStorage(root), options())
    assert db.get(b"torn-write") is None  # torn tail dropped cleanly
    assert db.get(b"stable-000001") == b"value-1"
    print("torn final WAL record dropped; all earlier data intact")
    db.close()
    print("\ncrash-recovery demo OK")


if __name__ == "__main__":
    main()
