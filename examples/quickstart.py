#!/usr/bin/env python
"""Quickstart: the key-value store with pipelined compaction.

Open a DB, write, read, scan, take a snapshot, and watch background
compactions reshape the tree.  Everything here runs in memory; swap
``MemStorage`` for ``OSStorage(path)`` to persist to disk.

Run:  python examples/quickstart.py
"""

from repro.core import ProcedureSpec
from repro.db import DB
from repro.devices import MemStorage
from repro.lsm import Options, WriteBatch


def main() -> None:
    # Engine tuned small so this demo triggers real compactions.
    options = Options(
        memtable_bytes=64 * 1024,
        sstable_bytes=32 * 1024,
        block_bytes=4 * 1024,
        level1_bytes=128 * 1024,
        level_multiplier=4,
        compression="lz77",
    )
    # The paper's contribution, one argument away: background
    # compactions run through the 3-stage pipelined procedure.
    spec = ProcedureSpec.pcp(subtask_bytes=16 * 1024)

    with DB(MemStorage(), options, compaction_spec=spec) as db:
        # -- basic operations ------------------------------------------
        db.put(b"user:alice", b"alice@example.com")
        db.put(b"user:bob", b"bob@example.com")
        print("get user:alice ->", db.get(b"user:alice"))

        # Atomic multi-key writes.
        batch = WriteBatch()
        batch.put(b"user:carol", b"carol@example.com")
        batch.delete(b"user:bob")
        db.write(batch)
        print("after batch, user:bob ->", db.get(b"user:bob"))

        # -- snapshots ---------------------------------------------------
        with db.snapshot() as snap:
            db.put(b"user:alice", b"alice@new-domain.example")
            print("current     alice ->", db.get(b"user:alice"))
            print("at snapshot alice ->", db.get(b"user:alice", snapshot=snap))

        # -- bulk load to exercise flushes + pipelined compactions -------
        import random

        order = list(range(5000))
        random.Random(42).shuffle(order)
        for i in order:
            db.put(b"item:%06d" % i, b"payload-%d" % i * 4)

        print("\ntree shape after load:")
        print(db.describe())
        print(
            f"\nflushes={db.stats.flushes}  compactions={db.stats.compactions} "
            f"(trivial moves={db.stats.trivial_moves})"
        )
        print(
            "compaction bandwidth (functional, wall-clock): "
            f"{db.stats.compaction_bandwidth() / 1e6:.1f} MB/s"
        )

        # -- ordered scans ------------------------------------------------
        some = list(db.scan(b"item:001000", b"item:001005"))
        print("\nscan [item:001000, item:001005):")
        for key, value in some:
            print(" ", key, "->", value[:16], "...")

        # Reads see through memtable, L0, and deeper levels alike.
        assert db.get(b"item:004999") == b"payload-4999" * 4
        print("\nquickstart OK")


if __name__ == "__main__":
    main()
