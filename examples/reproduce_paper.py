#!/usr/bin/env python
"""Regenerate every figure of the paper in one run.

Prints the text version of Figures 5, 8, 9, 10, 11, 12, the headline
comparison, and the Eq 1-7 validation, exactly as the benchmark suite
asserts them.  This is the full evaluation; expect a few minutes.

Run:  python examples/reproduce_paper.py [--quick]
"""

import sys
import time

from repro.bench.experiments import (
    ablations,
    fig05,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    headline,
    model_validation,
)


def main() -> None:
    quick = "--quick" in sys.argv
    t0 = time.perf_counter()

    sections = [
        lambda: fig05.run(),
        lambda: fig08.run(device="hdd"),
        lambda: fig08.run(device="ssd"),
        lambda: fig09.run(device="hdd"),
        lambda: fig09.run(device="ssd"),
        lambda: fig11.run_subtask_sweep(),
        lambda: fig11.run_compaction_sweep(),
        lambda: fig12.run_sppcp(),
        lambda: fig12.run_cppcp(),
        lambda: model_validation.run(),
        lambda: ablations.run_depth_ablation(),
        lambda: ablations.run_queue_ablation(),
        lambda: ablations.run_codec_ablation(),
        lambda: ablations.run_shared_io_ablation(),
    ]
    if not quick:
        sets = (10_000, 20_000) if quick else (10_000, 20_000, 40_000)
        sections += [
            lambda: fig10.run(device="hdd", working_sets=sets),
            lambda: fig10.run(device="ssd", working_sets=sets),
            lambda: headline.run(),
        ]

    for section in sections:
        print(section().render())
        print()

    print(f"regenerated {len(sections)} figures/tables "
          f"in {time.perf_counter() - t0:.1f}s")


if __name__ == "__main__":
    main()
