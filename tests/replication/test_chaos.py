"""The chaos matrix: network faults x crashes over a replicated cluster.

Every test runs a 1-primary / N-follower cluster where each node sits
behind its own :class:`FaultyProxy`, so the harness can kill, partition
and heal links deterministically.  The invariants under test are the
replication layer's whole contract:

* **zero acked-write loss** — any write a client saw OK for survives
  failover, whether the primary died by partition or by a PR 4 storage
  crash point;
* **bounded failover** — the :class:`FailoverCoordinator` detects a
  dead primary and promotes a follower within a deadline, no human
  ``dbtool promote`` involved;
* **no split-brain** — the fenced stale primary can never ack a
  post-promotion write at ack level >= 1, and the epoch keeps clients
  and subscriptions pointed at exactly one primary.
"""

import time

import pytest

from repro.db import DB
from repro.db.verify import verify_db
from repro.devices import (
    FaultPlan,
    FaultyProxy,
    FaultyStorage,
    MemStorage,
    OSStorage,
)
from repro.lsm import Options
from repro.obs import Observability
from repro.replication import (
    FailoverCoordinator,
    FencedError,
    Follower,
    ReplicatedShard,
    ReplicationHub,
)
from repro.server import (
    RetryPolicy,
    ServerBusyError,
    ServerConfig,
    ServerThread,
    SyncClient,
)

#: Primary retains plenty of WAL so followers catch up by replay, not
#: snapshot, keeping the matrix fast and deterministic.
_OPTS = dict(wal_retain_bytes=8 * 1024 * 1024)

#: One failover must complete well inside this (detection is ~3 probe
#: intervals + one promote round trip; the slack absorbs CI jitter).
_FAILOVER_DEADLINE_S = 15.0


def _wait(predicate, timeout=10.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


class _FollowerNode:
    """A served follower behind its own chaos proxy."""

    def __init__(self, directory, name, primary_endpoint, repl_acks):
        self.directory = directory
        self.storage = OSStorage(directory)
        db = DB(self.storage, Options())

        def _factory(directory=directory):
            return DB(OSStorage(directory), Options())

        self.follower = Follower(
            db, self.storage, _factory,
            primary_endpoint[0], primary_endpoint[1], name,
            retry_interval_s=0.05, max_silence_s=1.0,
        )
        self.server = ServerThread(
            db,
            ServerConfig(
                read_only=True, repl_acks=repl_acks, repl_ack_timeout_s=1.0
            ),
            own_db=False,
            follower=self.follower,
        ).start()
        # Snapshot install swaps the DB out from under the server.
        self.follower.bind_db_swap(self.server.server.swap_db)
        self.follower.start()
        self.proxy = FaultyProxy(self.server.host, self.server.port).start()

    @property
    def db(self):
        return self.follower.db

    @property
    def endpoint(self):
        return self.proxy.endpoint

    def is_primary(self) -> bool:
        server = self.server.server
        return server.hub is not None and not server.config.read_only

    def close(self) -> None:
        self.proxy.close()
        self.follower.stop()
        self.server.stop()
        try:
            self.follower.db.close()
        except Exception:
            pass  # chaos teardown: the DB may be mid-crash


class ChaosCluster:
    """1 primary + N followers, every link fault-injectable."""

    def __init__(self, tmp_path, n_followers=2, repl_acks=1,
                 primary_storage=None):
        self.obs = Observability()
        self.primary_db = DB(
            primary_storage or MemStorage(), Options(**_OPTS)
        )
        self.hub = ReplicationHub(self.primary_db)
        self.primary_server = ServerThread(
            self.primary_db,
            ServerConfig(repl_acks=repl_acks, repl_ack_timeout_s=2.0),
            own_db=False,
            hub=self.hub,
        ).start()
        self.primary_proxy = FaultyProxy(
            self.primary_server.host, self.primary_server.port
        ).start()
        self.primary_proxy.attach_obs(
            metrics=self.obs.metrics, events=self.obs.events
        )
        self.followers = [
            _FollowerNode(
                str(tmp_path / f"f{i}"), f"f{i}",
                self.primary_proxy.endpoint, repl_acks,
            )
            for i in range(n_followers)
        ]
        _wait(
            lambda: self.hub.n_followers == n_followers,
            what="followers subscribed",
        )

    @property
    def endpoints(self):
        return [self.primary_proxy.endpoint] + [
            node.endpoint for node in self.followers
        ]

    def node_at(self, endpoint) -> _FollowerNode:
        (node,) = [n for n in self.followers if n.endpoint == endpoint]
        return node

    def kill_primary(self) -> None:
        """Network-kill: sever and black-hole every primary link."""
        self.primary_proxy.partition("both")
        self.primary_proxy.drop_connections()

    def wait_caught_up(self, n_writes, timeout=10.0) -> None:
        _wait(
            lambda: all(
                node.db.last_sequence >= n_writes for node in self.followers
            ),
            timeout=timeout,
            what="followers caught up",
        )

    def close(self) -> None:
        for node in self.followers:
            node.close()
        self.primary_proxy.close()
        self.primary_server.stop()
        try:
            self.primary_db.close()
        except Exception:
            pass


@pytest.fixture
def cluster(tmp_path):
    cluster = ChaosCluster(tmp_path)
    yield cluster
    cluster.close()


def _put_acked(endpoint, keys, start, count):
    """Write ``count`` keys at ack>=1 through the wire; extend ``keys``
    with every key the server acked OK."""
    client = SyncClient(*endpoint)
    client.hello(ack_level=1)
    try:
        for i in range(start, start + count):
            key = f"acked{i:05d}".encode()
            client.put(key, f"v{i}".encode())
            keys.append(key)
    finally:
        client.close()


def test_auto_failover_promotes_without_manual_step(cluster):
    acked = []
    _put_acked(cluster.primary_proxy.endpoint, acked, 0, 200)
    cluster.wait_caught_up(len(acked))

    cluster.kill_primary()

    coordinator = FailoverCoordinator(
        cluster.endpoints,
        heartbeat_interval_s=0.1,
        failure_threshold=3,
        probe_timeout_s=0.5,
        obs=cluster.obs,
    ).start()
    try:
        t0 = time.monotonic()
        _wait(
            lambda: coordinator.promotions >= 1,
            timeout=_FAILOVER_DEADLINE_S,
            what="automatic promotion",
        )
        elapsed = time.monotonic() - t0
        assert elapsed < _FAILOVER_DEADLINE_S

        status = coordinator.status()
        assert status["promotions"] == 1
        promoted = cluster.node_at(coordinator.last_primary)
        assert promoted.is_primary()
        assert promoted.db.repl_epoch >= 1

        # Zero acked-write loss: every OK'd write reads back from the
        # promoted node (reads only — no follower is attached yet).
        client = SyncClient(*promoted.endpoint)
        try:
            missing = [k for k in acked if client.get(k) is None]
        finally:
            client.close()
        assert not missing, f"lost {len(missing)} acked writes"

        # The whole story is on the event/metric plane too.
        metrics = cluster.obs.metrics
        assert metrics.counter("failover.detected").value == 1
        assert metrics.counter("failover.elected").value == 1
        assert metrics.counter("failover.promoted").value == 1
        assert metrics.counter("net.fault_injected").value >= 1
    finally:
        coordinator.stop()


def test_fenced_stale_primary_cannot_ack_after_promotion(cluster):
    acked = []
    _put_acked(cluster.primary_proxy.endpoint, acked, 0, 50)
    cluster.wait_caught_up(len(acked))

    # Asymmetric partition: the primary still *looks* alive to TCP but
    # every byte it sends is swallowed — the classic split-brain bait.
    cluster.primary_proxy.partition("s2c")
    cluster.primary_proxy.drop_connections()

    coordinator = FailoverCoordinator(
        cluster.endpoints,
        heartbeat_interval_s=0.1,
        failure_threshold=3,
        probe_timeout_s=0.5,
        obs=cluster.obs,
    )
    _wait(
        lambda: coordinator.check_once() is not None,
        timeout=_FAILOVER_DEADLINE_S,
        what="partition-triggered promotion",
    )
    promoted = cluster.node_at(coordinator.last_primary)
    new_epoch = promoted.db.repl_epoch
    assert new_epoch > cluster.primary_db.repl_epoch

    # Heal the network: the stale primary is back, unfenced it would
    # happily take writes.  At ack>=1 it cannot — its followers are
    # gone, so the ack wait times out and the client sees STALLED
    # exhaustion, never OK.
    cluster.primary_proxy.heal()
    stale = SyncClient(
        cluster.primary_server.host, cluster.primary_server.port,
        max_retries=2,
    )
    stale.hello(ack_level=1)
    try:
        with pytest.raises(ServerBusyError):
            stale.put(b"split-brain", b"never-acked")
    finally:
        stale.close()

    # And its hub refuses any subscriber from the new epoch outright.
    with pytest.raises(FencedError):
        cluster.hub.subscribe(
            "f-new", 1, follower_epoch=new_epoch
        )

    # A role-refreshing client elects the higher epoch, not the relic.
    shard = ReplicatedShard(cluster.endpoints, ack_level=0)
    try:
        assert shard.status()["primary"] == (
            f"{promoted.endpoint[0]}:{promoted.endpoint[1]}"
        )
        missing = [k for k in acked if shard.get(k) is None]
        assert not missing, f"lost {len(missing)} acked writes"
    finally:
        shard.close()


def test_kill_heal_loop_zero_acked_loss(cluster):
    """Two consecutive failovers: kill the primary, promote, re-parent
    the surviving follower, kill the new primary, promote again.  The
    acked set must survive the whole schedule."""
    coordinator = FailoverCoordinator(
        cluster.endpoints,
        heartbeat_interval_s=0.1,
        failure_threshold=3,
        probe_timeout_s=0.5,
        obs=cluster.obs,
    )
    acked = []
    _put_acked(cluster.primary_proxy.endpoint, acked, 0, 100)
    cluster.wait_caught_up(len(acked))

    # --- cycle 1: the original primary dies ------------------------
    cluster.kill_primary()
    _wait(
        lambda: coordinator.check_once() is not None,
        timeout=_FAILOVER_DEADLINE_S,
        what="first promotion",
    )
    first = cluster.node_at(coordinator.last_primary)
    (survivor,) = [n for n in cluster.followers if n is not first]

    # Re-parent the surviving follower onto the new primary (the
    # config push a deployment would do); it must resubscribe and
    # catch up so ack>=1 writes flow again.
    survivor.follower.repoint(first.server.host, first.server.port)
    _wait(
        lambda: first.server.server.hub is not None
        and first.server.server.hub.n_followers == 1,
        what="survivor resubscribed",
    )
    _put_acked(first.endpoint, acked, 100, 100)
    _wait(
        lambda: survivor.db.last_sequence >= first.db.last_sequence,
        what="survivor caught up",
    )

    # --- cycle 2: the promoted primary dies too --------------------
    first.proxy.partition("both")
    first.proxy.drop_connections()
    _wait(
        lambda: coordinator.check_once() is not None,
        timeout=_FAILOVER_DEADLINE_S,
        what="second promotion",
    )
    second = cluster.node_at(coordinator.last_primary)
    assert second is survivor
    assert second.db.repl_epoch > first.db.repl_epoch

    # Heal everything; the final primary holds every acked write.
    cluster.primary_proxy.heal()
    first.proxy.heal()
    client = SyncClient(*second.endpoint)
    try:
        missing = [k for k in acked if client.get(k) is None]
    finally:
        client.close()
    assert not missing, f"lost {len(missing)} acked writes"
    assert coordinator.status()["promotions"] == 2


def test_storage_crash_composes_with_netfaults(tmp_path):
    """PR 4 crash points under a lossy network: the primary's storage
    dies mid-WAL-append while the link to it drops chunks; a retrying
    client keeps writing until the crash, then failover hands the
    acked set to a follower whose store verifies clean."""
    plan = FaultPlan(crash_at="wal.append", crash_skip=150)
    pstorage = FaultyStorage(MemStorage(), plan)
    cluster = ChaosCluster(
        tmp_path, n_followers=2, primary_storage=pstorage
    )
    try:
        # Lossy but survivable link to the primary: seeded 2% cuts.
        from repro.devices import NetFaultPlan

        cluster.primary_proxy.set_plan(
            NetFaultPlan(seed=1234, cut_rate=0.02)
        )
        client = SyncClient(
            *cluster.primary_proxy.endpoint,
            retry_policy=RetryPolicy(
                max_attempts=6, base_delay_s=0.01, seed=5
            ),
        )
        client.hello(ack_level=1)
        acked = []
        try:
            for i in range(400):
                key = f"acked{i:05d}".encode()
                client.put(key, f"v{i}".encode())
                acked.append(key)
        except Exception:
            pass  # the crash point fired server-side
        finally:
            client.close()
        assert pstorage.crashed
        assert acked, "no writes were acked before the crash"

        # The zombie primary's storage is dead; the chaos schedule
        # finishes the job the way a watchdog would, by fencing it off
        # the network, and the coordinator takes it from there.
        cluster.kill_primary()
        coordinator = FailoverCoordinator(
            cluster.endpoints,
            heartbeat_interval_s=0.1,
            failure_threshold=3,
            probe_timeout_s=0.5,
        )
        _wait(
            lambda: coordinator.check_once() is not None,
            timeout=_FAILOVER_DEADLINE_S,
            what="post-crash promotion",
        )
        promoted = cluster.node_at(coordinator.last_primary)
        client = SyncClient(*promoted.endpoint)
        try:
            missing = [k for k in acked if client.get(k) is None]
        finally:
            client.close()
        assert not missing, f"lost {len(missing)} acked writes"
        promoted_dir = promoted.directory

        # Keep teardown away from the crashed storage.
        cluster.primary_db._closed = True
    finally:
        cluster.close()

    # The promoted store is internally consistent on disk.
    report = verify_db(OSStorage(promoted_dir), Options())
    assert report.ok, report.errors
