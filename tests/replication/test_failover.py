"""Primary crash → promote → zero acked-write loss.

The crash-matrix-style failover check: a primary running on
fault-injection storage crashes at a WAL crash point mid-stream.
Every write that was *acked at ack=1* must survive on the follower;
``dbtool promote`` fences the old primary and ``verify_db`` proves
the promoted store is internally consistent.
"""

import time

import pytest

from repro.db import DB
from repro.db.verify import verify_db
from repro.devices import (
    FaultPlan,
    FaultyStorage,
    MemStorage,
    OSStorage,
    SimulatedCrash,
)
from repro.lsm import Options
from repro.replication import FencedError, Follower, ReplicationHub
from repro.server.client import SyncClient
from repro.server.server import ServerConfig, ServerThread
from repro.tools.dbtool import main as dbtool_main


def _wait(predicate, timeout=10.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


def test_primary_crash_promote_no_acked_loss(tmp_path):
    # Primary on faulty storage: the 300th wal.append never returns —
    # the process "dies" with the storage frozen at its durable state.
    plan = FaultPlan(crash_at="wal.append", crash_skip=300)
    pstorage = FaultyStorage(MemStorage(), plan)
    primary = DB(
        pstorage, Options(wal_retain_bytes=8 * 1024 * 1024)
    )
    hub = ReplicationHub(primary)
    config = ServerConfig(repl_acks=1, repl_ack_timeout_s=10.0)

    fdir = str(tmp_path / "follower")
    fstorage = OSStorage(fdir)
    fdb = DB(fstorage, Options())

    acked = []
    with ServerThread(primary, config, own_db=False, hub=hub) as handle:
        follower = Follower(
            fdb, fstorage, lambda: DB(fstorage, Options()),
            handle.host, handle.port, "survivor", retry_interval_s=0.05,
        ).start()
        _wait(lambda: hub.n_followers == 1, what="follower subscribed")

        # Acked writes through the wire: OK response ⇒ the follower
        # synced the record to its own WAL first.
        client = SyncClient(handle.host, handle.port)
        for i in range(250):
            key = f"acked{i:04d}".encode()
            client.put(key, f"v{i}".encode())
            acked.append(key)
        client.close()

        # The crash: SimulatedCrash is a BaseException, fired here on
        # the test thread (a wire write would tear down the server's
        # worker instead, which a real kill -9 would not do).
        with pytest.raises(SimulatedCrash):
            for i in range(100):
                primary.put(f"unacked{i:04d}".encode(), b"x")
        assert pstorage.crashed

        # Wait out any in-flight shipped records, then take the
        # follower down cleanly for promotion.
        time.sleep(0.3)
        follower.stop()
        applied_db = follower.db
        applied_seq = applied_db.last_sequence
        assert applied_seq >= len(acked)
        applied_db.close()

        # The dead primary's storage is frozen; keep server teardown
        # away from it.
        primary._closed = True

    # Failover runbook: promote the stopped follower directory.
    assert dbtool_main(["promote", fdir]) == 0

    # The promoted store: consistent, epoch-fenced, zero acked loss.
    report = verify_db(OSStorage(fdir), Options())
    assert report.ok, report.errors

    promoted = DB(OSStorage(fdir), Options())
    try:
        assert promoted.repl_epoch == 1
        missing = [k for k in acked if promoted.get(k) is None]
        assert not missing, f"lost {len(missing)} acked writes: {missing[:5]}"

        # The fencing epoch now refuses the old primary's stream: a
        # hub for the (hypothetically revived) old primary rejects a
        # subscription carrying the newer epoch.
        with pytest.raises(FencedError):
            hub.subscribe("survivor", 1, follower_epoch=promoted.repl_epoch)
    finally:
        promoted.close()


def test_acked_writes_durable_on_follower_before_ok(tmp_path):
    """The ack barrier is durable, not just applied: kill -9 the
    follower (reopen its directory cold) and every acked write must
    recover from its WAL."""
    primary = DB(MemStorage(), Options(wal_retain_bytes=8 * 1024 * 1024))
    hub = ReplicationHub(primary)
    config = ServerConfig(repl_acks=1, repl_ack_timeout_s=10.0)

    fdir = str(tmp_path / "f1")
    fstorage = OSStorage(fdir)
    fdb = DB(fstorage, Options())

    with ServerThread(primary, config, own_db=False, hub=hub) as handle:
        follower = Follower(
            fdb, fstorage, lambda: DB(fstorage, Options()),
            handle.host, handle.port, "f1", retry_interval_s=0.05,
        ).start()
        _wait(lambda: hub.n_followers == 1, what="follower subscribed")

        client = SyncClient(handle.host, handle.port)
        for i in range(50):
            client.put(f"dur{i:03d}".encode(), f"v{i}".encode())
        client.close()

        # Simulate kill -9: abandon the follower DB without closing
        # it (no flush, no graceful WAL finish), then reopen cold.
        follower.stop()

    reopened = DB(OSStorage(fdir), Options())
    try:
        for i in range(50):
            assert reopened.get(f"dur{i:03d}".encode()) == f"v{i}".encode()
    finally:
        reopened.close()
    fdb.close()
    primary.close()
