"""ShardLike protocol conformance.

``ShardedDB.from_shards`` accepts anything satisfying
:class:`repro.cluster.ShardLike`; this file pins the contract for all
three implementations — local :class:`DB`, the wire-level
:class:`RemoteShard`, and the failover-aware :class:`ReplicatedShard` —
and exercises a mixed local+remote cluster through the protocol.
"""

import inspect

import pytest

from repro.cluster import ShardLike, ShardedDB
from repro.db import DB
from repro.devices import MemStorage
from repro.lsm import Options
from repro.replication import RemoteShard, ReplicatedShard
from repro.server.server import ServerThread

from tests.helpers import small_options

#: Every member ShardedDB actually calls on its shards.
_PROTOCOL_MEMBERS = [
    name for name in dir(ShardLike)
    if not name.startswith("_")
]


@pytest.fixture
def served_db():
    db = DB(MemStorage(), small_options())
    with ServerThread(db) as handle:
        yield handle


def _assert_conforms(shard) -> None:
    assert isinstance(shard, ShardLike)
    for name in _PROTOCOL_MEMBERS:
        assert hasattr(shard, name), f"missing member {name!r}"


def test_protocol_members_are_nonempty():
    # Guard against the Protocol silently degenerating to object().
    for expected in ("put", "get", "scan", "write_stalled", "stats"):
        assert expected in _PROTOCOL_MEMBERS


def test_local_db_conforms():
    db = DB(MemStorage(), Options())
    try:
        _assert_conforms(db)
    finally:
        db.close()


def test_remote_shard_conforms(served_db):
    shard = RemoteShard(served_db.host, served_db.port)
    try:
        _assert_conforms(shard)
    finally:
        shard.close()


def test_replicated_shard_conforms(served_db):
    shard = ReplicatedShard([(served_db.host, served_db.port)], ack_level=0)
    try:
        _assert_conforms(shard)
    finally:
        shard.close()


def test_remote_shard_signature_compatible_with_db():
    """RemoteShard methods must accept the call shapes DB accepts."""
    for name in _PROTOCOL_MEMBERS:
        db_attr = getattr(DB, name, None)
        remote_attr = getattr(RemoteShard, name, None)
        if not callable(db_attr) or not callable(remote_attr):
            continue
        db_params = list(inspect.signature(db_attr).parameters)
        remote_params = list(inspect.signature(remote_attr).parameters)
        missing = [
            p for p in db_params
            if p not in remote_params and p not in ("self", "kwargs")
        ]
        assert not missing, f"{name} lacks params {missing}"


def test_mixed_cluster_from_shards(served_db, tmp_path):
    local = DB(MemStorage(), small_options())
    remote = RemoteShard(served_db.host, served_db.port)
    cluster = ShardedDB.from_shards([local, remote])
    try:
        for i in range(60):
            cluster.put(f"key{i:03d}".encode(), f"val{i:03d}".encode())
        for i in range(60):
            assert cluster.get(f"key{i:03d}".encode()) == f"val{i:03d}".encode()

        # Both shards actually received data (hash routing split it).
        assert local.stats.writes > 0

        got = [k for k, _ in cluster.scan()]
        assert got == sorted(f"key{i:03d}".encode() for i in range(60))
        rev = [k for k, _ in cluster.scan_reverse()]
        assert rev == got[::-1]

        values = cluster.multi_get([b"key000", b"key059", b"missing"])
        assert values == [b"val000", b"val059", None]

        # Point-in-time snapshots need every shard to support them;
        # RemoteShard cannot, so the cluster must refuse loudly.
        with pytest.raises(NotImplementedError):
            cluster.snapshot()

        stats = cluster.stats
        assert stats.writes >= 60
    finally:
        cluster.close()


def test_from_shards_partitioner_mismatch():
    from repro.cluster import ClusterConfigError, HashPartitioner

    a, b = DB(MemStorage(), Options()), DB(MemStorage(), Options())
    with pytest.raises(ClusterConfigError):
        ShardedDB.from_shards([a, b], partitioner=HashPartitioner(3))
    a.close()
    b.close()
