"""Pure election tie-break tests for failover candidate selection.

``elect_candidate`` is the deterministic core of automatic failover:
given one probe status per endpoint it must always pick the follower
that loses the least data, and break every tie the same way on every
run — epoch desc, applied sequence desc, endpoint order asc.
"""

from repro.replication import elect_candidate


def _status(endpoint, role="follower", epoch=0, applied_seq=0, up=True):
    return {
        "endpoint": endpoint,
        "reachable": up,
        "role": role,
        "epoch": epoch,
        "applied_seq": applied_seq,
    }


def test_no_candidates():
    assert elect_candidate([]) is None
    assert elect_candidate([_status(("a", 1), up=False)]) is None
    assert elect_candidate([_status(("a", 1), role="primary")]) is None
    assert elect_candidate([_status(("a", 1), role=None, up=False)]) is None


def test_most_caught_up_wins():
    statuses = [
        _status(("a", 1), applied_seq=100),
        _status(("b", 2), applied_seq=250),
        _status(("c", 3), applied_seq=175),
    ]
    assert elect_candidate(statuses)["endpoint"] == ("b", 2)


def test_higher_epoch_beats_higher_seq():
    # A follower that already lived through a later fencing epoch must
    # outrank a longer log from a dead generation.
    statuses = [
        _status(("a", 1), epoch=1, applied_seq=50),
        _status(("b", 2), epoch=0, applied_seq=500),
    ]
    assert elect_candidate(statuses)["endpoint"] == ("a", 1)


def test_equal_epochs_fall_back_to_seq():
    statuses = [
        _status(("a", 1), epoch=2, applied_seq=10),
        _status(("b", 2), epoch=2, applied_seq=11),
    ]
    assert elect_candidate(statuses)["endpoint"] == ("b", 2)


def test_full_tie_breaks_by_endpoint_order():
    # Equal epochs and equal WAL positions: the configured endpoint
    # order decides, so two coordinators with the same config promote
    # the same node.
    statuses = [
        _status(("z", 9), epoch=1, applied_seq=42),
        _status(("a", 1), epoch=1, applied_seq=42),
    ]
    assert elect_candidate(statuses)["endpoint"] == ("z", 9)
    assert elect_candidate(list(reversed(statuses)))["endpoint"] == ("a", 1)


def test_unreachable_and_primaries_skipped_mid_list():
    statuses = [
        _status(("p", 1), role="primary", epoch=5, applied_seq=999),
        _status(("dead", 2), applied_seq=900, up=False),
        _status(("f", 3), applied_seq=100),
    ]
    assert elect_candidate(statuses)["endpoint"] == ("f", 3)


def test_missing_fields_default_to_zero():
    statuses = [
        {"endpoint": ("bare", 1), "reachable": True, "role": "follower"},
        _status(("full", 2), epoch=0, applied_seq=1),
    ]
    assert elect_candidate(statuses)["endpoint"] == ("full", 2)
