"""WAL retention index and idempotent replicated apply.

These are the two local building blocks the log-shipping path leans
on: the primary keeps retired WALs (byte-capped) so a reconnecting
follower can bridge without a snapshot, and the follower applies
shipped records exactly once no matter how the stream is replayed.
"""

import pytest

from repro.db import DB
from repro.devices import MemStorage
from repro.lsm import Options
from repro.lsm.wal import WalRetention, WriteBatch

from tests.helpers import small_options


# ------------------------------------------------------- WalRetention
class _CountingStorage(MemStorage):
    """MemStorage that records delete() calls."""

    def __init__(self):
        super().__init__()
        self.deleted = []

    def delete(self, name):
        self.deleted.append(name)
        super().delete(name)


def _put_file(storage, name, size):
    with storage.create(name) as f:
        f.append(b"x" * size)


def test_retention_prunes_oldest_first():
    storage = _CountingStorage()
    for name in ("000001.log", "000002.log", "000003.log"):
        _put_file(storage, name, 100)
    ret = WalRetention(storage, retain_bytes=250)
    ret.add("000001.log", 1, 10, 100)
    ret.add("000002.log", 11, 20, 100)
    assert ret.total_bytes == 200
    ret.add("000003.log", 21, 30, 100)  # 300 > cap → oldest goes
    assert ret.file_names() == ["000002.log", "000003.log"]
    assert storage.deleted == ["000001.log"]
    assert ret.floor_seq == 11
    assert ret.ceiling_seq == 30


def test_retention_keeps_single_oversized_file():
    storage = _CountingStorage()
    _put_file(storage, "000001.log", 1000)
    ret = WalRetention(storage, retain_bytes=10)
    ret.add("000001.log", 1, 50, 1000)
    # An oversized WAL still bridges: never prune down to nothing.
    assert ret.file_names() == ["000001.log"]
    assert ret.covers(1)


def test_retention_covers_is_floor_based():
    storage = _CountingStorage()
    _put_file(storage, "000002.log", 100)
    ret = WalRetention(storage, retain_bytes=1000)
    assert not ret.covers(1)  # empty index bridges nothing
    ret.add("000002.log", 11, 20, 100)
    assert not ret.covers(10)  # before the floor → snapshot needed
    assert ret.covers(11)
    assert ret.covers(25)  # above the ceiling is fine: live WAL takes over


def test_db_retention_populated_on_flush():
    db = DB(
        MemStorage(),
        small_options(wal_retain_bytes=8 * 1024 * 1024),
    )
    try:
        assert db.wal_retention is not None
        assert db.wal_retention.file_names() == []
        for i in range(500):
            db.put(f"key{i:04d}".encode(), b"v" * 64)
        # small_options' 16 KiB memtable guarantees flushes happened.
        assert db.stats.flushes > 0
        names = db.wal_retention.file_names()
        assert names, "retired WALs should be retained, not deleted"
        assert db.wal_retention.covers(db.wal_retention.floor_seq)
        # Replay from the floor reaches the present.
        replayed = 0
        for base, count, _ in db.wal_retention.records_from(
            db.wal_retention.floor_seq
        ):
            replayed += count
        assert replayed > 0
    finally:
        db.close()


def test_db_without_retention_deletes_retired_wals():
    db = DB(MemStorage(), small_options())
    try:
        assert db.wal_retention is None
        for i in range(500):
            db.put(f"key{i:04d}".encode(), b"v" * 64)
        assert db.stats.flushes > 0
        logs = [n for n in db.storage.list() if n.endswith(".log")]
        assert len(logs) == 1, f"only the live WAL should remain: {logs}"
    finally:
        db.close()


# --------------------------------------------------- apply_replicated
def _shipping_pair():
    """A primary that captures WAL records and an empty follower."""
    primary = DB(MemStorage(), Options())
    records = []
    primary.add_wal_listener(
        lambda base, last, record: records.append(record)
    )
    follower = DB(MemStorage(), Options())
    return primary, follower, records


def test_apply_replicated_mirrors_primary():
    primary, follower, records = _shipping_pair()
    try:
        primary.put(b"a", b"1")
        primary.put(b"b", b"2")
        primary.delete(b"a")
        primary.write(WriteBatch().put(b"c", b"3").put(b"d", b"4"))
        for record in records:
            assert follower.apply_replicated(record) is True
        assert follower.last_sequence == primary.last_sequence
        assert follower.get(b"a") is None
        assert follower.get(b"b") == b"2"
        assert follower.get(b"c") == b"3"
        assert follower.get(b"d") == b"4"
    finally:
        primary.close()
        follower.close()


def test_apply_replicated_skips_duplicates():
    primary, follower, records = _shipping_pair()
    try:
        primary.put(b"k1", b"v1")
        primary.put(b"k2", b"v2")
        for record in records:
            assert follower.apply_replicated(record) is True
        # Redelivery after reconnect: same records again, no effect.
        for record in records:
            assert follower.apply_replicated(record) is False
        assert follower.last_sequence == primary.last_sequence
        assert follower.stats.writes == 2
    finally:
        primary.close()
        follower.close()


def test_apply_replicated_rejects_gaps():
    primary, follower, records = _shipping_pair()
    try:
        primary.put(b"k1", b"v1")
        primary.put(b"k2", b"v2")
        primary.put(b"k3", b"v3")
        assert follower.apply_replicated(records[0])
        with pytest.raises(ValueError, match="replication gap"):
            follower.apply_replicated(records[2])
        # The follower did not diverge: k2 onward never applied.
        assert follower.last_sequence == 1
        assert follower.get(b"k2") is None
    finally:
        primary.close()
        follower.close()
