"""Protocol v2 codecs and version-negotiation compatibility.

The compatibility half runs a ~30-line fake *protocol-1* server (it
echoes PING bodies and BAD_REQUESTs any opcode it does not know, which
is exactly what the PR 1-5 server did) and proves the failure mode the
versioned hello buys: replication-era clients get one clear
``ProtocolTooOldError`` instead of a frame desync.
"""

import socketserver
import threading

import pytest

from repro.server import protocol as P


# ------------------------------------------------------------- codecs
def test_hello_roundtrip():
    body = P.encode_hello_body()
    assert P.decode_hello_body(body) == (P.PROTOCOL_MAJOR, P.PROTOCOL_MINOR, None)


@pytest.mark.parametrize("ack_level", [0, 1, 3, -1])
def test_hello_ack_level_roundtrip(ack_level):
    major, minor, acks = P.decode_hello_body(
        P.encode_hello_body(ack_level=ack_level)
    )
    assert (major, minor, acks) == (P.PROTOCOL_MAJOR, P.PROTOCOL_MINOR, ack_level)


def test_hello_without_magic_is_not_a_hello():
    assert P.decode_hello_body(b"") is None
    assert P.decode_hello_body(b"just a ping payload") is None


def test_hello_ack_roundtrip_and_echo_detection():
    assert P.decode_hello_ack(P.encode_hello_ack()) == (
        P.PROTOCOL_MAJOR,
        P.PROTOCOL_MINOR,
    )
    # A pre-versioning server echoes the hello body verbatim; the
    # missing ack marker must classify it as protocol 1.
    assert P.decode_hello_ack(P.encode_hello_body()) is None


def test_subscribe_roundtrip():
    body = P.encode_subscribe_body(1234, 7, b"follower-9")
    assert P.decode_subscribe_body(body) == (1234, 7, b"follower-9")
    ack = P.encode_subscribe_ack(P.SUB_MODE_SNAPSHOT, 7, 999)
    assert P.decode_subscribe_ack(ack) == (P.SUB_MODE_SNAPSHOT, 7, 999)


def test_ship_records_roundtrip():
    records = [b"record-a", b"record-bb", b""]
    kind, decoded = P.decode_ship_body(P.encode_ship_records(records))
    assert kind == P.SHIP_RECORDS
    assert decoded == records


def test_ship_snapshot_message_roundtrips():
    begin = P.decode_ship_body(P.encode_ship_snap_begin(55, 3))
    assert begin == (P.SHIP_SNAP_BEGIN, 55, 3)
    file_msg = P.decode_ship_body(
        P.encode_ship_snap_file(2, "000005.sst", 4096, b"aaa\x00", b"zzz\x01")
    )
    assert file_msg == (
        P.SHIP_SNAP_FILE, 2, "000005.sst", 4096, b"aaa\x00", b"zzz\x01",
    )
    chunk = P.decode_ship_body(P.encode_ship_snap_chunk(b"\x00\x01data"))
    assert chunk == (P.SHIP_SNAP_CHUNK, b"\x00\x01data")
    end = P.decode_ship_body(P.encode_ship_snap_end(55))
    assert end == (P.SHIP_SNAP_END, 55)
    goodbye = P.decode_ship_body(P.encode_ship_goodbye("shutting down"))
    assert goodbye == (P.SHIP_GOODBYE, "shutting down")


def test_repl_ack_roundtrip():
    assert P.decode_repl_ack_body(P.encode_repl_ack_body(2**40)) == 2**40


def test_ship_body_rejects_unknown_kind():
    with pytest.raises(P.ProtocolError):
        P.decode_ship_body(bytes([99]))


# ---------------------------------------------- protocol-1 fake server
class _V1Handler(socketserver.BaseRequestHandler):
    """What a PR 1-5 server does: echo PING, reject unknown opcodes."""

    def handle(self):
        buf = b""
        while True:
            try:
                chunk = self.request.recv(65536)
            except OSError:
                return
            if not chunk:
                return
            buf += chunk
            while len(buf) >= 4:
                length = P.frame_length(buf[:4])
                if len(buf) < length + 8:
                    break
                payload = P.decode_frame(length, buf[4:length + 8])
                buf = buf[length + 8:]
                request = P.decode_request(payload)
                if request.opcode == P.OP_PING:
                    response = P.encode_response(
                        P.ST_OK, request.request_id, request.body
                    )
                else:
                    response = P.encode_response(
                        P.ST_BAD_REQUEST, request.request_id,
                        P.encode_lp(b"unhandled opcode"),
                    )
                self.request.sendall(response)


@pytest.fixture
def v1_server():
    server = socketserver.ThreadingTCPServer(
        ("127.0.0.1", 0), _V1Handler, bind_and_activate=True
    )
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever, name="v1-echo-server", daemon=True
    )
    thread.start()
    try:
        yield server.server_address
    finally:
        server.shutdown()
        server.server_close()


def test_hello_against_v1_server_reports_protocol_1(v1_server):
    from repro.server.client import SyncClient

    host, port = v1_server
    client = SyncClient(host, port)
    try:
        assert client.hello() == (1, 0)
    finally:
        client.close()


def test_remote_shard_refuses_v1_server_with_clear_error(v1_server):
    from repro.replication import ProtocolTooOldError, RemoteShard

    host, port = v1_server
    with pytest.raises(ProtocolTooOldError, match="protocol 1"):
        RemoteShard(host, port)


def test_follower_against_v1_server_halts_with_clear_error(v1_server, tmp_path):
    from repro.db import DB
    from repro.devices import OSStorage
    from repro.lsm import Options
    from repro.replication import Follower

    host, port = v1_server
    db = DB(OSStorage(str(tmp_path)), Options())
    follower = Follower(
        db, db.storage, lambda: None, host, port, "f-old"
    ).start()
    follower._thread.join(timeout=10)
    try:
        # Terminal: no retry loop against an unfixable mismatch.
        assert not follower._thread.is_alive()
        assert "replication" in (follower.last_error or "")
    finally:
        follower.stop()
        db.close()


def test_v2_server_rejects_future_major(tmp_path):
    from repro.db import DB
    from repro.devices import OSStorage
    from repro.lsm import Options
    from repro.server.client import ClientError, SyncClient
    from repro.server.server import ServerThread

    db = DB(OSStorage(str(tmp_path)), Options())
    with ServerThread(db) as handle:
        client = SyncClient(handle.host, handle.port)
        try:
            with pytest.raises(ClientError, match="unsupported protocol"):
                client.ping(P.encode_hello_body(major=99))
            # The connection survives the rejection.
            assert client.hello() == (P.PROTOCOL_MAJOR, P.PROTOCOL_MINOR)
        finally:
            client.close()
