"""Primary/follower log shipping over the loopback wire.

The acceptance scenario: a 1-primary/2-follower cluster sustains
writes at ack=1, keeps flowing when one follower is killed, and the
restarted follower catches back up — via the in-memory ring, the
retained-WAL bridge, or a full SST snapshot, whichever its lag
demands.  Fencing is checked both at the hub and over the raw wire.
"""

import socket
import time

import pytest

from repro.db import DB
from repro.devices import MemStorage
from repro.lsm import Options
from repro.replication import FencedError, Follower, ReplicationHub
from repro.server import protocol as P
from repro.server.client import SyncClient
from repro.server.server import ServerConfig, ServerThread

from tests.helpers import small_options


def _wait(predicate, timeout=10.0, interval=0.01, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {what}")


def _start_follower(handle, follower_id, db=None):
    if db is None:
        db = DB(MemStorage(), Options())
    storage = db.storage

    def factory():
        return DB(storage, Options())

    follower = Follower(
        db, storage, factory, handle.host, handle.port, follower_id,
        retry_interval_s=0.05,
    )
    return follower.start()


def test_one_primary_two_followers_end_to_end():
    primary = DB(MemStorage(), Options(wal_retain_bytes=8 * 1024 * 1024))
    hub = ReplicationHub(primary)
    config = ServerConfig(repl_acks=1, repl_ack_timeout_s=5.0)
    followers = []
    with ServerThread(
        primary, config, own_db=False, hub=hub
    ) as handle:
        a = _start_follower(handle, "follower-a")
        b = _start_follower(handle, "follower-b")
        followers += [a, b]
        try:
            _wait(lambda: hub.n_followers == 2, what="both followers")

            # Phase 1: writes flow at ack=1 and reach both followers.
            client = SyncClient(handle.host, handle.port)
            assert client.hello() == (2, P.PROTOCOL_MINOR)
            for i in range(100):
                client.put(f"key{i:04d}".encode(), f"val{i}".encode())
            target = primary.last_sequence
            _wait(
                lambda: a.db.last_sequence >= target
                and b.db.last_sequence >= target,
                what="both followers caught up",
            )
            assert a.db.get(b"key0000") == b"val0"
            assert b.db.get(b"key0099") == b"val99"
            status = hub.followers_status()
            assert {s["id"] for s in status} == {
                "follower-a", "follower-b",
            }

            # Phase 2: kill one follower; ack=1 writes keep flowing
            # (the survivor's ack satisfies the barrier) and the dead
            # subscriber is reaped when the next push hits its socket.
            b.stop()
            for i in range(100, 150):
                client.put(f"key{i:04d}".encode(), f"val{i}".encode())
            assert primary.get(b"key0149") == b"val149"
            _wait(lambda: hub.n_followers == 1, what="dead follower reaped")
            target = primary.last_sequence
            _wait(
                lambda: a.db.last_sequence >= target,
                what="survivor caught up",
            )

            # Phase 3: the restarted follower bridges the records it
            # missed — zero lost acked writes.
            b2 = _start_follower(handle, "follower-b", db=b.db)
            followers.append(b2)
            _wait(lambda: hub.n_followers == 2, what="follower-b rejoined")
            _wait(
                lambda: b2.db.last_sequence >= target,
                what="rejoined follower caught up",
            )
            for i in range(150):
                assert b2.db.get(f"key{i:04d}".encode()) == (
                    f"val{i}".encode()
                ), f"acked write key{i:04d} lost across follower restart"

            client.close()
        finally:
            pass

    # Server shut down while followers were tailing: each live tail
    # receives a clean GOODBYE instead of a dropped socket.
    _wait(
        lambda: a.goodbyes >= 1 and followers[-1].goodbyes >= 1,
        timeout=5.0, what="clean goodbyes",
    )
    assert a.last_error is None
    for follower in followers:
        follower.stop()
        follower.db.close()
    primary.close()


def test_fresh_follower_catches_up_via_snapshot():
    # Writes land *before* the hub exists, so neither the ring nor any
    # retained WAL covers them: the join must stream a snapshot.
    primary = DB(MemStorage(), small_options())
    for i in range(300):
        primary.put(f"snap{i:04d}".encode(), b"v" * 40)
    primary.flush()
    hub = ReplicationHub(primary)
    with ServerThread(primary, own_db=False, hub=hub) as handle:
        empty_db = DB(MemStorage(), Options())
        follower = _start_follower(handle, "late-joiner", db=empty_db)
        try:
            _wait(
                lambda: follower.db.last_sequence >= primary.last_sequence,
                what="snapshot install",
            )
            # Snapshot install reopens the store: the serving DB was
            # swapped out, proving the SST-streaming path ran.
            assert follower.db is not empty_db
            assert follower.db.get(b"snap0000") == b"v" * 40
            assert follower.db.get(b"snap0299") == b"v" * 40

            # The stream continues live after the snapshot.
            primary.put(b"post-snap", b"live")
            _wait(
                lambda: follower.db.get(b"post-snap") == b"live",
                what="live tail after snapshot",
            )
        finally:
            follower.stop()
            follower.db.close()
    primary.close()


def test_fresh_follower_bridges_via_retained_wal():
    # A tiny ring forgets the early records, but retention keeps the
    # retired WAL files: the join replays them instead of snapshotting.
    primary = DB(
        MemStorage(), small_options(wal_retain_bytes=8 * 1024 * 1024)
    )
    hub = ReplicationHub(primary, buffer_bytes=2048)
    for i in range(300):
        primary.put(f"wal{i:04d}".encode(), b"v" * 40)
    primary.flush()  # retention ceiling reaches the present
    assert primary.wal_retention.file_names()
    with ServerThread(primary, own_db=False, hub=hub) as handle:
        empty_db = DB(MemStorage(), Options())
        follower = _start_follower(handle, "bridger", db=empty_db)
        try:
            _wait(
                lambda: follower.db.last_sequence >= primary.last_sequence,
                what="retained-WAL bridge",
            )
            # No snapshot was needed: same DB object, mode stayed WAL.
            assert follower.db is empty_db
            assert follower.mode == "wal"
            for i in range(0, 300, 37):
                assert follower.db.get(f"wal{i:04d}".encode()) == b"v" * 40
        finally:
            follower.stop()
            follower.db.close()
    primary.close()


def test_ack_majority_resolution():
    primary = DB(MemStorage(), Options())
    hub = ReplicationHub(primary)
    try:
        # majority of (followers + primary): 0 followers → 0 acks
        # needed, 1 → 1, 2 → 1, 3 → 2, 4 → 2.
        assert hub.resolve_need(-1) == 0
        assert hub.resolve_need(0) == 0
        assert hub.resolve_need(2) == 2
        for n in (1, 2, 3, 4):
            hub.subscribe(f"f{n}", primary.last_sequence + 1, 0)
            expected = (n + 1) // 2
            assert hub.resolve_need(-1) == expected, f"{n} followers"
    finally:
        hub.detach()
        primary.close()


def test_unacked_write_stalls_at_ack1():
    primary = DB(MemStorage(), Options())
    hub = ReplicationHub(primary)
    config = ServerConfig(repl_acks=1, repl_ack_timeout_s=0.2)
    with ServerThread(primary, config, own_db=False, hub=hub) as handle:
        client = SyncClient(handle.host, handle.port, max_retries=1)
        from repro.server.client import ServerBusyError

        with pytest.raises(ServerBusyError):
            client.put(b"k", b"v")  # no follower will ever ack
        # The write itself is locally durable; only the ack barrier
        # failed — retrying once a follower joins is idempotent.
        assert primary.get(b"k") == b"v"
        client.close()
    primary.close()


def test_hub_fences_stale_primary():
    primary = DB(MemStorage(), Options())
    hub = ReplicationHub(primary)
    try:
        with pytest.raises(FencedError, match="superseded"):
            hub.subscribe("f1", 1, follower_epoch=primary.repl_epoch + 1)
    finally:
        hub.detach()
        primary.close()


def test_wire_subscribe_fenced_status():
    primary = DB(MemStorage(), Options())
    hub = ReplicationHub(primary)
    with ServerThread(primary, own_db=False, hub=hub) as handle:
        sock = socket.create_connection((handle.host, handle.port), 5.0)
        try:
            sock.sendall(
                P.encode_request(
                    P.OP_REPL_SUBSCRIBE,
                    7,
                    P.encode_subscribe_body(1, 99, b"usurper"),
                )
            )
            header = _recv_exact(sock, 4)
            length = P.frame_length(header)
            payload = P.decode_frame(length, _recv_exact(sock, length + 4))
            response = P.decode_response(payload)
            assert response.status == P.ST_FENCED
            assert response.request_id == 7
        finally:
            sock.close()
    primary.close()


def _recv_exact(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise AssertionError("connection closed early")
        buf += chunk
    return buf
