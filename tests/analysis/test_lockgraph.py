"""Static lock-graph pass: seeded cycles fire with both witness
paths, the interprocedural resolution crosses modules, and the real
tree stays cycle-free (the CI self-clean gate, in miniature)."""

import json
import textwrap

from repro.analysis.lockgraph import (
    CYCLE_CODE,
    SELF_DEADLOCK_CODE,
    analyze_lock_graph,
)

CYCLE_SRC = textwrap.dedent(
    """
    from repro.analysis.locksan import make_lock


    class Pair:
        def __init__(self):
            self.a = make_lock("t.a")
            self.b = make_lock("t.b")

        def forward(self):
            with self.a:
                with self.b:
                    pass

        def backward(self):
            with self.b:
                self.helper()

        def helper(self):
            with self.a:
                pass
    """
)

SELF_SRC = textwrap.dedent(
    """
    from repro.analysis.locksan import make_lock


    class Selfish:
        def __init__(self):
            self.guard = make_lock("t.me")

        def outer(self):
            with self.guard:
                self.inner()

        def inner(self):
            with self.guard:
                pass
    """
)


class TestCycleDetection:
    def test_seeded_cycle_reports_both_witness_paths(self, tmp_path):
        (tmp_path / "mod.py").write_text(CYCLE_SRC)
        report = analyze_lock_graph([str(tmp_path)])
        assert report.cycles == [["t.a", "t.b"]]
        findings = report.findings()
        cycle = [f for f in findings if f.code == CYCLE_CODE]
        assert len(cycle) == 1
        finding = cycle[0]
        assert "t.a" in finding.message and "t.b" in finding.message
        # Both directions of the conflict carry full witness chains.
        assert "order t.a -> t.b established by:" in finding.detail
        assert "order t.b -> t.a established by:" in finding.detail
        # The b->a direction is interprocedural: through helper().
        assert "helper" in finding.detail

    def test_consistent_order_is_clean(self, tmp_path):
        src = CYCLE_SRC.replace(
            'with self.a:\n            pass',
            'pass',
        )
        # Remove the conflicting helper body: no b->a edge remains.
        (tmp_path / "mod.py").write_text(src)
        report = analyze_lock_graph([str(tmp_path)])
        assert report.cycles == []

    def test_cross_module_cycle(self, tmp_path):
        (tmp_path / "one.py").write_text(
            textwrap.dedent(
                """
                from repro.analysis.locksan import make_lock

                cache_lock = make_lock("x.cache")
                mutex_lock = make_lock("x.mutex")


                def locked_refill():
                    with cache_lock:
                        pass


                def refill_under_mutex():
                    with mutex_lock:
                        locked_refill()
                """
            )
        )
        (tmp_path / "two.py").write_text(
            textwrap.dedent(
                """
                from one import mutex_lock, cache_lock


                def evict_under_cache():
                    with cache_lock:
                        with mutex_lock:
                            pass
                """
            )
        )
        report = analyze_lock_graph([str(tmp_path)])
        assert report.cycles == [["x.cache", "x.mutex"]]

    def test_noqa_suppresses_at_anchor_line(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(CYCLE_SRC)
        finding = analyze_lock_graph([str(tmp_path)]).findings()[0]
        lines = CYCLE_SRC.splitlines()
        lines[finding.line - 1] += "  # repro: noqa[RA110]"
        path.write_text("\n".join(lines) + "\n")
        assert analyze_lock_graph([str(tmp_path)]).findings() == []


class TestSelfDeadlock:
    def test_nonrecursive_reacquire_through_call_chain(self, tmp_path):
        (tmp_path / "mod.py").write_text(SELF_SRC)
        report = analyze_lock_graph([str(tmp_path)])
        findings = [
            f
            for f in report.findings()
            if f.code == SELF_DEADLOCK_CODE
        ]
        assert len(findings) == 1
        assert "t.me" in findings[0].message
        # The witness chain walks outer -> inner -> re-acquire.
        assert "outer" in findings[0].detail
        assert "inner" in findings[0].detail

    def test_recursive_lock_is_exempt(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            SELF_SRC.replace("make_lock", "make_rlock")
        )
        report = analyze_lock_graph([str(tmp_path)])
        assert report.self_deadlocks == []


class TestDumps:
    def test_dot_marks_cycle_edges(self, tmp_path):
        (tmp_path / "mod.py").write_text(CYCLE_SRC)
        dot = analyze_lock_graph([str(tmp_path)]).to_dot()
        assert dot.startswith("digraph lock_order {")
        assert '"t.a" -> "t.b" [color=red, penwidth=2];' in dot
        assert '"t.b" -> "t.a" [color=red, penwidth=2];' in dot

    def test_json_round_trips(self, tmp_path):
        (tmp_path / "mod.py").write_text(CYCLE_SRC)
        doc = json.loads(analyze_lock_graph([str(tmp_path)]).to_json())
        assert set(doc["nodes"]) == {"t.a", "t.b"}
        assert doc["cycles"] == [["t.a", "t.b"]]
        srcs = {(e["src"], e["dst"]) for e in doc["edges"]}
        assert srcs == {("t.a", "t.b"), ("t.b", "t.a")}
        # Every edge carries a witness path with file:line steps.
        for edge in doc["edges"]:
            assert edge["witness"], edge
            assert all("line" in step for step in edge["witness"])


class TestRealTree:
    def test_src_repro_is_cycle_free(self):
        report = analyze_lock_graph(["src/repro"])
        assert report.cycles == []
        assert report.self_deadlocks == []
        # The pass sees the engine's real discipline, not an empty graph.
        edge_pairs = {(e.src, e.dst) for e in report.edges}
        assert ("db.mutex", "db.file_number") in edge_pairs
