"""Lock-order sanitizer: seeded inversions fire (with both stacks),
the real engine stays cycle-free under a sanitizer-enabled workload."""

import threading

import pytest

from repro.analysis.locksan import (
    LOCK_SANITIZER_ENV,
    LockGraph,
    LockOrderViolation,
    OrderedLock,
    global_graph,
    make_lock,
    make_rlock,
    sanitizer_enabled,
)


class TestFactories:
    def test_disabled_by_default_returns_raw_primitives(self, monkeypatch):
        monkeypatch.delenv(LOCK_SANITIZER_ENV, raising=False)
        assert not sanitizer_enabled()
        assert isinstance(make_lock("x"), type(threading.Lock()))
        assert isinstance(make_rlock("x"), type(threading.RLock()))

    def test_zero_means_disabled(self, monkeypatch):
        monkeypatch.setenv(LOCK_SANITIZER_ENV, "0")
        assert not sanitizer_enabled()

    def test_enabled_returns_ordered_locks(self, monkeypatch):
        monkeypatch.setenv(LOCK_SANITIZER_ENV, "1")
        assert sanitizer_enabled()
        lock = make_lock("test.enabled")
        rlock = make_rlock("test.enabled.r")
        assert isinstance(lock, OrderedLock) and not lock.recursive
        assert isinstance(rlock, OrderedLock) and rlock.recursive


class TestOrderedLockSemantics:
    def test_with_and_locked(self):
        lock = OrderedLock("t.basic", graph=LockGraph())
        assert not lock.locked()
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_recursive_reentry(self):
        graph = LockGraph()
        lock = OrderedLock("t.rec", recursive=True, graph=graph)
        with lock:
            with lock:
                assert lock.locked()
            assert lock.locked()
        assert not lock.locked()
        # Re-entry records no self-edge.
        assert graph.edges() == []

    def test_acquire_nonblocking_failure_leaves_no_held_state(self):
        graph = LockGraph()
        lock = OrderedLock("t.nb", graph=graph)
        other = OrderedLock("t.nb.other", graph=graph)

        def hold_and_signal(acquired, release):
            with lock:
                acquired.set()
                release.wait(timeout=5)

        acquired, release = threading.Event(), threading.Event()
        t = threading.Thread(
            target=hold_and_signal, args=(acquired, release), name="t-nb-holder"
        )
        t.start()
        try:
            assert acquired.wait(timeout=5)
            # Failed non-blocking acquire: nothing held, nothing to release.
            assert lock.acquire(blocking=False) is False  # repro: noqa[RA101]
            assert lock.locked()  # held by the other thread, not ours
            # This thread holds nothing: acquiring another lock records
            # no edge from the failed acquire.
            with other:
                pass
            assert graph.edges() == []
        finally:
            release.set()
            t.join()

    def test_nested_acquisition_records_edge(self):
        graph = LockGraph()
        a = OrderedLock("t.a", graph=graph)
        b = OrderedLock("t.b", graph=graph)
        with a:
            with b:
                pass
        assert graph.edges() == [("t.a", "t.b")]

    def test_condition_wait_notify_roundtrip(self):
        graph = LockGraph()
        mutex = OrderedLock("t.cond", recursive=True, graph=graph)
        cond = threading.Condition(mutex)
        state = {"ready": False}

        def producer():
            with cond:
                state["ready"] = True
                cond.notify_all()

        t = threading.Thread(target=producer, name="t-cond-producer")
        with cond:
            t.start()
            while not state["ready"]:
                cond.wait(timeout=5)
            # wait() fully released and restored the lock.
            assert mutex.locked()
        t.join()
        assert not mutex.locked()


class TestInversionDetection:
    def test_seeded_inversion_raises_with_both_stacks(self):
        graph = LockGraph()
        a = OrderedLock("seed.A", graph=graph)
        b = OrderedLock("seed.B", graph=graph)

        def establish_ab():  # the stack the report must point back to
            with a:
                with b:
                    pass

        establish_ab()
        with pytest.raises(LockOrderViolation) as excinfo:
            with b:
                with a:
                    pass
        message = str(excinfo.value)
        assert "seed.A" in message and "seed.B" in message
        assert "conflicting acquisition (now)" in message
        assert "first established here" in message
        # Both stacks are real tracebacks naming this test module.
        assert message.count("test_locksan") >= 2
        assert "establish_ab" in message

        assert len(graph.violations) == 1
        record = graph.violations[0]
        assert record["acquiring"] == "seed.A"
        assert record["holding"] == "seed.B"
        assert record["cycle"] == ["seed.B", "seed.A", "seed.B"]
        assert "seed.B -> seed.A -> seed.B" in message

    def test_three_lock_cycle_detected(self):
        graph = LockGraph()
        a = OrderedLock("tri.A", graph=graph)
        b = OrderedLock("tri.B", graph=graph)
        c = OrderedLock("tri.C", graph=graph)
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with pytest.raises(LockOrderViolation):
            with c:
                with a:
                    pass
        assert graph.violations[0]["cycle"] == ["tri.C", "tri.A", "tri.B", "tri.C"]

    def test_consistent_order_never_fires(self):
        graph = LockGraph()
        a = OrderedLock("ok.A", graph=graph)
        b = OrderedLock("ok.B", graph=graph)
        for _ in range(3):
            with a:
                with b:
                    pass
        assert graph.violations == []

    def test_reset_clears_edges_and_violations(self):
        graph = LockGraph()
        a = OrderedLock("r.A", graph=graph)
        b = OrderedLock("r.B", graph=graph)
        with a:
            with b:
                pass
        assert graph.edges()
        graph.reset()
        assert graph.edges() == [] and graph.violations == []
        # Opposite order is now legal again.
        with b:
            with a:
                pass
        assert graph.edges() == [("r.B", "r.A")]


class TestSeededSubsystemInversions:
    """Real subsystem objects, seeded acquisition-order conflicts.

    Each test drives a *public* operation so the subsystem itself
    establishes its lock order in the global graph, then acquires in
    the conflicting order and asserts the violation carries both
    stacks — the conflicting acquisition and the establishing one."""

    @pytest.fixture()
    def sanitized(self, monkeypatch):
        monkeypatch.setenv(LOCK_SANITIZER_ENV, "1")
        graph = global_graph()
        graph.reset()
        yield graph
        graph.reset()

    def test_event_log_sink_inversion(self, sanitized):
        from repro.obs.events import EventLog

        probe = make_lock("test.sink_probe")

        def sink(record):
            with probe:
                pass

        log = EventLog(sink)
        log.emit("op_start")  # establishes obs.events -> test.sink_probe
        assert ("obs.events", "test.sink_probe") in sanitized.edges()
        with pytest.raises(LockOrderViolation) as excinfo:
            with probe:
                log.emit("op_end")
        message = str(excinfo.value)
        assert "obs.events" in message and "test.sink_probe" in message
        assert "conflicting acquisition (now)" in message
        assert "first established here" in message
        assert "emit" in message  # witness walks the real emit() path

    def test_compute_pool_gauge_inversion(self, sanitized):
        from repro.cluster.pool import SharedComputePool

        with SharedComputePool(1) as pool:
            # A real task: the worker updates its gauges under the
            # pool lock, establishing cluster.pool -> obs.gauge.
            pool.submit(lambda: None).result(timeout=5)
            assert ("cluster.pool", "obs.gauge") in sanitized.edges()
            gauge = pool.metrics.gauge("cluster.pool.active")
            with pytest.raises(LockOrderViolation) as excinfo:
                with gauge._lock:
                    with pool._lock:
                        pass
        message = str(excinfo.value)
        assert "cluster.pool" in message and "obs.gauge" in message
        assert len(sanitized.violations) == 1

    def test_replication_hub_db_inversion(self, sanitized):
        from repro.db.db import DB
        from repro.devices.vfs import MemStorage
        from repro.lsm.options import Options
        from repro.replication.hub import ReplicationHub

        with DB(MemStorage(), Options()) as db:
            hub = ReplicationHub(db)
            # The WAL listener runs under the DB lock and takes the
            # hub lock: a real put() establishes db.mutex -> repl.hub.
            db.put(b"key", b"value")
            assert ("db.mutex", "repl.hub") in sanitized.edges()
            with pytest.raises(LockOrderViolation) as excinfo:
                with hub._cond:
                    db.put(b"key-2", b"value-2")
        message = str(excinfo.value)
        assert "repl.hub" in message and "db.mutex" in message
        assert "_on_record" in message  # the establishing stack


class TestEngineUnderSanitizer:
    """The real DB + PCP backends, exercised with instrumented locks."""

    @pytest.fixture()
    def sanitized(self, monkeypatch):
        monkeypatch.setenv(LOCK_SANITIZER_ENV, "1")
        graph = global_graph()
        graph.reset()
        yield graph
        graph.reset()

    def _workload(self, db):
        for i in range(600):
            db.put(b"key-%05d" % (i % 200), b"value-%06d" % i)
        db.flush()
        db.compact_range()

    def test_background_pcp_db_reports_no_cycle(self, sanitized):
        from repro.core.procedures import ProcedureSpec
        from repro.db.db import DB
        from repro.devices.vfs import MemStorage
        from repro.lsm.options import Options

        options = Options(
            memtable_bytes=8 * 1024,
            sstable_bytes=8 * 1024,
            block_bytes=1024,
            level1_bytes=32 * 1024,
        )
        db = DB(
            MemStorage(),
            options,
            compaction_spec=ProcedureSpec.pcp(subtask_bytes=4 * 1024),
            background=True,
        )
        assert isinstance(db._lock, OrderedLock)
        try:
            self._workload(db)
            db.wait_for_compactions()
            reads = [db.get(b"key-%05d" % i) for i in range(200)]
            assert all(value is not None for value in reads)
        finally:
            db.close()
        assert sanitized.violations == []
        # The discipline the engine actually exercised was recorded.
        assert ("db.mutex", "db.file_number") in sanitized.edges()

    def test_sync_db_roundtrip_reports_no_cycle(self, sanitized):
        from repro.db.db import DB
        from repro.devices.vfs import MemStorage
        from repro.lsm.options import Options

        with DB(MemStorage(), Options(memtable_bytes=16 * 1024)) as db:
            self._workload(db)
            assert db.get(b"key-00000") is not None
        assert sanitized.violations == []
