"""Fixture tests: every RA rule fires on a minimal bad snippet and
stays silent on its good twin."""

import textwrap

from repro.analysis import check_source


def codes(source: str) -> set[str]:
    return {f.code for f in check_source(textwrap.dedent(source))}


# ----------------------------------------------------------------- RA101
BAD_RA101 = """
    import threading

    lock = threading.Lock()

    def work():
        lock.acquire()
        do_something()
        lock.release()
"""

GOOD_RA101_WITH = """
    import threading

    lock = threading.Lock()

    def work():
        with lock:
            do_something()
"""

GOOD_RA101_TRY = """
    import threading

    lock = threading.Lock()

    def work():
        lock.acquire()
        try:
            do_something()
        finally:
            lock.release()
"""

GOOD_RA101_INSIDE_TRY = """
    import threading

    lock = threading.Lock()

    def work():
        try:
            lock.acquire()
            do_something()
        finally:
            lock.release()
"""

GOOD_RA101_REACQUIRE = """
    import threading

    lock = threading.Lock()

    def run_unlocked():
        lock.release()
        try:
            do_something()
        finally:
            lock.acquire()
"""

GOOD_RA101_ADAPTER = """
    import threading

    class Wrapper:
        def __init__(self):
            self._inner = threading.Lock()

        def acquire(self):
            return self._inner.acquire()

        def release(self):
            self._inner.release()
"""


class TestRA101:
    def test_fires_on_raw_acquire(self):
        assert "RA101" in codes(BAD_RA101)

    def test_silent_on_with(self):
        assert "RA101" not in codes(GOOD_RA101_WITH)

    def test_silent_on_try_finally(self):
        assert "RA101" not in codes(GOOD_RA101_TRY)

    def test_silent_on_acquire_inside_try(self):
        assert "RA101" not in codes(GOOD_RA101_INSIDE_TRY)

    def test_silent_on_finally_reacquire(self):
        assert "RA101" not in codes(GOOD_RA101_REACQUIRE)

    def test_silent_on_lock_adapter_class(self):
        assert "RA101" not in codes(GOOD_RA101_ADAPTER)

    def test_fires_on_self_attribute_lock(self):
        assert "RA101" in codes(
            """
            import threading

            class Store:
                def __init__(self):
                    self._mutex = threading.RLock()

                def update(self):
                    self._mutex.acquire()
                    self.n = 1
                    self._mutex.release()
            """
        )

    def test_ignores_non_lock_release_semantics(self):
        # acquire() on something never assigned a lock constructor.
        assert "RA101" not in codes(
            """
            def f(session):
                session.acquire()
            """
        )


# ----------------------------------------------------------------- RA102
BAD_RA102 = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.total = 0

        def safe_add(self, n):
            with self._lock:
                self.total += n

        def racy_reset(self):
            self.total = 0
"""

GOOD_RA102 = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.total = 0

        def safe_add(self, n):
            with self._lock:
                self.total += n

        def safe_reset(self):
            with self._lock:
                self.total = 0
"""

GOOD_RA102_INIT_HELPER = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self.seq = 0
            self._recover()

        def _recover(self):
            self.seq = 7

        def bump(self):
            with self._lock:
                self.seq += 1
"""


class TestRA102:
    def test_fires_on_mixed_guarded_unguarded_writes(self):
        assert "RA102" in codes(BAD_RA102)

    def test_silent_when_all_writes_guarded(self):
        assert "RA102" not in codes(GOOD_RA102)

    def test_init_only_helpers_are_construction(self):
        assert "RA102" not in codes(GOOD_RA102_INIT_HELPER)

    def test_silent_without_a_class_lock(self):
        assert "RA102" not in codes(
            """
            class Plain:
                def a(self):
                    self.x = 1

                def b(self):
                    self.x = 2
            """
        )


# ----------------------------------------------------------------- RA103
BAD_RA103 = """
    import time

    def span():
        t0 = time.time()
        work()
        return time.time() - t0

    def latency():
        t0 = time.perf_counter()
        work()
        return time.perf_counter() - t0
"""

GOOD_RA103 = """
    import time

    def span():
        t0 = time.perf_counter()
        work()
        return time.perf_counter() - t0

    def timestamp():
        return time.time()
"""


class TestRA103:
    def test_fires_on_wall_clock_duration(self):
        assert "RA103" in codes(BAD_RA103)

    def test_silent_on_monotonic_durations_and_plain_timestamps(self):
        assert "RA103" not in codes(GOOD_RA103)

    def test_silent_without_perf_counter_in_module(self):
        # A module that never uses a monotonic clock is out of scope.
        assert "RA103" not in codes(
            """
            import time

            def age(t0):
                return time.time() - t0
            """
        )


# ----------------------------------------------------------------- RA104
class TestRA104:
    def test_fires_on_unnamed_thread(self):
        assert "RA104" in codes(
            """
            import threading

            t = threading.Thread(target=print)
            """
        )

    def test_silent_on_named_thread(self):
        assert "RA104" not in codes(
            """
            import threading

            t = threading.Thread(target=print, name="worker-0")
            """
        )

    def test_silent_on_kwargs_splat(self):
        assert "RA104" not in codes(
            """
            import threading

            def spawn(**kw):
                return threading.Thread(target=print, **kw)
            """
        )


# ----------------------------------------------------------------- RA105
BAD_RA105 = """
    def worker(q):
        while True:
            try:
                q.step()
            except Exception:
                continue
"""

GOOD_RA105_LOGS = """
    import logging

    def worker(q):
        while True:
            try:
                q.step()
            except Exception:
                logging.exception("step failed")
"""

GOOD_RA105_NARROW = """
    def worker(q):
        while True:
            try:
                q.step()
            except KeyError:
                continue
"""


class TestRA105:
    def test_fires_on_swallowed_broad_except_in_loop(self):
        assert "RA105" in codes(BAD_RA105)

    def test_fires_on_bare_except_pass(self):
        assert "RA105" in codes(
            """
            def worker(items):
                for item in items:
                    try:
                        item.run()
                    except:  # noqa: E722 (ruff); repro rule under test
                        pass
            """
        )

    def test_silent_when_logged(self):
        assert "RA105" not in codes(GOOD_RA105_LOGS)

    def test_silent_on_narrow_handler(self):
        assert "RA105" not in codes(GOOD_RA105_NARROW)

    def test_silent_outside_loops(self):
        assert "RA105" not in codes(
            """
            def once(q):
                try:
                    q.step()
                except Exception:
                    pass
            """
        )


# ----------------------------------------------------------------- RA106
BAD_RA106 = """
    def drain(q, stopped):
        while not stopped:
            item = q.get()
            handle(item)
"""

GOOD_RA106 = """
    import queue

    def drain(q, stopped):
        while not stopped:
            try:
                item = q.get(timeout=0.1)
            except queue.Empty:
                continue
            handle(item)
"""


class TestRA106:
    def test_fires_on_blocking_get_under_stop_flag(self):
        assert "RA106" in codes(BAD_RA106)

    def test_silent_with_timeout(self):
        assert "RA106" not in codes(GOOD_RA106)

    def test_silent_on_while_true_sentinel_loop(self):
        # No stop flag in the condition: sentinel shutdown is assumed.
        assert "RA106" not in codes(
            """
            def drain(q):
                while True:
                    item = q.get()
                    if item is None:
                        break
            """
        )

    def test_silent_on_dict_get(self):
        assert "RA106" not in codes(
            """
            def lookup(d, closed):
                while not closed:
                    value = d.get("key")
                    use(value)
            """
        )


# ----------------------------------------------------------------- RA107
class TestRA107:
    def test_fires_on_mutable_default(self):
        assert "RA107" in codes(
            """
            def collect(item, acc=[]):
                acc.append(item)
                return acc
            """
        )

    def test_fires_on_dict_call_default(self):
        assert "RA107" in codes(
            """
            def configure(*, overrides=dict()):
                return overrides
            """
        )

    def test_silent_on_none_default(self):
        assert "RA107" not in codes(
            """
            def collect(item, acc=None):
                acc = [] if acc is None else acc
                acc.append(item)
                return acc
            """
        )
