"""Engine plumbing: noqa suppression, reporters, CLI, dbtool analyze,
and the no-finding regression gate over the real tree."""

import json
import os
import textwrap

import pytest

import repro
from repro.analysis import check_paths, check_source
from repro.analysis.cli import main as analysis_main
from repro.tools.dbtool import main as dbtool_main

BAD_THREAD = textwrap.dedent(
    """
    import threading

    t = threading.Thread(target=print)
    """
)


class TestNoqa:
    def test_bracketed_noqa_suppresses_listed_code(self):
        src = "import threading\nt = threading.Thread(target=print)  # repro: noqa[RA104]\n"
        assert check_source(src) == []

    def test_bracketed_noqa_keeps_other_codes(self):
        src = (
            "import threading\n"
            "t = threading.Thread(target=print)  # repro: noqa[RA101]\n"
        )
        assert {f.code for f in check_source(src)} == {"RA104"}

    def test_bare_noqa_suppresses_everything(self):
        src = "import threading\nt = threading.Thread(target=print)  # repro: noqa\n"
        assert check_source(src) == []

    def test_syntax_error_becomes_parse_finding(self):
        findings = check_source("def broken(:\n")
        assert [f.code for f in findings] == ["RA001"]


class TestCLI:
    def test_exit_one_and_text_report_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_THREAD)
        assert analysis_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RA104" in out and "bad.py" in out
        assert "1 finding(s)" in out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert analysis_main([str(good)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_THREAD)
        assert analysis_main(["--format", "json", str(bad)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["total"] == 1
        assert doc["counts"] == {"RA104": 1}
        assert doc["findings"][0]["code"] == "RA104"
        assert doc["findings"][0]["line"] == 4

    def test_select_narrows_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_THREAD)
        assert analysis_main(["--select", "RA101", str(bad)]) == 0
        assert analysis_main(["--select", "ra104", str(bad)]) == 1

    def test_select_unknown_code_errors(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1\n")
        with pytest.raises(SystemExit):
            analysis_main(["--select", "RA999", str(bad)])

    def test_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ["RA101", "RA102", "RA103", "RA104", "RA105", "RA106", "RA107"]:
            assert code in out

    def test_skips_pycache_and_dedups(self, tmp_path):
        pkg = tmp_path / "pkg"
        cache = pkg / "__pycache__"
        cache.mkdir(parents=True)
        (pkg / "mod.py").write_text(BAD_THREAD)
        (cache / "stale.py").write_text(BAD_THREAD)
        findings = check_paths([str(pkg), str(pkg / "mod.py")])
        assert len(findings) == 1


class TestDbtoolAnalyze:
    def test_mirrors_module_cli(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_THREAD)
        assert dbtool_main(["analyze", str(bad)]) == 1
        assert "RA104" in capsys.readouterr().out
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert dbtool_main(["analyze", str(good)]) == 0

    def test_json_passthrough(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_THREAD)
        assert dbtool_main(["analyze", "--format", "json", str(bad)]) == 1
        assert json.loads(capsys.readouterr().out)["total"] == 1


WARNING_ONLY = textwrap.dedent(
    """
    def commit(self, record):
        self._manifest.append(record)
    """
)


class TestExitCodes:
    def test_exit_two_on_parse_error(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        assert analysis_main([str(tmp_path)]) == 2
        assert "RA001" in capsys.readouterr().out

    def test_parse_error_outranks_ordinary_findings(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        (tmp_path / "bad.py").write_text(BAD_THREAD)
        assert analysis_main([str(tmp_path)]) == 2

    def test_warning_tier_reports_but_exits_zero(self, tmp_path, capsys):
        warn = tmp_path / "warn.py"
        warn.write_text(WARNING_ONLY)
        assert analysis_main([str(warn)]) == 0
        out = capsys.readouterr().out
        assert "RA204" in out and "(warning)" in out


class TestSarif:
    def test_sarif_document_shape(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_THREAD)
        assert analysis_main(["--format", "sarif", str(bad)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analysis"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"RA104", "RA110", "RA201"} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "RA104"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("bad.py")
        assert location["region"]["startLine"] == 4
        assert "reproAnalysis/v1" in result["partialFingerprints"]

    def test_sarif_levels_track_severity(self, tmp_path, capsys):
        warn = tmp_path / "warn.py"
        warn.write_text(WARNING_ONLY)
        analysis_main(["--format", "sarif", str(warn)])
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"][0]["level"] == "warning"


class TestBaseline:
    def test_write_then_apply_suppresses(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_THREAD)
        baseline = tmp_path / "findings.json"
        assert analysis_main(
            ["--write-baseline", str(baseline), str(bad)]
        ) == 0
        assert "1 finding(s)" in capsys.readouterr().out
        assert analysis_main(["--baseline", str(baseline), str(bad)]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out
        assert "1 baselined finding(s) suppressed" in out

    def test_baseline_survives_line_drift(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_THREAD)
        baseline = tmp_path / "findings.json"
        analysis_main(["--write-baseline", str(baseline), str(bad)])
        bad.write_text("# a comment pushes lines down\n" + BAD_THREAD)
        assert analysis_main(["--baseline", str(baseline), str(bad)]) == 0

    def test_new_findings_still_fail(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_THREAD)
        baseline = tmp_path / "findings.json"
        analysis_main(["--write-baseline", str(baseline), str(bad)])
        (tmp_path / "fresh.py").write_text(BAD_THREAD.replace("print", "len"))
        assert analysis_main(["--baseline", str(baseline), str(tmp_path)]) == 1


class TestLockGraphCLI:
    CYCLE = textwrap.dedent(
        """
        from repro.analysis.locksan import make_lock


        class Pair:
            def __init__(self):
                self.a = make_lock("cli.a")
                self.b = make_lock("cli.b")

            def fwd(self):
                with self.a:
                    with self.b:
                        pass

            def rev(self):
                with self.b:
                    with self.a:
                        pass
        """
    )

    def test_cycle_fails_the_run(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(self.CYCLE)
        assert analysis_main([str(tmp_path)]) == 1
        assert "RA110" in capsys.readouterr().out

    def test_no_lock_graph_skips_the_pass(self, tmp_path):
        (tmp_path / "mod.py").write_text(self.CYCLE)
        assert analysis_main(["--no-lock-graph", str(tmp_path)]) == 0

    def test_dot_dump_mode(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(self.CYCLE)
        assert analysis_main(["--lock-graph", "dot", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph lock_order {")
        assert "color=red" in out

    def test_json_dump_mode(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(self.CYCLE)
        assert analysis_main(["--lock-graph", "json", str(tmp_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["cycles"] == [["cli.a", "cli.b"]]


class TestDbtoolPassthrough:
    def test_sarif_and_lock_graph_flags(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_THREAD)
        assert dbtool_main(
            ["analyze", "--format", "sarif", str(bad)]
        ) == 1
        assert json.loads(capsys.readouterr().out)["version"] == "2.1.0"
        assert dbtool_main(
            ["analyze", "--lock-graph", "json", str(bad)]
        ) == 0
        assert "nodes" in json.loads(capsys.readouterr().out)

    def test_baseline_round_trip(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_THREAD)
        baseline = tmp_path / "findings.json"
        assert dbtool_main(
            ["analyze", "--write-baseline", str(baseline), str(bad)]
        ) == 0
        capsys.readouterr()
        assert dbtool_main(
            ["analyze", "--baseline", str(baseline), str(bad)]
        ) == 0
        assert "suppressed" in capsys.readouterr().out


class TestSelfClean:
    def test_no_findings_over_repro_source(self):
        """Regression gate: the shipped tree stays analyzer-clean."""
        src_root = os.path.dirname(repro.__file__)
        findings = check_paths([src_root])
        assert findings == [], "\n".join(map(str, findings))
