"""Engine plumbing: noqa suppression, reporters, CLI, dbtool analyze,
and the no-finding regression gate over the real tree."""

import json
import os
import textwrap

import pytest

import repro
from repro.analysis import check_paths, check_source
from repro.analysis.cli import main as analysis_main
from repro.tools.dbtool import main as dbtool_main

BAD_THREAD = textwrap.dedent(
    """
    import threading

    t = threading.Thread(target=print)
    """
)


class TestNoqa:
    def test_bracketed_noqa_suppresses_listed_code(self):
        src = "import threading\nt = threading.Thread(target=print)  # repro: noqa[RA104]\n"
        assert check_source(src) == []

    def test_bracketed_noqa_keeps_other_codes(self):
        src = (
            "import threading\n"
            "t = threading.Thread(target=print)  # repro: noqa[RA101]\n"
        )
        assert {f.code for f in check_source(src)} == {"RA104"}

    def test_bare_noqa_suppresses_everything(self):
        src = "import threading\nt = threading.Thread(target=print)  # repro: noqa\n"
        assert check_source(src) == []

    def test_syntax_error_becomes_parse_finding(self):
        findings = check_source("def broken(:\n")
        assert [f.code for f in findings] == ["RA001"]


class TestCLI:
    def test_exit_one_and_text_report_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_THREAD)
        assert analysis_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RA104" in out and "bad.py" in out
        assert "1 finding(s)" in out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert analysis_main([str(good)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_THREAD)
        assert analysis_main(["--format", "json", str(bad)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["total"] == 1
        assert doc["counts"] == {"RA104": 1}
        assert doc["findings"][0]["code"] == "RA104"
        assert doc["findings"][0]["line"] == 4

    def test_select_narrows_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_THREAD)
        assert analysis_main(["--select", "RA101", str(bad)]) == 0
        assert analysis_main(["--select", "ra104", str(bad)]) == 1

    def test_select_unknown_code_errors(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1\n")
        with pytest.raises(SystemExit):
            analysis_main(["--select", "RA999", str(bad)])

    def test_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ["RA101", "RA102", "RA103", "RA104", "RA105", "RA106", "RA107"]:
            assert code in out

    def test_skips_pycache_and_dedups(self, tmp_path):
        pkg = tmp_path / "pkg"
        cache = pkg / "__pycache__"
        cache.mkdir(parents=True)
        (pkg / "mod.py").write_text(BAD_THREAD)
        (cache / "stale.py").write_text(BAD_THREAD)
        findings = check_paths([str(pkg), str(pkg / "mod.py")])
        assert len(findings) == 1


class TestDbtoolAnalyze:
    def test_mirrors_module_cli(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_THREAD)
        assert dbtool_main(["analyze", str(bad)]) == 1
        assert "RA104" in capsys.readouterr().out
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert dbtool_main(["analyze", str(good)]) == 0

    def test_json_passthrough(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_THREAD)
        assert dbtool_main(["analyze", "--format", "json", str(bad)]) == 1
        assert json.loads(capsys.readouterr().out)["total"] == 1


class TestSelfClean:
    def test_no_findings_over_repro_source(self):
        """Regression gate: the shipped tree stays analyzer-clean."""
        src_root = os.path.dirname(repro.__file__)
        findings = check_paths([src_root])
        assert findings == [], "\n".join(map(str, findings))
