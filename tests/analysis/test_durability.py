"""RA2xx durability / commit-protocol rules: each fires on its seeded
defect, the repo's real tmp→sync→rename idiom stays clean, and noqa
works at the anchor line."""

import textwrap

from repro.analysis.engine import check_source


def _codes(src, path="mod.py"):
    return [f.code for f in check_source(textwrap.dedent(src), path)]


def _findings(src, code, path="mod.py"):
    return [
        f
        for f in check_source(textwrap.dedent(src), path)
        if f.code == code
    ]


CLEAN_PROTOCOL = """
    def set_current(storage, name):
        tmp = "CURRENT.tmp"
        with storage.create(tmp) as f:
            f.append(name.encode())
            f.sync()
        storage.rename(tmp, "CURRENT")
"""


class TestRA201RenameWithoutSync:
    def test_fires_on_unsynced_rename(self):
        findings = _findings(
            """
            def publish(storage):
                with storage.create("CURRENT.tmp") as f:
                    f.append(b"MANIFEST-1")
                storage.rename("CURRENT.tmp", "CURRENT")
            """,
            "RA201",
        )
        assert len(findings) == 1
        assert "'CURRENT.tmp'" in findings[0].message
        assert "unsynced bytes" in findings[0].message

    def test_clean_protocol_passes(self):
        assert "RA201" not in _codes(CLEAN_PROTOCOL)

    def test_variable_path_keys_match(self):
        findings = _findings(
            """
            def publish(storage, tmp):
                f = storage.create(tmp)
                f.append(b"payload")
                f.close()
                storage.rename(tmp, "final")
            """,
            "RA201",
        )
        assert len(findings) == 1

    def test_rename_of_untracked_path_is_ignored(self):
        assert "RA201" not in _codes(
            """
            def quarantine(storage, victim):
                storage.rename(victim, victim + ".bad")
            """
        )

    def test_noqa_suppresses(self):
        src = textwrap.dedent(
            """
            def publish(storage):
                with storage.create("a.tmp") as f:
                    f.append(b"x")
                storage.rename("a.tmp", "a")  # repro: noqa[RA201]
            """
        )
        assert check_source(src, "mod.py") == []


class TestRA202UnsyncedEditReference:
    def test_fires_when_manifest_cites_unsynced_file(self):
        findings = _findings(
            """
            def install_table(storage, edit):
                with storage.create("000007.sst") as f:
                    f.append(b"block")
                edit.add_file(0, FileMetaData(7, 100, b"a", b"z"))
            """,
            "RA202",
        )
        assert len(findings) == 1
        assert "'000007.sst'" in findings[0].message

    def test_synced_handle_passes(self):
        assert "RA202" not in _codes(
            """
            def install_table(storage, edit):
                with storage.create("000007.sst") as f:
                    f.append(b"block")
                    f.sync()
                edit.add_file(0, FileMetaData(7, 100, b"a", b"z"))
            """
        )

    def test_one_finding_per_function(self):
        findings = _findings(
            """
            def install_many(storage, edit):
                with storage.create("a.sst") as f:
                    f.append(b"x")
                edit.add_file(0, FileMetaData(1, 1, b"a", b"b"))
                edit.add_file(0, FileMetaData(2, 1, b"c", b"d"))
            """,
            "RA202",
        )
        assert len(findings) == 1


class TestRA203OrphanTmp:
    def test_fires_on_tmp_without_rename(self):
        findings = _findings(
            """
            def stage(storage):
                with storage.create("stage.tmp") as f:
                    f.append(b"half a commit")
                    f.sync()
            """,
            "RA203",
        )
        assert len(findings) == 1
        assert "'stage.tmp'" in findings[0].message
        assert "commit protocol" in findings[0].message

    def test_renamed_tmp_passes(self):
        assert "RA203" not in _codes(CLEAN_PROTOCOL)

    def test_tmp_suffixed_variable_name_counts(self):
        assert "RA203" in _codes(
            """
            def stage(storage, manifest_tmp):
                f = storage.create(manifest_tmp)
                f.append(b"x")
            """
        )

    def test_non_tmp_create_is_ignored(self):
        assert "RA203" not in _codes(
            """
            def write_log(storage):
                with storage.create("000004.log") as f:
                    f.append(b"record")
                    f.sync()
            """
        )


class TestRA204ManifestAppendSync:
    def test_fires_without_sync_kwarg(self):
        findings = _findings(
            """
            def commit(self, record):
                self._manifest.append(record)
            """,
            "RA204",
        )
        assert len(findings) == 1
        assert findings[0].severity == "warning"

    def test_sync_true_passes(self):
        assert "RA204" not in _codes(
            """
            def commit(self, record):
                self._manifest.append(record, sync=True)
            """
        )

    def test_manifest_writer_local_is_tracked(self):
        assert "RA204" in _codes(
            """
            def replay(storage):
                writer = ManifestWriter(storage, "MANIFEST-1")
                writer.append(b"edit")
            """
        )

    def test_unrelated_append_is_ignored(self):
        assert "RA204" not in _codes(
            """
            def collect(items, record):
                items.append(record)
            """
        )

    def test_kwargs_forwarding_is_not_flagged(self):
        assert "RA204" not in _codes(
            """
            def commit(self, record, **kwargs):
                self._manifest.append(record, **kwargs)
            """
        )


class TestRealTree:
    def test_src_repro_has_no_ra2xx_findings(self):
        from repro.analysis.cli import run_analysis

        findings = run_analysis(
            ["src/repro"],
            select={"RA201", "RA202", "RA203", "RA204"},
            lock_graph=False,
        )
        assert findings == []
