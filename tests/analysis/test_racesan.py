"""Happens-before race sanitizer: seeded races fire with both stacks,
every synchronization edge (lock, queue, fork/join) suppresses them,
and the instrumentation is inert when the environment flag is off."""

import queue
import threading

import pytest

from repro.analysis import racesan
from repro.analysis.locksan import make_lock
from repro.analysis.racesan import (
    NULL_STATE,
    DataRaceError,
    GuardViolation,
    RaceDetector,
    global_detector,
    guarded_by,
    race_sanitizer_enabled,
    shared_state,
)


@pytest.fixture
def detector():
    """A private detector, decoupled from the process-wide patches."""
    det = RaceDetector()
    det.raise_on_race = False
    return det


def _run_threads(*targets):
    threads = [
        threading.Thread(target=t, name=f"worker-{i}")
        for i, t in enumerate(targets)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestDetectorEdges:
    """Vector-clock semantics on a standalone RaceDetector."""

    def test_unordered_writes_race(self, detector):
        # Overlap both workers so the OS cannot recycle the first
        # ident for the second (the standalone detector has no
        # begin/finish hooks to epoch-fence a reused ident).
        barrier = threading.Barrier(2)

        def racy_write():
            barrier.wait()
            detector.write("var", "test.var")

        _run_threads(racy_write, racy_write)
        assert len(detector.races) == 1
        record = detector.races[0]
        assert record["var"] == "test.var"
        assert record["thread"] != record["prior_thread"]

    def test_write_read_conflict_races(self, detector):
        detector.write("var", "test.var")
        _run_threads(lambda: detector.read("var", "test.var"))
        assert len(detector.races) == 1
        assert detector.races[0]["access"] == "read"

    def test_read_read_is_not_a_conflict(self, detector):
        _run_threads(
            lambda: detector.read("var", "test.var"),
            lambda: detector.read("var", "test.var"),
        )
        assert detector.races == []

    def test_lock_channel_orders_accesses(self, detector):
        key = ("lock", 1)

        def locked_write():
            detector.acquire(key)
            detector.write("var", "test.var")
            detector.release(key)

        locked_write()
        _run_threads(locked_write)
        assert detector.races == []

    def test_queue_channel_orders_handoff(self, detector):
        key = ("queue", 1)

        def producer():
            detector.write("var", "test.var")
            detector.release(key)  # put

        def consumer():
            detector.acquire(key)  # get
            detector.write("var", "test.var")

        t = threading.Thread(target=producer, name="hb-producer")
        t.start()
        t.join()
        _run_threads(consumer)
        assert detector.races == []

    def test_fork_orders_parent_before_child(self, detector):
        detector.write("var", "test.var")
        snapshot = detector.fork()

        def child():
            detector.begin_thread(snapshot)
            detector.write("var", "test.var")
            detector.finish_thread("child-key")

        _run_threads(child)
        assert detector.races == []

    def test_join_orders_child_before_parent(self, detector):
        def child():
            detector.begin_thread(detector.fork())
            detector.write("var", "test.var")
            detector.finish_thread("child-key")

        _run_threads(child)
        detector.join_thread("child-key")
        detector.write("var", "test.var")
        assert detector.races == []

    def test_missing_join_edge_is_a_race(self, detector):
        _run_threads(lambda: detector.write("var", "test.var"))
        # No join_thread(): the child's write is unordered with ours.
        detector.write("var", "test.var")
        assert len(detector.races) == 1

    def test_race_error_carries_both_stacks(self, detector):
        detector.raise_on_race = True
        _run_threads(lambda: detector.write("var", "db.version"))
        with pytest.raises(DataRaceError) as exc:
            detector.write("var", "db.version")
        text = str(exc.value)
        assert "data race on 'db.version'" in text
        assert "current access:" in text
        assert "prior access:" in text

    def test_reset_clears_history(self, detector):
        barrier = threading.Barrier(2)

        def racy_write():
            barrier.wait()
            detector.write("var", "test.var")

        _run_threads(racy_write, racy_write)
        assert detector.races
        detector.reset()
        assert detector.races == []
        detector.write("var", "test.var")
        assert detector.races == []


@pytest.fixture
def sanitizer(monkeypatch):
    """Process-wide sanitizer on, with full teardown."""
    monkeypatch.setenv(racesan.RACE_SANITIZER_ENV, "1")
    det = global_detector()
    det.reset()
    racesan.install()
    yield det
    racesan.uninstall()
    det.raise_on_race = True
    det.reset()


class TestInstrumentation:
    """The patched stdlib + shared_state()/guarded_by() surface."""

    def test_shared_state_inert_when_disabled(self, monkeypatch):
        monkeypatch.delenv(racesan.RACE_SANITIZER_ENV, raising=False)
        assert not race_sanitizer_enabled()
        state = shared_state("test.var")
        assert state is NULL_STATE
        state.write()  # no-ops, records nothing
        state.read()

    def test_seeded_race_is_recorded_with_both_stacks(self, sanitizer):
        sanitizer.raise_on_race = False
        state = shared_state("test.seeded")
        barrier = threading.Barrier(2)

        def racy_write():
            barrier.wait()  # Barrier is uninstrumented: no HB edge.
            state.write()

        _run_threads(racy_write, racy_write)
        assert len(sanitizer.races) == 1
        record = sanitizer.races[0]
        assert record["var"] == "test.seeded"
        assert "racy_write" in record["stack_now"]
        assert "racy_write" in record["prior_stack"]

    def test_thread_start_join_order_accesses(self, sanitizer):
        state = shared_state("test.joined")
        state.write()
        t = threading.Thread(target=state.write, name="hb-writer")
        t.start()
        t.join()
        state.write()  # ordered: start before, join after
        assert sanitizer.races == []

    def test_lock_factory_synchronizes(self, sanitizer):
        lock = make_lock("test.racesan")
        state = shared_state("test.locked")

        def locked_write():
            with lock:
                state.write()

        _run_threads(*[locked_write] * 4)
        assert sanitizer.races == []

    def test_queue_handoff_synchronizes(self, sanitizer):
        state = shared_state("test.handoff")
        channel = queue.Queue()

        def producer():
            state.write()
            channel.put("token")

        def consumer():
            channel.get()
            state.write()

        producer_t = threading.Thread(target=producer, name="hb-queue-producer")
        producer_t.start()
        producer_t.join()
        # A *fresh* thread with no join-edge to the producer: only the
        # queue handoff can order its write after the producer's.
        _run_threads(consumer)
        assert sanitizer.races == []

    def test_guarded_by_fires_without_lock(self, sanitizer):
        class Guarded:
            def __init__(self):
                self._lock = make_lock("test.guard")

            @guarded_by("_lock")
            def mutate(self):
                return "mutated"

        obj = Guarded()
        with pytest.raises(GuardViolation) as exc:
            obj.mutate()
        assert "Guarded.mutate" in str(exc.value)
        assert "self._lock" in str(exc.value)
        with obj._lock:
            assert obj.mutate() == "mutated"

    def test_guarded_by_is_identity_when_disabled(self, monkeypatch):
        monkeypatch.delenv(racesan.RACE_SANITIZER_ENV, raising=False)

        def method(self):
            pass

        assert guarded_by("_lock")(method) is method

    def test_install_uninstall_round_trip(self, sanitizer):
        original_put = queue.Queue.put
        racesan.install()  # idempotent
        assert queue.Queue.put is original_put
        racesan.uninstall()
        racesan.uninstall()  # idempotent
        racesan.install()  # fixture teardown expects installed state
