"""Unit tests for server metrics and the latency histogram."""

import random

from repro.server import protocol as P
from repro.server.metrics import LatencyHistogram, ServerMetrics


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(50) == 0.0
        assert histogram.mean() == 0.0
        assert histogram.snapshot() == {"count": 0}

    def test_single_value(self):
        histogram = LatencyHistogram()
        histogram.record(0.010)
        assert histogram.count == 1
        # Log-bucketing: the estimate lands in the right bucket
        # (~10 % wide) and is clamped to the observed min/max.
        assert histogram.percentile(50) == 0.010
        assert histogram.min_s == histogram.max_s == 0.010

    def test_percentiles_are_ordered_and_bracketed(self):
        histogram = LatencyHistogram()
        rng = random.Random(7)
        values = [rng.uniform(1e-4, 1e-1) for _ in range(5000)]
        for value in values:
            histogram.record(value)
        p50 = histogram.percentile(50)
        p95 = histogram.percentile(95)
        p99 = histogram.percentile(99)
        assert min(values) <= p50 <= p95 <= p99 <= max(values)
        values.sort()
        exact_p50 = values[len(values) // 2]
        assert abs(p50 - exact_p50) / exact_p50 < 0.15  # bucket tolerance

    def test_extremes_clamp_into_buckets(self):
        histogram = LatencyHistogram()
        histogram.record(1e-9)   # below the 1 µs floor
        histogram.record(1e6)    # beyond the 1000 s ceiling
        assert histogram.count == 2
        # Estimates stay inside the bucket range; raw extremes are
        # preserved in min/max.
        assert histogram.percentile(100) >= 1e3
        assert histogram.max_s == 1e6
        assert histogram.min_s == 1e-9

    def test_snapshot_fields(self):
        histogram = LatencyHistogram()
        for _ in range(10):
            histogram.record(0.002)
        snap = histogram.snapshot()
        assert snap["count"] == 10
        for key in ("mean_ms", "min_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms"):
            assert snap[key] > 0


class TestServerMetrics:
    def test_record_and_snapshot(self):
        metrics = ServerMetrics()
        metrics.record(P.OP_PUT, 0.001, bytes_in=100, bytes_out=20)
        metrics.record(P.OP_PUT, 0.002, bytes_in=120, bytes_out=20)
        metrics.record(P.OP_GET, 0.003, bytes_in=30, bytes_out=500, error=True)
        metrics.record_stall_rejection()
        metrics.connection_opened()
        snap = metrics.snapshot()
        assert snap["ops"]["PUT"]["requests"] == 2
        assert snap["ops"]["PUT"]["bytes_in"] == 220
        assert snap["ops"]["GET"]["errors"] == 1
        assert snap["stall_rejections"] == 1
        assert snap["active_connections"] == 1
        assert "DELETE" not in snap["ops"]  # untouched opcodes elided
        assert metrics.total_requests() == 3

    def test_render_mentions_every_active_opcode(self):
        metrics = ServerMetrics()
        metrics.record(P.OP_SCAN, 0.004, bytes_in=10, bytes_out=9000)
        text = metrics.render()
        assert "SCAN" in text
        assert "p99" in text
        assert "stall_rejections" in text
