"""End-to-end telemetry: METRICS opcode, STATS wire shape, tracing.

PR 7's acceptance surface: the live exposition endpoint serves
parseable Prometheus text and a well-formed JSON snapshot from plain,
sharded, and replicated servers; STATS carries the ``engine`` and
``repl`` sections over the wire; and a traced client request against a
replicated server produces spans in every process that share one trace
id.
"""

import time

import pytest

from repro.cluster import ShardedDB
from repro.db import DB
from repro.devices import MemStorage
from repro.lsm import Options
from repro.obs import (
    EventLog,
    Observability,
    Tracer,
    merge_chrome_traces,
    parse_prometheus,
)
from repro.replication import Follower, ReplicationHub
from repro.server import ServerConfig, ServerThread, SyncClient
from repro.server import protocol as P
from repro.tools.top import render_top, sample

SMALL = dict(
    memtable_bytes=8 * 1024,
    sstable_bytes=8 * 1024,
    level1_bytes=32 * 1024,
    level_multiplier=4,
)


def _wait(cond, timeout=10.0, interval=0.01, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {what}")


@pytest.fixture()
def mem_server():
    handle = ServerThread(
        DB(MemStorage(), Options(**SMALL), background=True)
    ).start()
    yield handle
    handle.stop()


@pytest.fixture()
def client(mem_server):
    with SyncClient(mem_server.host, mem_server.port) as c:
        c.hello()
        yield c


class TestMetricsOpcode:
    def test_prometheus_text_parses(self, client):
        # Enough volume to flush (8 KiB memtable) so engine gauges
        # like db.l0_files exist by scrape time.
        for i in range(200):
            client.put(f"k{i:03d}".encode(), b"v" * 100)
            client.get(f"k{i:03d}".encode())
        text = client.metrics("prom")
        series = parse_prometheus(text)  # raises on malformed output
        assert series["repro_server_op_PUT_requests_total"] == [({}, 200.0)]
        assert series["repro_server_op_GET_requests_total"] == [({}, 200.0)]
        # Engine metrics merge into the same document.
        assert "repro_wal_records_total" in series
        assert "repro_db_l0_files" in series

    def test_json_snapshot_shape(self, client):
        client.put(b"k", b"v")
        snap = client.metrics("json")
        for kind in ("counters", "gauges", "histograms"):
            assert isinstance(snap[kind], dict)
        assert snap["counters"]["server.op.PUT.requests"] == 1
        hist = snap["histograms"]["server.op.PUT.latency"]
        assert hist["count"] == 1
        assert hist["buckets_ms"][-1][1] == 1  # cumulative to total

    def test_metrics_requires_v21_hello(self, mem_server):
        with SyncClient(mem_server.host, mem_server.port) as raw:
            # metrics() itself works without hello (server accepts the
            # opcode on any connection) — only the TRACE_FLAG needs the
            # negotiation.  Assert the opcode answers.
            assert raw.metrics("json")["counters"] is not None

    def test_trace_dump_opcode(self, mem_server):
        with SyncClient(mem_server.host, mem_server.port) as c:
            trace = c.trace_dump()
        # Server has no enabled tracer: an empty but valid document.
        assert trace["traceEvents"] == []


class TestShardedTelemetry:
    def test_per_shard_metrics_and_engine_stats(self):
        db = ShardedDB.in_memory(4, options=Options(**SMALL), background=True)
        with ServerThread(db) as handle:
            with SyncClient(handle.host, handle.port) as c:
                c.hello()
                for i in range(120):
                    c.put(f"key{i:04d}".encode(), b"x" * 128)
                snap = c.metrics("json")
                # Per-shard series keep their prefix, rollup is bare.
                shard_keys = [
                    k for k in snap["counters"]
                    if k.startswith("cluster.shard") and k.endswith(
                        "wal.records"
                    )
                ]
                assert len(shard_keys) == 4
                assert snap["counters"]["wal.records"] == sum(
                    snap["counters"][k] for k in shard_keys
                )

                text = c.metrics("prom")
                series = parse_prometheus(text)
                samples = series["repro_wal_records_total"]
                # 4 shard-labelled samples + 1 unlabelled rollup.
                assert len(samples) == 5
                shards = {
                    lbl["shard"] for lbl, _ in samples if "shard" in lbl
                }
                assert shards == {"0", "1", "2", "3"}

                stats = c.stats()
                assert stats["cluster"]["n_shards"] == 4
                engine = stats["engine"]
                assert {"counters", "gauges", "histograms"} <= set(engine)

    def test_sharded_stats_merge_histograms(self):
        db = ShardedDB.in_memory(2, options=Options(**SMALL), background=True)
        with ServerThread(db) as handle:
            with SyncClient(handle.host, handle.port) as c:
                c.hello()
                for i in range(200):
                    c.put(f"key{i:05d}".encode(), b"y" * 200)
                snap = c.metrics("json")
                flushes = snap["counters"].get("db.flushes", 0)
                assert flushes >= 1  # small memtables: flushed by now
                hist = snap["histograms"].get("db.flush_seconds")
                assert hist is not None and hist["count"] >= 1


class TestReplicatedTelemetry:
    def _replicated(self):
        primary = DB(
            MemStorage(),
            Options(wal_retain_bytes=8 * 1024 * 1024),
            obs=Observability(tracer=Tracer(enabled=True)),
        )
        hub = ReplicationHub(primary)
        config = ServerConfig(repl_acks=1, repl_ack_timeout_s=5.0)
        return primary, hub, config

    def _start_follower(self, handle):
        fdb = DB(MemStorage(), Options())
        storage = fdb.storage

        def factory():
            return DB(storage, Options())

        return Follower(
            fdb, storage, factory, handle.host, handle.port, "follower-a",
            retry_interval_s=0.05,
        ).start()

    def test_repl_gauges_and_stats_shape(self):
        primary, hub, config = self._replicated()
        with ServerThread(primary, config, own_db=False, hub=hub) as handle:
            follower = self._start_follower(handle)
            try:
                _wait(lambda: hub.n_followers == 1, what="follower")
                with SyncClient(handle.host, handle.port) as c:
                    c.hello()
                    for i in range(50):
                        c.put(f"key{i:04d}".encode(), b"v" * 32)
                    target = primary.last_sequence
                    _wait(
                        lambda: follower.status()["applied_seq"] >= target,
                        what="follower catch-up",
                    )

                    snap = c.metrics("json")
                    gauges = snap["gauges"]
                    assert gauges["repl.followers"] == 1
                    assert gauges["repl.lag_records"] == 0
                    assert gauges["repl.lag_seconds"] >= 0.0
                    assert "repl.ring_records" in gauges
                    assert "repl.epoch" in gauges
                    hist = snap["histograms"]["repl.ack_wait_seconds"]
                    assert hist["count"] >= 50

                    text = c.metrics("prom")
                    series = parse_prometheus(text)
                    assert series["repro_repl_followers"] == [({}, 1.0)]
                    assert "repro_repl_lag_records" in series

                    stats = c.stats()
                    repl = stats["repl"]
                    assert repl["role"] == "primary"
                    assert repl["ack_level_default"] == 1
                    (entry,) = repl["followers"]
                    assert entry["id"] == "follower-a"
                    assert entry["lag_records"] == 0
                    assert {
                        "acked_seq", "lag_seconds", "acked_age_seconds",
                    } <= set(entry)
            finally:
                follower.stop()

    def test_traced_request_spans_every_process(self):
        """Acceptance: one trace id across client/server/db/repl spans."""
        primary, hub, config = self._replicated()
        client_tracer = Tracer(enabled=True)
        with ServerThread(primary, config, own_db=False, hub=hub) as handle:
            follower = self._start_follower(handle)
            try:
                _wait(lambda: hub.n_followers == 1, what="follower")
                with SyncClient(
                    handle.host, handle.port, tracer=client_tracer
                ) as c:
                    assert c.hello() == (2, P.PROTOCOL_MINOR)
                    c.put(b"traced-key", b"traced-value")
                    assert c.get(b"traced-key") == b"traced-value"
            finally:
                follower.stop()

        client_spans = client_tracer.spans()
        put_span = next(
            s for s in client_spans if s.name == "client:PUT"
        )
        trace_id = put_span.args["trace_id"]
        server_spans = [
            s for s in primary.obs.tracer.spans()
            if s.args.get("trace_id") == trace_id
        ]
        names = {s.name for s in server_spans}
        assert "server:PUT" in names
        assert "db:PUT" in names
        assert "repl-ack-wait" in names
        # Parent chain: server span's parent is the client span.
        server_put = next(
            s for s in server_spans if s.name == "server:PUT"
        )
        assert server_put.args["parent_span_id"] == put_span.args["span_id"]
        db_put = next(s for s in server_spans if s.name == "db:PUT")
        assert db_put.args["parent_span_id"] == server_put.args["span_id"]

        # The merged Chrome trace puts both processes on distinct lanes.
        merged = merge_chrome_traces([
            ("client", client_tracer.chrome_trace()),
            ("primary", primary.obs.tracer.chrome_trace()),
        ])
        lanes = {
            e["args"]["name"]
            for e in merged["traceEvents"]
            if e["name"] == "process_name"
        }
        assert lanes == {"client", "primary"}

    def test_event_log_records_repl_lifecycle(self):
        events = []
        primary = DB(
            MemStorage(),
            Options(wal_retain_bytes=8 * 1024 * 1024),
            obs=Observability(events=EventLog(events.append)),
        )
        hub = ReplicationHub(primary)
        with ServerThread(primary, own_db=False, hub=hub) as handle:
            follower = self._start_follower(handle)
            try:
                _wait(lambda: hub.n_followers == 1, what="follower")
                with SyncClient(handle.host, handle.port) as c:
                    c.hello()
                    c.put(b"k", b"v")
            finally:
                follower.stop()
        kinds = {e["event"] for e in events}
        assert "repl.subscribe" in kinds


class TestRenderTop:
    def _sample(self, puts, gets, stalled=False, repl=False):
        metrics = {
            "counters": {
                "server.op.PUT.requests": puts,
                "server.op.GET.requests": gets,
                "db.flushes": 3,
            },
            "gauges": {
                "db.l0_files": 2,
                "repl.followers": 1,
                "repl.lag_records": 5,
                "repl.lag_seconds": 0.25,
                "repl.ring_records": 10,
            },
            "histograms": {
                "server.op.GET.latency": {
                    "count": gets, "p50_ms": 0.5, "p99_ms": 2.0,
                },
            },
        }
        stats = {"db": {"write_stalled_now": stalled}}
        if repl:
            stats["repl"] = {
                "role": "primary",
                "epoch": 4,
                "followers": [{
                    "id": "follower-a", "acked_seq": 90,
                    "lag_records": 5, "lag_seconds": 0.25,
                }],
            }
        return {"metrics": metrics, "stats": stats}

    def test_rates_from_counter_deltas(self):
        frame = render_top(
            self._sample(100, 200), self._sample(300, 500), dt=2.0,
            endpoint="localhost:4000",
        )
        assert "PUT 100/s" in frame
        assert "GET 150/s" in frame
        assert "total 250/s" in frame
        assert "localhost:4000" in frame
        assert "p50=0.50ms p99=2.00ms" in frame
        assert "L0 files 2" in frame
        assert "stalled=no" in frame

    def test_stall_and_repl_lines(self):
        frame = render_top(
            self._sample(0, 0, repl=True),
            self._sample(10, 0, stalled=True, repl=True),
            dt=1.0,
        )
        assert "stalled=YES" in frame
        assert "epoch 4" in frame
        assert "lag 5 rec / 0.250s" in frame
        assert "↳ follower-a: lag 5 rec" in frame

    def test_live_sample_renders(self, client):
        client.put(b"a", b"1")
        prev = sample(client)
        client.put(b"b", b"2")
        client.get(b"a")
        cur = sample(client)
        frame = render_top(prev, cur, dt=0.5, endpoint="test")
        assert frame.startswith("repro top — test")
        assert "engine" in frame
