"""Unit tests for the wire format."""

import pytest

from repro.server import protocol as P
from repro.server.protocol import ProtocolError


class TestFraming:
    def test_roundtrip(self):
        payload = b"hello frame"
        frame = P.encode_frame(payload)
        length = P.frame_length(frame[:4])
        assert length == len(payload)
        assert P.decode_frame(length, frame[4:]) == payload

    def test_empty_payload(self):
        frame = P.encode_frame(b"")
        assert P.decode_frame(P.frame_length(frame[:4]), frame[4:]) == b""

    def test_corrupt_payload_detected(self):
        frame = bytearray(P.encode_frame(b"some payload bytes"))
        frame[6] ^= 0xFF
        with pytest.raises(ProtocolError, match="checksum"):
            P.decode_frame(P.frame_length(bytes(frame[:4])), bytes(frame[4:]))

    def test_corrupt_crc_detected(self):
        frame = bytearray(P.encode_frame(b"other payload"))
        frame[-1] ^= 0x01
        with pytest.raises(ProtocolError, match="checksum"):
            P.decode_frame(P.frame_length(bytes(frame[:4])), bytes(frame[4:]))

    def test_truncated_frame(self):
        frame = P.encode_frame(b"payload")
        with pytest.raises(ProtocolError, match="truncated"):
            P.decode_frame(P.frame_length(frame[:4]), frame[4:-2])

    def test_oversized_frame_refused(self):
        header = P.encode_frame(b"x" * 100)[:4]
        with pytest.raises(ProtocolError, match="exceeds"):
            P.frame_length(header, limit=10)

    def test_iter_frames_splits_concatenation(self):
        blob = b"".join(P.encode_frame(p) for p in [b"a", b"bb", b"", b"ccc"])
        assert list(P.iter_frames(blob)) == [b"a", b"bb", b"", b"ccc"]


class TestLengthPrefixed:
    def test_roundtrip(self):
        buf = P.encode_lp(b"abc") + P.encode_lp(b"") + P.encode_lp(b"x" * 300)
        first, pos = P.decode_lp(buf)
        second, pos = P.decode_lp(buf, pos)
        third, pos = P.decode_lp(buf, pos)
        assert (first, second, third) == (b"abc", b"", b"x" * 300)
        assert pos == len(buf)

    def test_overrun_detected(self):
        with pytest.raises(ProtocolError, match="overruns"):
            P.decode_lp(P.encode_lp(b"abcdef")[:-2])


class TestRequestResponse:
    def test_request_roundtrip(self):
        frame = P.encode_request(P.OP_GET, 42, b"body")
        payload = next(P.iter_frames(frame))
        request = P.decode_request(payload)
        assert request.opcode == P.OP_GET
        assert request.request_id == 42
        assert request.body == b"body"
        assert request.opcode_name == "GET"

    def test_response_roundtrip(self):
        frame = P.encode_response(P.ST_STALLED, 7, b"\x19")
        response = P.decode_response(next(P.iter_frames(frame)))
        assert response.status == P.ST_STALLED
        assert response.request_id == 7
        assert not response.ok
        assert response.status_name == "STALLED"

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ProtocolError, match="opcode"):
            P.encode_request(0x7F, 1)
        with pytest.raises(ProtocolError, match="opcode"):
            P.decode_request(bytes([0x7F, 0x01]))

    def test_unknown_status_rejected(self):
        with pytest.raises(ProtocolError, match="status"):
            P.decode_response(bytes([0x7F, 0x01]))

    def test_empty_payload_rejected(self):
        with pytest.raises(ProtocolError, match="empty"):
            P.decode_request(b"")

    def test_large_request_ids_survive(self):
        frame = P.encode_request(P.OP_PING, 2**53, b"")
        assert P.decode_request(next(P.iter_frames(frame))).request_id == 2**53


class TestBodies:
    def test_batch_roundtrip(self):
        ops = [("put", b"k1", b"v1"), ("delete", b"k2"), ("put", b"k3", b"")]
        assert P.decode_batch_body(P.encode_batch_body(ops)) == ops

    def test_batch_empty(self):
        assert P.decode_batch_body(P.encode_batch_body([])) == []

    def test_batch_bad_op_kind(self):
        with pytest.raises(ProtocolError, match="unknown batch op"):
            P.encode_batch_body([("merge", b"k", b"v")])

    def test_batch_trailing_garbage(self):
        body = P.encode_batch_body([("delete", b"k")]) + b"junk"
        with pytest.raises(ProtocolError, match="trailing"):
            P.decode_batch_body(body)

    @pytest.mark.parametrize(
        "start,end,limit,reverse",
        [
            (None, None, 0, False),
            (b"a", None, 10, False),
            (None, b"z", 0, True),
            (b"a", b"z", 123456, True),
        ],
    )
    def test_scan_body_roundtrip(self, start, end, limit, reverse):
        body = P.encode_scan_body(start, end, limit, reverse)
        assert P.decode_scan_body(body) == (start, end, limit, reverse)

    def test_scan_result_roundtrip(self):
        pairs = [(b"a", b"1"), (b"b", b""), (b"c" * 100, b"3" * 1000)]
        body = P.encode_scan_result(pairs, truncated=True)
        assert P.decode_scan_result(body) == (pairs, True)
        body = P.encode_scan_result([], truncated=False)
        assert P.decode_scan_result(body) == ([], False)


class TestTraceContext:
    """Protocol 2.1: optional trace-context varints behind TRACE_FLAG."""

    def test_traced_request_roundtrip(self):
        frame = P.encode_request(
            P.OP_PUT, 9, b"body", trace_id=0xABCDEF, span_id=77
        )
        request = P.decode_request(next(P.iter_frames(frame)))
        assert request.opcode == P.OP_PUT
        assert request.opcode_name == "PUT"
        assert request.body == b"body"
        assert (request.trace_id, request.span_id) == (0xABCDEF, 77)

    def test_untraced_request_has_none_context(self):
        frame = P.encode_request(P.OP_PUT, 9, b"body")
        request = P.decode_request(next(P.iter_frames(frame)))
        assert request.trace_id is None and request.span_id is None
        # No TRACE_FLAG → no extra varints on the wire.
        assert len(frame) < len(
            P.encode_request(P.OP_PUT, 9, b"body", trace_id=1, span_id=1)
        )

    def test_trace_id_without_span_id_defaults_zero(self):
        frame = P.encode_request(P.OP_GET, 1, b"k", trace_id=5)
        request = P.decode_request(next(P.iter_frames(frame)))
        assert (request.trace_id, request.span_id) == (5, 0)

    def test_truncated_trace_context_rejected(self):
        # TRACE_FLAG set but the varints are missing entirely.
        payload = bytes([P.OP_PING | P.TRACE_FLAG, 0x01, 0x80])
        with pytest.raises(ProtocolError, match="trace context"):
            P.decode_request(payload)

    def test_flagged_unknown_opcode_still_rejected(self):
        with pytest.raises(ProtocolError, match="opcode"):
            P.decode_request(bytes([0x7F | P.TRACE_FLAG, 0x01, 0x00, 0x00]))

    def test_no_opcode_uses_the_flag_bit(self):
        assert all(op & P.TRACE_FLAG == 0 for op in P.OPCODE_NAMES)


class TestMetricsTraceOpcodes:
    def test_opcodes_registered(self):
        assert P.OPCODE_NAMES[P.OP_METRICS] == "METRICS"
        assert P.OPCODE_NAMES[P.OP_TRACE] == "TRACE"
        assert P.OP_METRICS not in P.WRITE_OPCODES
        assert P.OP_TRACE not in P.WRITE_OPCODES

    def test_metrics_body_roundtrip(self):
        for fmt in (P.METRICS_FMT_JSON, P.METRICS_FMT_PROMETHEUS):
            assert P.decode_metrics_body(P.encode_metrics_body(fmt)) == fmt

    def test_metrics_body_bad_format_rejected(self):
        with pytest.raises(ProtocolError, match="format"):
            P.encode_metrics_body(9)
        with pytest.raises(ProtocolError, match="format"):
            P.decode_metrics_body(b"\x09")
        with pytest.raises(ProtocolError, match="one format byte"):
            P.decode_metrics_body(b"")
