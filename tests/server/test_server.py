"""Server/client behaviour tests plus the loopback integration test.

The integration test is the PR's acceptance gate: a real server on an
ephemeral port, concurrent client connections pushing enough data to
trigger memtable flushes and at least one compaction, read-your-writes
through the protocol, meaningful STATS, and a directory that passes
``verify_db`` after graceful shutdown.
"""

import asyncio
import socket
import struct
import threading

import pytest

from repro.db import DB
from repro.db.verify import verify_db
from repro.devices import MemStorage, OSStorage
from repro.lsm import Options
from repro.server import (
    AsyncClient,
    ServerBusyError,
    ServerConfig,
    ServerThread,
    SyncClient,
)
from repro.server import protocol as P

SMALL = dict(
    memtable_bytes=8 * 1024,
    sstable_bytes=8 * 1024,
    level1_bytes=32 * 1024,
    level_multiplier=4,
)


@pytest.fixture()
def mem_server():
    handle = ServerThread(
        DB(MemStorage(), Options(**SMALL), background=True)
    ).start()
    yield handle
    handle.stop()


@pytest.fixture()
def client(mem_server):
    with SyncClient(mem_server.host, mem_server.port) as c:
        yield c


class TestBasicOps:
    def test_put_get_delete(self, client):
        client.put(b"k", b"v")
        assert client.get(b"k") == b"v"
        client.delete(b"k")
        assert client.get(b"k") is None

    def test_get_missing(self, client):
        assert client.get(b"never-written") is None

    def test_ping_echoes(self, client):
        assert client.ping(b"payload") == b"payload"
        assert client.ping() == b""

    def test_empty_value_roundtrip(self, client):
        client.put(b"empty", b"")
        assert client.get(b"empty") == b""

    def test_batch_is_atomic_and_counted(self, client):
        n = client.batch(
            [("put", b"a", b"1"), ("put", b"b", b"2"), ("delete", b"a")]
        )
        assert n == 3
        assert client.get(b"a") is None
        assert client.get(b"b") == b"2"

    def test_scan_range_limit_reverse(self, client):
        for i in range(20):
            client.put(b"s%02d" % i, b"v%02d" % i)
        pairs, truncated = client.scan(b"s05", b"s15")
        assert [k for k, _ in pairs] == [b"s%02d" % i for i in range(5, 15)]
        assert not truncated
        pairs, _ = client.scan(b"s05", b"s15", limit=3)
        assert len(pairs) == 3
        pairs, _ = client.scan(b"s05", b"s15", reverse=True)
        assert [k for k, _ in pairs] == [b"s%02d" % i for i in range(14, 4, -1)]

    def test_scan_server_cap_flags_truncation(self):
        config = ServerConfig(scan_limit_max=5)
        handle = ServerThread(
            DB(MemStorage(), Options(**SMALL), background=True), config
        ).start()
        try:
            with SyncClient(handle.host, handle.port) as c:
                for i in range(10):
                    c.put(b"t%02d" % i, b"v")
                pairs, truncated = c.scan()
                assert len(pairs) == 5
                assert truncated
                pairs, truncated = c.scan(limit=3)
                assert len(pairs) == 3
                assert not truncated
        finally:
            handle.stop()

    def test_compact_opcode(self, client):
        for i in range(300):
            client.put(b"c%04d" % i, b"x" * 64)
        client.compact()
        assert client.get(b"c0000") == b"x" * 64

    def test_stats_shape(self, client):
        client.put(b"k", b"v")
        client.get(b"k")
        stats = client.stats()
        assert stats["server"]["ops"]["PUT"]["requests"] >= 1
        assert stats["server"]["ops"]["GET"]["latency"]["p99_ms"] > 0
        assert stats["db"]["writes"] >= 1
        assert stats["db"]["write_stalled_now"] is False

    def test_large_values(self, client):
        blob = bytes(range(256)) * 2048  # 512 KiB
        client.put(b"big", blob)
        assert client.get(b"big") == blob


class TestPipelining:
    def test_sync_pipeline_order_and_results(self, client):
        with client.pipeline() as pipe:
            pipe.put(b"p1", b"v1")
            pipe.get(b"p1")
            pipe.get(b"absent")
            pipe.ping(b"x")
            pipe.delete(b"p1")
            pipe.get(b"p1")
        assert pipe.results == [None, b"v1", None, b"x", None, None]

    def test_pipeline_deeper_than_inflight_window(self, mem_server):
        # 100 pipelined requests vs a window of 4: TCP backpressure
        # must keep the connection correct, not deadlock it.
        config = ServerConfig(max_inflight_per_conn=4)
        handle = ServerThread(
            DB(MemStorage(), Options(**SMALL), background=True), config
        ).start()
        try:
            with SyncClient(handle.host, handle.port) as c:
                with c.pipeline() as pipe:
                    for i in range(100):
                        pipe.put(b"d%03d" % i, b"v%03d" % i)
                    for i in range(100):
                        pipe.get(b"d%03d" % i)
                assert pipe.results[100:] == [b"v%03d" % i for i in range(100)]
        finally:
            handle.stop()

    def test_async_client_concurrent_ops(self, mem_server):
        async def run():
            async with await AsyncClient.connect(
                mem_server.host, mem_server.port
            ) as c:
                await asyncio.gather(
                    *(c.put(b"a%03d" % i, b"v%03d" % i) for i in range(64))
                )
                values = await asyncio.gather(
                    *(c.get(b"a%03d" % i) for i in range(64))
                )
                assert values == [b"v%03d" % i for i in range(64)]
                assert await c.get(b"missing") is None
                pairs, _ = await c.scan(b"a000", b"a005")
                assert len(pairs) == 5
                assert (await c.stats())["server"]["ops"]["PUT"][
                    "requests"
                ] >= 64

        asyncio.run(run())


class TestBackpressure:
    def test_stalled_write_is_retried_transparently(self, mem_server):
        server = mem_server.server
        real = server.db.picker.write_stall
        fails = {"n": 3}

        def fake_write_stall(version):
            if fails["n"] > 0:
                fails["n"] -= 1
                return True
            return real(version)

        server.db.picker.write_stall = fake_write_stall
        try:
            config_retry = SyncClient(mem_server.host, mem_server.port)
            try:
                config_retry.put(b"k", b"v")  # retries through 3 refusals
                assert config_retry.stall_retries == 3
                assert config_retry.get(b"k") == b"v"
            finally:
                config_retry.close()
            assert server.metrics.stall_rejections == 3
        finally:
            server.db.picker.write_stall = real

    def test_stall_budget_exhaustion_raises(self, mem_server):
        server = mem_server.server
        real = server.db.picker.write_stall
        server.db.picker.write_stall = lambda version: True
        try:
            with SyncClient(
                mem_server.host, mem_server.port, max_retries=2
            ) as c:
                with pytest.raises(ServerBusyError):
                    c.put(b"k", b"v")
                # Reads are never stall-gated.
                assert c.get(b"nothing") is None
        finally:
            server.db.picker.write_stall = real

    def test_reads_pass_during_stall(self, mem_server):
        server = mem_server.server
        with SyncClient(mem_server.host, mem_server.port) as c:
            c.put(b"k", b"v")
            real = server.db.picker.write_stall
            server.db.picker.write_stall = lambda version: True
            try:
                assert c.get(b"k") == b"v"
                pairs, _ = c.scan()
                assert pairs
            finally:
                server.db.picker.write_stall = real


class TestProtocolRobustness:
    def test_garbage_frame_drops_connection(self, mem_server):
        sock = socket.create_connection((mem_server.host, mem_server.port))
        try:
            # Announce 8 payload bytes, send junk with a bogus CRC.
            sock.sendall(struct.pack("<I", 8) + b"garbage!" + b"\x00\x00\x00\x00")
            sock.settimeout(5)
            assert sock.recv(1024) == b""  # server hung up
        finally:
            sock.close()
        assert mem_server.metrics.protocol_errors == 1
        # The server survived: a fresh connection still works.
        with SyncClient(mem_server.host, mem_server.port) as c:
            assert c.ping(b"ok") == b"ok"

    def test_oversized_frame_refused(self, mem_server):
        sock = socket.create_connection((mem_server.host, mem_server.port))
        try:
            sock.sendall(struct.pack("<I", 1 << 31))
            sock.settimeout(5)
            assert sock.recv(1024) == b""
        finally:
            sock.close()

    def test_bad_body_reports_bad_request_and_keeps_connection(
        self, mem_server
    ):
        from repro.server.client import ServerError

        sock = socket.create_connection((mem_server.host, mem_server.port))
        try:
            # Well-framed GET whose body is a truncated length prefix.
            sock.sendall(P.encode_request(P.OP_GET, 1, b"\xff"))
            buf = b""
            while len(buf) < 4:
                buf += sock.recv(4096)
            length = P.frame_length(buf[:4])
            while len(buf) < 4 + length + 4:
                buf += sock.recv(4096)
            response = P.decode_response(P.decode_frame(length, buf[4:]))
            assert response.status == P.ST_BAD_REQUEST
            # Same connection still serves valid requests.
            sock.sendall(P.encode_request(P.OP_PING, 2, b"still alive"))
            more = sock.recv(4096)
            assert b"still alive" in more
        finally:
            sock.close()
        with pytest.raises(ServerError):
            raise ServerError(P.ST_BAD_REQUEST, "for coverage of the type")


class TestServeParser:
    def test_dbtool_accepts_serve(self):
        from repro.tools.dbtool import build_parser

        args = build_parser().parse_args(
            ["serve", "/tmp/db", "--port", "9999", "--workers", "2"]
        )
        assert args.command == "serve"
        assert args.port == 9999
        assert not args.sync_compaction


class TestLoopbackIntegration:
    """The PR's acceptance scenario."""

    def test_concurrent_load_flush_compaction_stats_verify(self, tmp_path):
        path = str(tmp_path / "served-db")
        db = DB(OSStorage(path), Options(**SMALL), background=True)
        handle = ServerThread(db).start()
        n_clients, n_keys = 3, 400
        errors = []

        def worker(worker_id: int) -> None:
            try:
                with SyncClient(handle.host, handle.port) as c:
                    for i in range(n_keys):
                        key = b"w%d-%04d" % (worker_id, i)
                        c.put(key, b"x" * 64)
                        if i % 97 == 0:  # read-your-writes, mid-stream
                            assert c.get(key) == b"x" * 64
                    for i in range(0, n_keys, 37):
                        key = b"w%d-%04d" % (worker_id, i)
                        assert c.get(key) == b"x" * 64, key
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"client-{i}")
            for i in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors

        # Enough data crossed the wire to exercise the LSM machinery.
        with SyncClient(handle.host, handle.port) as c:
            stats = c.stats()
            pairs, _ = c.scan(b"w1-", b"w1.", limit=5)
            assert len(pairs) == 5
        assert stats["db"]["flushes"] >= 1
        assert stats["db"]["compactions"] >= 1
        ops = stats["server"]["ops"]
        assert ops["PUT"]["requests"] == n_clients * n_keys
        assert ops["GET"]["requests"] > 0
        for name in ("PUT", "GET"):
            latency = ops[name]["latency"]
            assert latency["count"] == ops[name]["requests"]
            assert 0 < latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
        assert stats["server"]["connections_opened"] >= n_clients

        # Graceful shutdown drains, flushes, compacts, closes the DB...
        handle.stop()
        assert db._closed
        # ...and leaves a directory that passes full verification.
        report = verify_db(OSStorage(path), Options(**SMALL))
        assert report.ok, report.render()

        # Every key survives a cold reopen.
        reopened = DB(OSStorage(path), Options(**SMALL))
        try:
            for worker_id in range(n_clients):
                for i in range(0, n_keys, 113):
                    key = b"w%d-%04d" % (worker_id, i)
                    assert reopened.get(key) == b"x" * 64
        finally:
            reopened.close()


class TestNetbench:
    def test_small_closed_loop_run(self):
        from repro.bench.netbench import run_net_benchmark

        result = run_net_benchmark(
            mix="a",
            n_ops=600,
            record_count=200,
            value_bytes=32,
            connections=3,
            options=Options(**SMALL),
        )
        assert result.n_ops == 600
        assert result.connections == 3
        assert result.ops_per_second > 0
        assert result.latency.count == 600
        assert 0 < result.percentile_ms(50) <= result.percentile_ms(99)
        assert set(result.op_counts) <= {"read", "update", "insert", "rmw"}
        assert result.server_stats["db"]["writes"] > 0
