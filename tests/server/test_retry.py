"""RetryPolicy backoff/jitter bounds and CircuitBreaker transitions.

Pure unit tests (fake clock, pinned jitter draws) plus two wire-level
integration checks: a retrying client survives a cut connection, and a
breaker turns a dead endpoint into a fast ``CircuitOpenError``.
"""

import socket

import pytest

from repro.db import DB
from repro.devices import FaultyProxy, MemStorage, NetFaultPlan
from repro.server import (
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    ServerThread,
    SyncClient,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# ------------------------------------------------------------- RetryPolicy
def test_backoff_exponential_when_jitterless():
    policy = RetryPolicy(
        base_delay_s=0.1, multiplier=2.0, max_delay_s=10.0, jitter=0.0
    )
    assert policy.backoff_s(1) == pytest.approx(0.1)
    assert policy.backoff_s(2) == pytest.approx(0.2)
    assert policy.backoff_s(3) == pytest.approx(0.4)
    assert policy.backoff_s(4) == pytest.approx(0.8)


def test_backoff_capped_at_max_delay():
    policy = RetryPolicy(
        base_delay_s=0.1, multiplier=10.0, max_delay_s=0.5, jitter=0.0
    )
    assert policy.backoff_s(5) == pytest.approx(0.5)


def test_backoff_jitter_bounds():
    # With jitter j, attempt k must land in [d*(1-j), d*(1+j)] for any
    # uniform draw u in [0, 1) — the bound the chaos matrix relies on
    # to keep failover time predictable.
    policy = RetryPolicy(
        base_delay_s=0.05, multiplier=2.0, max_delay_s=2.0, jitter=0.5
    )
    for attempt in range(1, 8):
        base = min(2.0, 0.05 * 2.0 ** (attempt - 1))
        for u in (0.0, 0.25, 0.5, 0.75, 1.0):
            delay = policy.backoff_s(attempt, u)
            assert base * 0.5 <= delay <= base * 1.5
        # u = 0.5 is the midpoint: exactly the undithered delay.
        assert policy.backoff_s(attempt, 0.5) == pytest.approx(base)


def test_jitter_rng_is_seed_deterministic():
    a = RetryPolicy(seed=7).rng()
    b = RetryPolicy(seed=7).rng()
    assert [a.uniform() for _ in range(16)] == [
        b.uniform() for _ in range(16)
    ]
    assert RetryPolicy(seed=8).rng().uniform() != RetryPolicy(
        seed=7
    ).rng().uniform()


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)


# ----------------------------------------------------------- CircuitBreaker
def test_breaker_opens_at_threshold_and_recovers():
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=3, reset_timeout_s=5.0, clock=clock
    )
    assert breaker.state == "closed"
    for _ in range(2):
        breaker.record_failure()
        assert breaker.allow()
    breaker.record_failure()  # third strike
    assert breaker.state == "open"
    assert not breaker.allow()
    assert breaker.opens == 1

    # Cooldown elapses: exactly one probe is admitted.
    clock.advance(5.1)
    assert breaker.state == "half-open"
    assert breaker.allow()
    assert not breaker.allow()  # second caller waits for the probe

    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow()


def test_breaker_failed_probe_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=1, reset_timeout_s=2.0, clock=clock
    )
    breaker.record_failure()
    assert breaker.state == "open"
    clock.advance(2.1)
    assert breaker.allow()  # the probe
    breaker.record_failure()  # probe failed: fresh cooldown
    assert breaker.state == "open"
    assert not breaker.allow()
    clock.advance(1.0)  # not enough
    assert not breaker.allow()
    clock.advance(1.5)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.opens == 2


# ------------------------------------------------------------- integration
def test_client_retries_through_cut_connection():
    db = DB(MemStorage(), background=True)
    with ServerThread(db) as handle:
        with FaultyProxy(handle.host, handle.port).start() as proxy:
            client = SyncClient(
                proxy.host,
                proxy.port,
                retry_policy=RetryPolicy(
                    max_attempts=4, base_delay_s=0.01, seed=1
                ),
            )
            try:
                client.put(b"k", b"v")
                # Cut the first server→client chunk of the *next*
                # exchange: the response is torn, the client must
                # reconnect and retry the read.
                proxy.set_plan(NetFaultPlan(fail_nth={"s2c": 1}))
                assert client.get(b"k") == b"v"
                assert client.retries >= 1
                assert proxy.injected.get("cut", 0) >= 1
            finally:
                client.close()


def test_breaker_fails_fast_on_dead_endpoint():
    # Grab a port that refuses connections.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()

    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=2, reset_timeout_s=60.0, clock=clock
    )
    for _ in range(2):
        with pytest.raises(OSError):
            SyncClient("127.0.0.1", port, timeout=0.5, breaker=breaker)
    assert breaker.state == "open"
    # Third attempt never touches the network.
    with pytest.raises(CircuitOpenError):
        SyncClient("127.0.0.1", port, timeout=0.5, breaker=breaker)
