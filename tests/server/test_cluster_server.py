"""Cluster-mode server tests: the PR's loopback acceptance gate.

A real 4-shard :class:`repro.cluster.ShardedDB` behind a real server
on an ephemeral port: concurrent clients, wire-compatible opcodes,
shard-aware STALLED routing, cluster STATS, and — after graceful
shutdown — every shard directory passes ``verify_db`` and a
cross-shard SCAN equals a plain single DB loaded with the same data.
"""

import threading

import pytest

from repro.cluster import RangePartitioner, ShardedDB
from repro.db import DB
from repro.db.verify import verify_db
from repro.devices import MemStorage, OSStorage
from repro.lsm import Options
from repro.server import ServerBusyError, ServerThread, SyncClient
from repro.cluster.manifest import shard_dir_name

SMALL = dict(
    memtable_bytes=8 * 1024,
    sstable_bytes=8 * 1024,
    level1_bytes=32 * 1024,
    level_multiplier=4,
)


@pytest.fixture()
def cluster_server():
    db = ShardedDB.in_memory(4, options=Options(**SMALL), background=True)
    handle = ServerThread(db).start()
    yield handle
    handle.stop()


@pytest.fixture()
def client(cluster_server):
    with SyncClient(cluster_server.host, cluster_server.port) as c:
        yield c


class TestWireCompatibility:
    """Every opcode a single-DB client uses works unchanged."""

    def test_put_get_delete(self, client):
        client.put(b"k", b"v")
        assert client.get(b"k") == b"v"
        client.delete(b"k")
        assert client.get(b"k") is None

    def test_batch_spans_shards(self, client):
        ops = [("put", b"bk%03d" % i, b"bv%03d" % i) for i in range(40)]
        assert client.batch(ops) == 40
        for i in range(40):
            assert client.get(b"bk%03d" % i) == b"bv%03d" % i

    def test_scan_globally_ordered(self, client):
        for i in range(60):
            client.put(b"sk%03d" % i, b"sv")
        pairs, truncated = client.scan()
        assert not truncated
        assert [k for k, _ in pairs] == [b"sk%03d" % i for i in range(60)]
        rpairs, _ = client.scan(reverse=True)
        assert [k for k, _ in rpairs] == [
            b"sk%03d" % i for i in range(59, -1, -1)
        ]
        window, _ = client.scan(b"sk010", b"sk020", limit=5)
        assert [k for k, _ in window] == [
            b"sk%03d" % i for i in range(10, 15)
        ]

    def test_compact_opcode(self, client):
        for i in range(200):
            client.put(b"ck%04d" % i, b"x" * 50)
        assert client.compact() >= 0

    def test_stats_has_cluster_section(self, client):
        client.put(b"stat-key", b"1")
        stats = client.stats()
        assert stats["cluster"]["n_shards"] == 4
        assert stats["cluster"]["stalled_shards"] == []
        shards = stats["cluster"]["shards"]
        assert [s["shard"] for s in shards] == [0, 1, 2, 3]
        assert sum(s["writes"] for s in shards) == stats["db"]["writes"]
        # Shard-dimensioned engine metrics with rollups.
        counters = stats["engine"]["counters"]
        assert any(k.startswith("cluster.shard") for k in counters)


class TestShardAwareStall:
    def test_stall_rejects_only_stalled_shards_keys(self):
        db = ShardedDB.in_memory(
            3,
            partitioner=RangePartitioner([b"h", b"p"]),
            options=Options(**SMALL),
            background=True,
        )
        handle = ServerThread(db).start()
        try:
            # Shard 1 owns [h, p): force it to report a write stall.
            db.shards[1].picker.write_stall = lambda version: True
            with SyncClient(
                handle.host, handle.port, max_retries=0
            ) as c:
                c.put(b"aaa", b"healthy")          # shard 0: fine
                c.put(b"zzz", b"healthy")          # shard 2: fine
                with pytest.raises(ServerBusyError):
                    c.put(b"mmm", b"stalled")      # shard 1: rejected
                with pytest.raises(ServerBusyError):
                    c.batch([("put", b"aab", b"1"), ("put", b"mmn", b"2")])
                # Reads to the stalled shard still work.
                assert c.get(b"mmm") is None
                assert c.stats()["cluster"]["stalled_shards"] == [1]
        finally:
            db.shards[1].picker.write_stall = (
                type(db.shards[1].picker).write_stall.__get__(
                    db.shards[1].picker
                )
            )
            handle.stop()


class TestLoopbackIntegration:
    N_SHARDS = 4
    N_CLIENTS = 4
    OPS_PER_CLIENT = 400

    def test_concurrent_clients_then_verify_every_shard(self, tmp_path):
        path = str(tmp_path / "cluster")
        db = ShardedDB.open_path(
            path,
            n_shards=self.N_SHARDS,
            options=Options(**SMALL),
            background=True,
        )
        handle = ServerThread(db).start()
        written = {}
        lock = threading.Lock()
        errors = []

        def worker(wid):
            local = {}
            try:
                with SyncClient(handle.host, handle.port) as c:
                    for i in range(self.OPS_PER_CLIENT):
                        k = b"w%d-%04d" % (wid, i)
                        v = b"value-%d-%d" % (wid, i)
                        c.put(k, v)
                        local[k] = v
                    # Read-your-writes through the cluster.
                    assert c.get(b"w%d-0000" % wid) is not None
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
                return
            with lock:
                written.update(local)

        threads = [
            threading.Thread(
                target=worker, args=(w,), name=f"cluster-client-{w}"
            )
            for w in range(self.N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(written) == self.N_CLIENTS * self.OPS_PER_CLIENT

        with SyncClient(handle.host, handle.port) as c:
            pairs, truncated = c.scan()
            assert not truncated
            scanned = dict(pairs)

        handle.stop()  # graceful: drains, flushes, closes every shard

        # Gate 1: every shard directory independently passes verify_db.
        for i in range(self.N_SHARDS):
            storage = OSStorage(f"{path}/{shard_dir_name(i)}")
            report = verify_db(storage, Options(**SMALL))
            assert report.ok, f"shard {i}:\n{report.render()}"

        # Gate 2: the cross-shard SCAN result equals a plain single
        # DB loaded with the same data.
        reference = DB(MemStorage(), Options(**SMALL))
        try:
            for k, v in written.items():
                reference.put(k, v)
            assert scanned == dict(reference.scan())
            assert sorted(scanned) == [k for k, _ in reference.scan()]
        finally:
            reference.close()

        # Gate 3: reopening the cluster serves everything back.
        reopened = ShardedDB.open_path(path, options=Options(**SMALL))
        try:
            for k, v in list(written.items())[::37]:
                assert reopened.get(k) == v
        finally:
            reopened.close()
