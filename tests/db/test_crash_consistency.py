"""Crash-consistency matrix: power-cut the engine at every protocol
boundary and prove no acknowledged write is ever lost.

The harness is two-phase.  Phase one runs unarmed and seeds the store
with a baseline of acknowledged writes.  Phase two arms a
:class:`FaultPlan` with one of the registered crash points, reopens,
and writes a shuffled-key workload (shuffled so L0 files overlap and
compactions must actually merge — sequential fills trivially move and
never reach the compaction crash points), recording each write only
*after* ``put`` returns.  When :class:`SimulatedCrash` fires,
``frozen_storage()`` reconstructs exactly the synced disk image — the
state a real machine would reboot to — and the test reopens from it,
asserting every acknowledged key survives and ``verify_db`` comes back
clean.

With ``sync_every=1`` every ``put`` is durable before it is
acknowledged, so the correctness contract is exact: acked ⟹ present.
"""

import random

import pytest

from repro.db import DB
from repro.db.verify import verify_db
from repro.devices import MemStorage
from repro.devices.faults import (
    CRASH_POINTS,
    FaultPlan,
    FaultyStorage,
    SimulatedCrash,
)
from repro.lsm import Options

from tests.helpers import small_options


def crash_options(**kw):
    """Tiny engine so a few hundred writes flush and compact."""
    defaults = dict(
        memtable_bytes=4096,
        sstable_bytes=4096,
        block_bytes=1024,
        level1_bytes=16384,
        level_multiplier=4,
        l0_compaction_trigger=2,
    )
    defaults.update(kw)
    return Options(**defaults)


def run_until_crash(point, seed=0, baseline=100, workload=600):
    """Two-phase harness; returns (acked dict, frozen image, crashed?)."""
    storage = FaultyStorage(MemStorage(), FaultPlan())
    acked = {}

    db = DB(storage, crash_options(), sync_every=1)
    for i in range(baseline):
        k, v = b"base-%04d" % i, b"b-%d" % i
        db.put(k, v)
        acked[k] = v
    db.close()

    storage.arm(FaultPlan(seed=seed, crash_at=point))
    crashed = False
    try:
        db = DB(storage, crash_options(), sync_every=1)
        order = list(range(workload))
        random.Random(seed).shuffle(order)
        for i in order:
            k, v = b"key-%04d" % i, b"v-%d-%d" % (seed, i)
            db.put(k, v)
            acked[k] = v
        db.flush()
        db.close()
    except SimulatedCrash:
        crashed = True

    return acked, storage.frozen_storage(), crashed


#: Points a flush-heavy single-threaded workload is guaranteed to reach.
ALWAYS_REACHED = set(CRASH_POINTS) - {"current.tmp_written", "current.renamed"}


class TestCrashMatrix:
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_no_acked_write_lost(self, point):
        acked, frozen, crashed = run_until_crash(point)
        # CURRENT is only swapped at DB.open; those two points fire
        # during the phase-2 reopen, before any new write — every other
        # point must cut power mid-workload.
        if point in ALWAYS_REACHED:
            assert crashed, f"workload never reached crash point {point}"

        db = DB(frozen, crash_options())
        try:
            for k, v in acked.items():
                assert db.get(k) == v, f"{point}: lost acked write {k!r}"
        finally:
            db.close()
        report = verify_db(frozen, crash_options())
        assert report.ok, f"{point}: verify failed:\n{report.render()}"

    @pytest.mark.parametrize("point", sorted(ALWAYS_REACHED))
    def test_crash_then_recovery_gc_leaves_no_garbage(self, point):
        _, frozen, crashed = run_until_crash(point, seed=1)
        assert crashed
        db = DB(frozen, crash_options())
        db.put(b"post-recovery", b"ok")
        db.close()
        leftovers = [n for n in frozen.list() if n.endswith(".tmp")]
        assert leftovers == []
        report = verify_db(frozen, crash_options())
        assert report.ok and not report.warnings, report.render()


class TestCurrentSwapAtomicity:
    def test_power_cut_between_tmp_and_rename(self):
        """Satellite: a crash after CURRENT.tmp is synced but before the
        rename must leave the *old* CURRENT intact and the orphan tmp
        GC'd on reopen — never a dangling or empty CURRENT."""
        storage = FaultyStorage(MemStorage(), FaultPlan())
        db = DB(storage, crash_options(), sync_every=1)
        acked = {}
        for i in range(80):
            k, v = b"k-%03d" % i, b"v-%d" % i
            db.put(k, v)
            acked[k] = v
        db.close()

        # set_current runs during open; crash between tmp-create+sync
        # and the atomic rename.
        storage.arm(FaultPlan(crash_at="current.tmp_written"))
        with pytest.raises(SimulatedCrash):
            DB(storage, crash_options(), sync_every=1)

        frozen = storage.frozen_storage()
        current = frozen.open("CURRENT").read_all()
        assert current.endswith(b"\n") and current.strip()
        assert frozen.exists(current.strip().decode())
        db = DB(frozen, crash_options())
        for k, v in acked.items():
            assert db.get(k) == v
        db.close()
        assert not any(n.endswith(".tmp") for n in frozen.list())
        assert verify_db(frozen, crash_options()).ok

    def test_power_cut_right_after_rename(self):
        storage = FaultyStorage(MemStorage(), FaultPlan())
        db = DB(storage, crash_options(), sync_every=1)
        for i in range(80):
            db.put(b"k-%03d" % i, b"v-%d" % i)
        db.close()

        storage.arm(FaultPlan(crash_at="current.renamed"))
        with pytest.raises(SimulatedCrash):
            DB(storage, crash_options(), sync_every=1)

        frozen = storage.frozen_storage()
        db = DB(frozen, crash_options())
        assert db.get(b"k-000") == b"v-0"
        db.close()
        assert verify_db(frozen, crash_options()).ok


class TestReproducibility:
    def test_same_seed_same_frozen_image(self):
        """FaultyStorage is byte-for-byte deterministic: two identical
        seeded runs freeze identical disk images."""

        def image(seed):
            _, frozen, _ = run_until_crash(
                "compaction.outputs_written", seed=seed, workload=400
            )
            return {n: frozen.open(n).read_all() for n in frozen.list()}

        assert image(5) == image(5)

    def test_different_points_reach_count(self):
        """The workload genuinely reaches ≥8 distinct crash points
        (the acceptance bar for the matrix)."""
        storage = FaultyStorage(MemStorage(), FaultPlan())
        db = DB(storage, crash_options(), sync_every=1)
        order = list(range(600))
        random.Random(0).shuffle(order)
        for i in order:
            db.put(b"key-%04d" % i, b"v-%d" % i)
        db.flush()
        db.close()
        assert len(set(storage.points_seen)) >= 8, sorted(set(storage.points_seen))


class TestSelfHealing:
    def test_transient_write_error_retried_compaction_succeeds(self):
        """A compaction hit by an injected transient EIO succeeds on
        retry, visible in ``compaction.retries``."""
        storage = FaultyStorage(MemStorage(), FaultPlan())
        db = DB(
            storage,
            small_options(l0_compaction_trigger=100, l0_stop_writes_trigger=200),
        )
        order = list(range(700))
        random.Random(2).shuffle(order)
        for i in order:
            db.put(b"key-%04d" % i, b"v-%d" % i)
        db.flush()

        storage.arm(FaultPlan(fail_nth={"write": 1}))
        db.compact_range()
        storage.disarm()
        assert db.obs.metrics.counter("compaction.retries").value >= 1
        assert db.obs.metrics.counter("faults.injected.write").value >= 1
        for i in range(700):
            assert db.get(b"key-%04d" % i) == b"v-%d" % i
        db.close()

    def test_persistent_transient_errors_exhaust_retries(self):
        storage = FaultyStorage(MemStorage(), FaultPlan())
        opts = small_options(
            l0_compaction_trigger=100,
            l0_stop_writes_trigger=200,
            compaction_retries=2,
            compaction_retry_backoff_s=0.0,
        )
        db = DB(storage, opts)
        order = list(range(700))
        random.Random(4).shuffle(order)
        for i in order:
            db.put(b"key-%04d" % i, b"v-%d" % i)
        db.flush()

        storage.arm(FaultPlan(write_error_rate=1.0))
        from repro.devices.faults import TransientIOError

        with pytest.raises(TransientIOError):
            db.compact_range()
        storage.disarm()
        assert db.obs.metrics.counter("compaction.retries").value == 2
        assert db.obs.metrics.counter("compaction.failures").value == 1
        # The store still reads fine — failed outputs were GC'd.
        for i in range(700):
            assert db.get(b"key-%04d" % i) == b"v-%d" % i
        db.close()

    def test_quarantined_table_surfaces_on_reopen(self):
        from tests.helpers import corrupt_file

        storage = MemStorage()
        db = DB(
            storage,
            small_options(l0_compaction_trigger=100, l0_stop_writes_trigger=200),
        )
        order = list(range(700))
        random.Random(6).shuffle(order)
        for i in order:
            db.put(b"key-%04d" % i, b"v-%d" % i)
        db.flush()
        sst = next(n for n in storage.list() if n.endswith(".sst"))
        corrupt_file(storage, sst, 40)
        db._tables.clear()
        db._cache.clear()
        db.compact_range()
        assert sst + ".quarantined" in db.get_property("quarantine")
        db.close()

        db2 = DB(storage, small_options())
        assert sst + ".quarantined" in db2.get_property("quarantine")
        assert db2.obs.metrics.counter("recovery.quarantine_found").value >= 1
        db2.close()


class TestTornTail:
    def test_torn_wal_tail_recovers_prefix(self):
        """torn_tail mode tears the unsynced WAL bytes to a seeded
        prefix; recovery drops the torn record, counts it, and keeps
        every synced write."""
        storage = FaultyStorage(MemStorage(), FaultPlan())
        db = DB(storage, crash_options(), sync_every=1)
        acked = {}
        for i in range(60):
            k, v = b"k-%03d" % i, b"v-%d" % i
            db.put(k, v)
            acked[k] = v
        db.close()

        storage.arm(FaultPlan(seed=11, crash_at="wal.sync", torn_tail=True))
        crashed = False
        try:
            db = DB(storage, crash_options(), sync_every=1)
            for i in range(60, 200):
                k, v = b"k-%03d" % i, b"v-%d" % i
                db.put(k, v)
                acked[k] = v
        except SimulatedCrash:
            crashed = True
        assert crashed

        frozen = storage.frozen_storage()
        db = DB(frozen, crash_options())
        for k, v in acked.items():
            assert db.get(k) == v
        db.close()
        assert verify_db(frozen, crash_options()).ok
