"""Failure injection across the stack.

The paper's S2/S6 checksum steps exist precisely to catch storage
corruption during compaction; these tests flip bits at every layer and
assert the engine detects (never silently propagates) the damage, and
that crash points around the manifest/WAL commit protocol lose nothing
acknowledged.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import DB
from repro.devices import MemStorage
from repro.lsm import LogCorruption

from tests.helpers import corrupt_file, small_options


class TestCompactionDetectsCorruption:
    def test_compaction_quarantines_corrupt_input(self):
        """S2 catches a flipped bit in a compaction input block; the
        damaged table is renamed aside and the DB keeps serving."""
        storage = MemStorage()
        db = DB(
            storage,
            small_options(l0_compaction_trigger=100, l0_stop_writes_trigger=200),
        )
        # Shuffled keys: L0 files overlap, so compaction must merge
        # (sequential fills would trivially move without reading).
        order = list(range(900))
        random.Random(3).shuffle(order)
        for i in order:
            db.put(b"key-%05d" % i, b"v-%d" % i)
        db.flush()
        sst = next(n for n in storage.list() if n.endswith(".sst"))
        corrupt_file(storage, sst, 40)
        # Drop cached table/blocks so the corrupt bytes are re-read.
        db._tables.clear()
        db._cache.clear()
        # Self-healing: no exception; the corrupt table is quarantined.
        db.compact_range()
        quarantine = db.get_property("quarantine")
        assert sst + ".quarantined" in quarantine
        assert storage.exists(sst + ".quarantined")
        assert not storage.exists(sst)
        assert db.obs.metrics.counter("compaction.quarantined").value >= 1
        # The DB still serves reads and writes afterwards.
        db.put(b"after-quarantine", b"ok")
        assert db.get(b"after-quarantine") == b"ok"
        survivors = sum(1 for _ in db.items())
        assert 0 < survivors <= 901
        db.close()

    @settings(max_examples=20, deadline=None)
    @given(offset=st.integers(min_value=0, max_value=10**6), bit=st.integers(0, 7))
    def test_random_sst_bitflip_never_silent(self, offset, bit):
        """Any single bit flip in a data region is either detected or
        lands in unreferenced padding — reads never return wrong data
        silently for keys whose blocks were hit."""
        storage = MemStorage()
        db = DB(storage, small_options())
        expected = {}
        for i in range(400):
            key, value = b"key-%04d" % i, b"val-%d" % i
            db.put(key, value)
            expected[key] = value
        db.flush()
        db.close()

        tables = [n for n in storage.list() if n.endswith(".sst")]
        victim = tables[offset % len(tables)]
        corrupt_file(storage, victim, offset, 1 << bit)

        db = DB(storage, small_options())
        detected: list[Exception] = []
        try:
            for key, value in expected.items():
                try:
                    got = db.get(key)
                except Exception as exc:  # detected: acceptable
                    detected.append(exc)
                    continue
                assert got is None or got == value
        finally:
            try:
                db.close()
            except Exception:
                pass


class TestWALFaults:
    def test_torn_tail_loses_only_unacked_suffix(self):
        storage = MemStorage()
        db = DB(storage, small_options())
        for i in range(50):
            db.put(b"k-%03d" % i, b"v")
        wal_name = db._wal_name(db._wal_number)
        del db  # crash without close
        data = storage.open(wal_name).read_all()
        storage.delete(wal_name)
        with storage.create(wal_name) as f:
            f.append(data[: len(data) // 2])  # tear mid-log
        db2 = DB(storage, small_options())
        # A prefix of writes survives; the store opens cleanly.
        survived = sum(1 for _ in db2.items())
        assert 0 < survived <= 50
        keys = [k for k, _ in db2.items()]
        assert keys == [b"k-%03d" % i for i in range(survived)]
        db2.close()

    def test_interior_wal_corruption_raises(self):
        storage = MemStorage()
        db = DB(storage, small_options())
        for i in range(50):
            db.put(b"k-%03d" % i, b"v" * 20)
        wal_name = db._wal_name(db._wal_number)
        del db
        corrupt_file(storage, wal_name, 12)  # inside the first record
        with pytest.raises(LogCorruption):
            DB(storage, small_options())


class TestCrashPoints:
    def test_crash_after_flush_before_wal_delete(self):
        """A flush writes the table + manifest edit, then deletes the
        old WAL; if the delete is lost, replaying both is harmless
        (the old WAL is simply absent next time or re-applied as
        no-longer-referenced)."""
        storage = MemStorage()
        db = DB(storage, small_options())
        db.put(b"a", b"1")
        db.flush()
        db.put(b"b", b"2")
        del db  # crash
        db2 = DB(storage, small_options())
        assert db2.get(b"a") == b"1"
        assert db2.get(b"b") == b"2"
        db2.close()

    def test_repeated_crash_reopen_cycles(self):
        storage = MemStorage()
        expected = {}
        rng = random.Random(7)
        for cycle in range(6):
            db = DB(storage, small_options())
            for key, value in expected.items():
                assert db.get(key) == value, f"cycle {cycle}: lost {key}"
            for _ in range(150):
                k = b"key-%03d" % rng.randrange(300)
                v = b"cycle-%d-%d" % (cycle, rng.randrange(10**6))
                db.put(k, v)
                expected[k] = v
            if cycle % 2:
                db.flush()
            del db  # crash every cycle
        db = DB(storage, small_options())
        assert dict(db.items()) == expected
        db.close()
