"""Integration tests for the DB facade."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProcedureSpec
from repro.db import DB
from repro.devices import MemStorage, OSStorage
from repro.lsm import Options, WriteBatch


def small_options(**kw):
    """Tiny thresholds so compactions happen within test-sized loads."""
    defaults = dict(
        memtable_bytes=32 * 1024,
        sstable_bytes=16 * 1024,
        block_bytes=1024,
        level1_bytes=64 * 1024,
        level_multiplier=4,
        l0_compaction_trigger=2,
        compression="lz77",
    )
    defaults.update(kw)
    return Options(**defaults)


def fill(db, n, value_size=64, start=0):
    for i in range(start, start + n):
        db.put(b"key-%08d" % i, (b"v%d-" % i) * (value_size // 8))


def fill_shuffled(db, n, value_size=64, seed=11):
    """Insert n keys in a shuffled order so L0 files overlap and
    compactions do real merging (sequential fills trivially move)."""
    import random

    order = list(range(n))
    random.Random(seed).shuffle(order)
    for i in order:
        db.put(b"key-%08d" % i, (b"v%d-" % i) * (value_size // 8))


class TestBasicOps:
    def test_put_get(self):
        with DB(MemStorage(), small_options()) as db:
            db.put(b"hello", b"world")
            assert db.get(b"hello") == b"world"
            assert db.get(b"missing") is None

    def test_overwrite(self):
        with DB(MemStorage(), small_options()) as db:
            db.put(b"k", b"v1")
            db.put(b"k", b"v2")
            assert db.get(b"k") == b"v2"

    def test_delete(self):
        with DB(MemStorage(), small_options()) as db:
            db.put(b"k", b"v")
            db.delete(b"k")
            assert db.get(b"k") is None

    def test_delete_missing_key_is_fine(self):
        with DB(MemStorage(), small_options()) as db:
            db.delete(b"never-existed")
            assert db.get(b"never-existed") is None

    def test_write_batch_atomic(self):
        with DB(MemStorage(), small_options()) as db:
            batch = WriteBatch().put(b"a", b"1").put(b"b", b"2").delete(b"a")
            db.write(batch)
            assert db.get(b"a") is None
            assert db.get(b"b") == b"2"

    def test_empty_batch_noop(self):
        with DB(MemStorage(), small_options()) as db:
            db.write(WriteBatch())
            assert db.stats.writes == 0

    def test_get_survives_flush(self):
        with DB(MemStorage(), small_options()) as db:
            db.put(b"k", b"v")
            db.flush()
            assert db.num_files(0) >= 0  # flushed (may have compacted)
            assert db.get(b"k") == b"v"

    def test_closed_db_rejects_ops(self):
        db = DB(MemStorage(), small_options())
        db.close()
        with pytest.raises(RuntimeError):
            db.put(b"k", b"v")
        with pytest.raises(RuntimeError):
            db.get(b"k")

    def test_double_close(self):
        db = DB(MemStorage(), small_options())
        db.close()
        db.close()


class TestCompactionIntegration:
    @pytest.mark.parametrize(
        "spec",
        [
            ProcedureSpec.scp(subtask_bytes=8 * 1024),
            ProcedureSpec.pcp(subtask_bytes=8 * 1024),
            ProcedureSpec.cppcp(k=2, subtask_bytes=8 * 1024),
        ],
        ids=["scp", "pcp", "cppcp"],
    )
    def test_heavy_insert_then_read_everything(self, spec):
        with DB(MemStorage(), small_options(), compaction_spec=spec) as db:
            fill(db, 3000)
            assert db.stats.compactions > 0
            for i in range(0, 3000, 97):
                expected = (b"v%d-" % i) * 8
                assert db.get(b"key-%08d" % i) == expected

    def test_data_flows_to_deeper_levels(self):
        with DB(MemStorage(), small_options()) as db:
            fill_shuffled(db, 5000)
            deep_files = sum(db.num_files(lv) for lv in range(1, 7))
            assert deep_files > 0
            assert db.stats.compaction_input_bytes > 0
            assert db.stats.compaction_bandwidth() > 0

    def test_sequential_fill_uses_trivial_moves(self):
        """Non-overlapping L0 files just move down, as in LevelDB."""
        with DB(MemStorage(), small_options()) as db:
            fill(db, 4000)
            assert db.stats.trivial_moves > 0

    def test_shuffled_fill_does_real_merges(self):
        with DB(MemStorage(), small_options()) as db:
            fill_shuffled(db, 4000)
            assert db.stats.compactions > db.stats.trivial_moves

    def test_levels_respect_invariants(self):
        with DB(MemStorage(), small_options()) as db:
            fill(db, 4000)
            db.version.check_invariants()

    def test_overwrites_are_merged_away(self):
        opts = small_options()
        with DB(MemStorage(), opts) as db:
            for round_ in range(6):
                for i in range(300):
                    db.put(b"hot-%04d" % i, b"round-%d" % round_)
            db.flush()
            db.compact_all()
            for i in range(300):
                assert db.get(b"hot-%04d" % i) == b"round-5"
            # After full compaction the dataset shrinks to ~one version.
            live = sum(1 for _ in db.items())
            assert live == 300

    def test_deletes_reclaimed_at_bottom(self):
        with DB(MemStorage(), small_options()) as db:
            fill(db, 800)
            for i in range(0, 800, 2):
                db.delete(b"key-%08d" % i)
            db.flush()
            db.compact_all()
            live = sum(1 for _ in db.items())
            assert live == 400

    def test_write_stall_accounting(self, monkeypatch):
        """A backed-up L0 pauses the writer (paper: write pauses)."""
        with DB(MemStorage(), small_options()) as db:
            fill(db, 200)
            stall_once = iter([True])

            def fake_stall(version):
                return next(stall_once, False)

            monkeypatch.setattr(db.picker, "write_stall", fake_stall)
            db.put(b"k", b"v")
            assert db.stats.write_stalls == 1
            # Sync mode resolved the stall by compacting until quiet.
            assert not db.picker.needs_compaction(db.version)


class TestScan:
    def test_scan_ordered(self):
        with DB(MemStorage(), small_options()) as db:
            fill(db, 500)
            keys = [k for k, _ in db.items()]
            assert keys == sorted(keys)
            assert len(keys) == 500

    def test_scan_range(self):
        with DB(MemStorage(), small_options()) as db:
            fill(db, 300)
            got = list(db.scan(b"key-00000100", b"key-00000110"))
            assert [k for k, _ in got] == [b"key-%08d" % i for i in range(100, 110)]

    def test_scan_sees_memtable_and_disk(self):
        with DB(MemStorage(), small_options()) as db:
            fill(db, 200)
            db.flush()
            db.put(b"key-zzz", b"fresh")
            keys = [k for k, _ in db.items()]
            assert b"key-zzz" in keys

    def test_scan_skips_deleted(self):
        with DB(MemStorage(), small_options()) as db:
            fill(db, 100)
            db.delete(b"key-%08d" % 50)
            keys = [k for k, _ in db.items()]
            assert b"key-%08d" % 50 not in keys
            assert len(keys) == 99


class TestSnapshots:
    def test_snapshot_isolated_from_later_writes(self):
        with DB(MemStorage(), small_options()) as db:
            db.put(b"k", b"v1")
            with db.snapshot() as snap:
                db.put(b"k", b"v2")
                assert db.get(b"k") == b"v2"
                assert db.get(b"k", snapshot=snap) == b"v1"

    def test_snapshot_survives_flush_and_compaction(self):
        with DB(MemStorage(), small_options()) as db:
            db.put(b"pinned", b"old")
            snap = db.snapshot()
            fill(db, 2000)
            db.put(b"pinned", b"new")
            db.flush()
            db.compact_all()
            assert db.get(b"pinned", snapshot=snap) == b"old"
            assert db.get(b"pinned") == b"new"
            snap.release()

    def test_snapshot_of_deleted_key(self):
        with DB(MemStorage(), small_options()) as db:
            db.put(b"k", b"v")
            snap = db.snapshot()
            db.delete(b"k")
            assert db.get(b"k") is None
            assert db.get(b"k", snapshot=snap) == b"v"
            snap.release()

    def test_release_unpins(self):
        with DB(MemStorage(), small_options()) as db:
            snap = db.snapshot()
            snap.release()
            snap.release()  # idempotent
            assert db._smallest_snapshot() == db._sequence


class TestRecovery:
    def test_wal_replay_after_crash(self):
        storage = MemStorage()
        db = DB(storage, small_options())
        db.put(b"durable", b"yes")
        db.put(b"also", b"this")
        db.close()
        with DB(storage, small_options()) as db2:
            assert db2.get(b"durable") == b"yes"
            assert db2.get(b"also") == b"this"

    def test_manifest_replay_restores_levels(self):
        storage = MemStorage()
        db = DB(storage, small_options())
        fill(db, 3000)
        # Flush so the WAL is empty at close; otherwise recovery adds
        # an L0 file for the recovered tail (by design: durability).
        db.flush()
        shape = [db.num_files(lv) for lv in range(7)]
        db.close()
        with DB(storage, small_options()) as db2:
            assert [db2.num_files(lv) for lv in range(7)] == shape
            for i in range(0, 3000, 301):
                assert db2.get(b"key-%08d" % i) == (b"v%d-" % i) * 8

    def test_unclosed_db_loses_nothing_synced(self):
        # Simulate a crash: no close(); WAL was still appended eagerly.
        storage = MemStorage()
        db = DB(storage, small_options())
        db.put(b"k1", b"v1")
        db.flush()
        db.put(b"k2", b"v2")  # only in WAL + memtable
        # Abandon db without close. Reopen replays manifest + WAL...
        # but the boot manifest was written at open; the live WAL is
        # found via its log number from that manifest.
        db2 = DB(storage, small_options())
        assert db2.get(b"k1") == b"v1"
        assert db2.get(b"k2") == b"v2"
        db2.close()

    def test_recovery_on_osstorage(self, tmp_path):
        storage = OSStorage(str(tmp_path))
        db = DB(storage, small_options())
        fill(db, 1500)
        db.close()
        with DB(OSStorage(str(tmp_path)), small_options()) as db2:
            assert db2.get(b"key-%08d" % 700) == (b"v700-") * 8


class TestBackgroundMode:
    def test_background_compaction_keeps_up(self):
        opts = small_options()
        with DB(MemStorage(), opts, background=True,
                compaction_spec=ProcedureSpec.pcp(subtask_bytes=8 * 1024)) as db:
            fill(db, 3000)
            db.wait_for_compactions()
            assert db.stats.compactions > 0
            for i in range(0, 3000, 97):
                assert db.get(b"key-%08d" % i) == (b"v%d-" % i) * 8

    def test_compact_once_rejected_in_background_mode(self):
        with DB(MemStorage(), small_options(), background=True) as db:
            with pytest.raises(RuntimeError):
                db.compact_once()

    def test_reads_during_background_compaction(self):
        import threading

        opts = small_options()
        errors = []
        with DB(MemStorage(), opts, background=True) as db:
            stop = threading.Event()

            def reader():
                i = 0
                while not stop.is_set():
                    db.get(b"key-%08d" % (i % 1000))
                    i += 1

            t = threading.Thread(target=reader, name="db-reader")
            t.start()
            try:
                fill(db, 3000)
                db.wait_for_compactions()
            finally:
                stop.set()
                t.join()
            assert not errors


@settings(max_examples=15, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.integers(min_value=0, max_value=60),
            st.binary(min_size=1, max_size=30),
        ),
        max_size=250,
    )
)
def test_db_matches_dict_model(ops):
    """With aggressive flush/compaction thresholds, the DB still behaves
    like a dict."""
    model = {}
    with DB(MemStorage(), small_options(memtable_bytes=2048)) as db:
        for op, keyid, value in ops:
            key = b"key-%03d" % keyid
            if op == "put":
                db.put(key, value)
                model[key] = value
            else:
                db.delete(key)
                model.pop(key, None)
        for keyid in range(61):
            key = b"key-%03d" % keyid
            assert db.get(key) == model.get(key)
        assert dict(db.items()) == model


class TestAuxiliaryAPIs:
    def test_multi_get(self):
        with DB(MemStorage(), small_options()) as db:
            db.put(b"a", b"1")
            db.put(b"c", b"3")
            assert db.multi_get([b"a", b"b", b"c"]) == [b"1", None, b"3"]

    def test_multi_get_with_snapshot(self):
        with DB(MemStorage(), small_options()) as db:
            db.put(b"a", b"old")
            snap = db.snapshot()
            db.put(b"a", b"new")
            assert db.multi_get([b"a"], snapshot=snap) == [b"old"]
            snap.release()

    def test_approximate_size_full_range(self):
        with DB(MemStorage(), small_options()) as db:
            fill(db, 2000)
            db.flush()
            approx = db.approximate_size()
            assert approx == db.total_bytes()

    def test_approximate_size_subrange(self):
        with DB(MemStorage(), small_options()) as db:
            fill(db, 2000)
            db.flush()
            half = db.approximate_size(None, b"key-00001000")
            full = db.approximate_size()
            assert 0 < half < full
            # Disjoint range far above all keys.
            assert db.approximate_size(b"z", None) == 0

    def test_approximate_size_empty_db(self):
        with DB(MemStorage(), small_options()) as db:
            assert db.approximate_size() == 0
