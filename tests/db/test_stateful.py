"""Stateful model-based testing of the DB (hypothesis rule machine).

The machine interleaves puts, deletes, batch writes, snapshots, reads,
scans, flushes, manual compactions, and full crash-reopen cycles, and
checks the store against a plain dict model (plus per-snapshot frozen
models) after every step.  This is the widest net for ordering,
visibility, and recovery bugs across the whole stack.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.db import DB
from repro.devices import MemStorage
from repro.lsm import Options, WriteBatch

KEYS = st.integers(min_value=0, max_value=40).map(lambda i: b"key-%03d" % i)
VALUES = st.binary(min_size=0, max_size=24)


def tiny_options() -> Options:
    return Options(
        memtable_bytes=2 * 1024,  # flush every ~20 writes
        sstable_bytes=2 * 1024,
        block_bytes=512,
        level1_bytes=8 * 1024,
        level_multiplier=4,
        l0_compaction_trigger=2,
        compression="lz77",
    )


class DBMachine(RuleBasedStateMachine):
    snapshots = Bundle("snapshots")

    @initialize()
    def setup(self):
        self.storage = MemStorage()
        self.db = DB(self.storage, tiny_options())
        self.model: dict[bytes, bytes] = {}
        self.snapshot_models: dict[int, dict[bytes, bytes]] = {}

    # ------------------------------------------------------------ rules
    @rule(key=KEYS, value=VALUES)
    def put(self, key, value):
        self.db.put(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def delete(self, key):
        self.db.delete(key)
        self.model.pop(key, None)

    @rule(ops=st.lists(st.tuples(st.booleans(), KEYS, VALUES), min_size=1,
                       max_size=6))
    def write_batch(self, ops):
        batch = WriteBatch()
        for is_put, key, value in ops:
            if is_put:
                batch.put(key, value)
                self.model[key] = value
            else:
                batch.delete(key)
                self.model.pop(key, None)
        self.db.write(batch)

    @rule(key=KEYS)
    def read(self, key):
        assert self.db.get(key) == self.model.get(key)

    @rule(target=snapshots)
    def take_snapshot(self):
        snap = self.db.snapshot()
        self.snapshot_models[id(snap)] = dict(self.model)
        return snap

    @rule(snap=snapshots, key=KEYS)
    def read_at_snapshot(self, snap, key):
        frozen = self.snapshot_models.get(id(snap))
        if frozen is None:
            return  # released in a previous step
        assert self.db.get(key, snapshot=snap) == frozen.get(key)

    @rule(snap=snapshots)
    def release_snapshot(self, snap):
        self.snapshot_models.pop(id(snap), None)
        snap.release()

    @rule()
    def flush(self):
        self.db.flush()

    @rule()
    def compact(self):
        self.db.compact_all()

    @precondition(lambda self: not self.snapshot_models)
    @rule()
    def crash_and_reopen(self):
        # Abandon without close: recovery must replay WAL + MANIFEST.
        del self.db
        self.db = DB(self.storage, tiny_options())

    # -------------------------------------------------------- invariants
    @invariant()
    def full_scan_matches_model(self):
        if not hasattr(self, "db"):
            return
        assert dict(self.db.items()) == self.model

    @invariant()
    def levels_are_sane(self):
        if not hasattr(self, "db"):
            return
        self.db.version.check_invariants()

    def teardown(self):
        if hasattr(self, "db"):
            self.db.close()


TestDBStateful = DBMachine.TestCase
TestDBStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
