"""Tests for verify_db / repair_db and the streaming cursor."""


from repro.db import DB, repair_db, verify_db
from repro.db.manifest import CURRENT_NAME
from repro.devices import MemStorage

from tests.helpers import corrupt_file, small_options


def _populate(storage, n=1500, options=None):
    db = DB(storage, options or small_options())
    for i in range(n):
        db.put(b"key-%06d" % i, b"value-%d" % i)
    db.flush()
    db.close()


class TestVerify:
    def test_clean_db_verifies(self):
        storage = MemStorage()
        _populate(storage)
        report = verify_db(storage, small_options())
        assert report.ok, report.render()
        assert report.tables_checked > 0
        assert report.entries_checked >= 1500
        assert "OK" in report.render()

    def test_empty_dir_fails(self):
        report = verify_db(MemStorage(), small_options())
        assert not report.ok
        assert "CURRENT" in report.errors[0]

    def test_missing_table_detected(self):
        storage = MemStorage()
        _populate(storage)
        victim = next(n for n in storage.list() if n.endswith(".sst"))
        storage.delete(victim)
        report = verify_db(storage, small_options())
        assert not report.ok
        assert any("missing" in e for e in report.errors)

    def test_corrupt_block_detected(self):
        storage = MemStorage()
        _populate(storage)
        victim = next(n for n in storage.list() if n.endswith(".sst"))
        corrupt_file(storage, victim, 20)
        report = verify_db(storage, small_options())
        assert not report.ok

    def test_quarantined_and_tmp_files_are_warnings(self):
        storage = MemStorage()
        _populate(storage)
        with storage.create("000042.sst.quarantined") as f:
            f.append(b"damaged table set aside")
        # Deliberate orphan: verify treats the leftover as salvage.
        with storage.create("CURRENT.tmp") as f:  # repro: noqa[RA203]
            f.append(b"MANIFEST-000001\n")
        report = verify_db(storage, small_options())
        assert report.ok
        assert any("quarantined" in w for w in report.warnings)
        assert any("temp" in w for w in report.warnings)

    def test_orphan_is_warning_not_error(self):
        storage = MemStorage()
        _populate(storage)
        with storage.create("999999.sst") as f:
            f.append(b"not even a table")
        report = verify_db(storage, small_options())
        assert report.ok
        assert any("orphan" in w for w in report.warnings)

    def test_missing_manifest_detected(self):
        storage = MemStorage()
        _populate(storage)
        with storage.create(CURRENT_NAME) as f:
            f.append(b"MANIFEST-xxxxx\n")
        report = verify_db(storage, small_options())
        assert not report.ok


class TestRepair:
    def test_repair_after_lost_manifest(self):
        storage = MemStorage()
        _populate(storage, n=2000)
        # Disaster: CURRENT and all manifests gone.
        for name in list(storage.list()):
            if name.startswith("MANIFEST") or name == CURRENT_NAME:
                storage.delete(name)
        result = repair_db(storage, small_options())
        assert result["salvaged"]
        assert verify_db(storage, small_options()).ok
        with DB(storage, small_options()) as db:
            assert db.get(b"key-000123") == b"value-123"
            assert sum(1 for _ in db.items()) == 2000

    def test_repair_drops_corrupt_tables(self):
        storage = MemStorage()
        _populate(storage, n=2000)
        tables = [n for n in storage.list() if n.endswith(".sst")]
        victim = tables[0]
        corrupt_file(storage, victim, 15, 0x01)
        result = repair_db(storage, small_options())
        assert victim in result["dropped"]
        assert set(result["salvaged"]) == set(tables) - {victim}
        # DB opens; the corrupt table's keys are lost, the rest live.
        with DB(storage, small_options()) as db:
            total = sum(1 for _ in db.items())
            assert 0 < total < 2000

    def test_repair_preserves_newest_versions(self):
        storage = MemStorage()
        options = small_options()
        db = DB(storage, options)
        db.put(b"k", b"old")
        db.flush()
        db.put(b"k", b"new")
        db.flush()
        db.close()
        for name in list(storage.list()):
            if name.startswith("MANIFEST") or name == CURRENT_NAME:
                storage.delete(name)
        repair_db(storage, options)
        with DB(storage, options) as db:
            assert db.get(b"k") == b"new"
            # New writes get sequences above everything salvaged.
            db.put(b"k", b"newest")
            assert db.get(b"k") == b"newest"

    def test_repair_empty_dir(self):
        storage = MemStorage()
        result = repair_db(storage, small_options())
        assert result == {"salvaged": [], "dropped": []}
        with DB(storage, small_options()) as db:
            assert db.get(b"anything") is None

    def test_repair_missing_current_with_manifest_intact(self):
        """Only CURRENT lost: the manifest still exists but is
        unreachable; repair rebuilds from the tables and reopens."""
        storage = MemStorage()
        _populate(storage, n=800)
        storage.delete(CURRENT_NAME)
        assert not verify_db(storage, small_options()).ok
        result = repair_db(storage, small_options())
        assert result["salvaged"]
        assert verify_db(storage, small_options()).ok
        with DB(storage, small_options()) as db:
            assert sum(1 for _ in db.items()) == 800

    def test_repair_after_truncated_empty_manifest(self):
        """CURRENT points at a zero-byte manifest (torn at creation)."""
        storage = MemStorage()
        _populate(storage, n=800)
        manifest = storage.open(CURRENT_NAME).read_all().strip().decode()
        storage.delete(manifest)
        with storage.create(manifest) as f:
            f.sync()
        result = repair_db(storage, small_options())
        assert result["salvaged"]
        with DB(storage, small_options()) as db:
            assert sum(1 for _ in db.items()) == 800

    def test_repair_salvages_orphan_sst(self):
        """An output orphaned by a crash before its manifest commit is
        real data; repair re-registers it at L0."""
        storage = MemStorage()
        _populate(storage, n=800)
        # Clone a registered table under an unreferenced number: from
        # repair's point of view it is an orphan with valid contents.
        src = next(n for n in storage.list() if n.endswith(".sst"))
        data = storage.open(src).read_all()
        with storage.create("900000.sst") as f:
            f.append(data)
            f.sync()
        result = repair_db(storage, small_options())
        assert "900000.sst" in result["salvaged"]
        with DB(storage, small_options()) as db:
            assert sum(1 for _ in db.items()) == 800  # dup keys collapse

    def test_repair_readmits_clean_quarantined_table(self):
        """Quarantine replay: a renamed-aside table that verifies
        cleanly is renamed back and salvaged; a genuinely corrupt one
        stays aside."""
        storage = MemStorage()
        _populate(storage, n=800)
        tables = [n for n in storage.list() if n.endswith(".sst")]
        clean, dirty = tables[0], tables[1]
        storage.rename(clean, clean + ".quarantined")
        corrupt_file(storage, dirty, 30)
        storage.rename(dirty, dirty + ".quarantined")
        result = repair_db(storage, small_options())
        assert clean in result["salvaged"]
        assert dirty + ".quarantined" in result["dropped"]
        assert storage.exists(dirty + ".quarantined")
        assert not storage.exists(dirty)
        with DB(storage, small_options()) as db:
            total = sum(1 for _ in db.items())
            assert 0 < total <= 800

    def test_repair_then_reopen_round_trip(self):
        """repair → open → write → close → verify → open again."""
        storage = MemStorage()
        _populate(storage, n=500)
        storage.delete(CURRENT_NAME)
        repair_db(storage, small_options())
        with DB(storage, small_options()) as db:
            db.put(b"post-repair", b"yes")
            db.flush()
        assert verify_db(storage, small_options()).ok
        with DB(storage, small_options()) as db:
            assert db.get(b"post-repair") == b"yes"
            assert sum(1 for _ in db.items()) == 501


class TestCursor:
    def test_cursor_streams_lazily(self):
        with DB(MemStorage(), small_options()) as db:
            for i in range(500):
                db.put(b"k-%04d" % i, b"v%d" % i)
            cur = db.cursor()
            it = iter(cur)
            first = next(it)
            assert first == (b"k-0000", b"v0")
            # Writes after cursor creation are invisible to it.
            db.put(b"k-0001", b"OVERWRITTEN")
            assert next(it) == (b"k-0001", b"v1")
            # But a fresh cursor sees them.
            assert dict(db.cursor().items(b"k-0001", b"k-0002")) == {
                b"k-0001": b"OVERWRITTEN"
            }

    def test_cursor_seek(self):
        with DB(MemStorage(), small_options()) as db:
            for i in range(300):
                db.put(b"k-%04d" % i, b"v")
            db.flush()
            got = [k for k, _ in db.cursor().seek(b"k-0290")]
            assert got == [b"k-%04d" % i for i in range(290, 300)]

    def test_cursor_spans_all_levels(self):
        with DB(MemStorage(), small_options()) as db:
            import random

            order = list(range(2000))
            random.Random(5).shuffle(order)
            for i in order:
                db.put(b"k-%05d" % i, b"v%d" % i)
            # Data now spread across memtable, L0 and deeper levels.
            keys = [k for k, _ in db.cursor()]
            assert keys == [b"k-%05d" % i for i in range(2000)]

    def test_cursor_count(self):
        with DB(MemStorage(), small_options()) as db:
            for i in range(100):
                db.put(b"k-%03d" % i, b"v")
            db.delete(b"k-050")
            cur = db.cursor()
            assert cur.count() == 99
            assert cur.count(b"k-010", b"k-020") == 10

    def test_cursor_with_snapshot(self):
        with DB(MemStorage(), small_options()) as db:
            db.put(b"a", b"1")
            snap = db.snapshot()
            db.put(b"a", b"2")
            db.put(b"b", b"1")
            assert dict(db.cursor(snapshot=snap)) == {b"a": b"1"}
            assert dict(db.cursor()) == {b"a": b"2", b"b": b"1"}
            snap.release()

    def test_cursor_survives_compaction(self):
        with DB(MemStorage(), small_options()) as db:
            import random

            order = list(range(1500))
            random.Random(9).shuffle(order)
            for i in order:
                db.put(b"k-%05d" % i, b"v%d" % i)
            cur = db.cursor()
            it = iter(cur)
            head = [next(it) for _ in range(10)]
            # Force a full reshape under the open cursor.
            db.compact_range()
            rest = list(it)
            keys = [k for k, _ in head + rest]
            assert keys == [b"k-%05d" % i for i in range(1500)]


class TestCompactRange:
    def test_compact_range_pushes_data_down(self):
        with DB(MemStorage(), small_options()) as db:
            import random

            order = list(range(3000))
            random.Random(2).shuffle(order)
            for i in order:
                db.put(b"k-%05d" % i, b"v%d" % i)
            n = db.compact_range()
            assert n >= 0
            assert db.num_files(0) == 0  # L0 fully drained
            assert db.get(b"k-01500") == b"v1500"
            assert sum(1 for _ in db.items()) == 3000

    def test_compact_range_partial(self):
        with DB(MemStorage(), small_options()) as db:
            for i in range(2000):
                db.put(b"k-%05d" % i, b"v")
            db.compact_range(b"k-00000", b"k-00500")
            assert db.get(b"k-00250") == b"v"

    def test_get_property(self):
        with DB(MemStorage(), small_options()) as db:
            db.put(b"k", b"v")
            assert db.get_property("num-files-at-level0") == "0"
            assert db.get_property("num-files-at-level99") is None
            assert "writes=1" in db.get_property("stats")
            assert db.get_property("sstables") is not None
            assert int(db.get_property("approximate-memory-usage")) > 0
            assert db.get_property("total-bytes") == "0"
            assert db.get_property("bogus") is None


class TestCompactionLog:
    def test_log_records_merges(self):
        import random

        with DB(MemStorage(), small_options()) as db:
            order = list(range(2500))
            random.Random(6).shuffle(order)
            for i in order:
                db.put(b"k-%05d" % i, b"v")
            log = db.compaction_log
            assert log, "expected at least one real compaction"
            for rec in log:
                assert rec["subtasks"] >= 1
                assert rec["input_bytes"] > 0
                assert rec["seconds"] > 0
                assert rec["procedure"] == "scp"
            text = db.get_property("compaction-log")
            assert "L0->L1" in text

    def test_log_is_bounded(self):
        with DB(MemStorage(), small_options()) as db:
            db._compaction_log_cap = 3
            for i in range(10):
                db._record_compaction({"level": 0, "inputs": 1, "outputs": 1,
                                       "subtasks": 1, "input_bytes": 1,
                                       "output_bytes": 1, "seconds": 0.1,
                                       "procedure": "scp"})
            assert len(db.compaction_log) == 3

    def test_empty_log_property(self):
        with DB(MemStorage(), small_options()) as db:
            assert db.get_property("compaction-log") == "(no compactions yet)"
