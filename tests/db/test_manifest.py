"""Unit tests for version edits and MANIFEST recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.manifest import (
    CURRENT_NAME,
    ManifestWriter,
    VersionEdit,
    read_current,
    recover_version,
    set_current,
)
from repro.devices import MemStorage
from repro.lsm.ikey import KIND_VALUE, encode_internal_key
from repro.lsm.options import Options
from repro.lsm.version import FileMetaData


def _ik(user, seq=1):
    return encode_internal_key(user, seq, KIND_VALUE)


def _meta(number, lo=b"a", hi=b"z", size=100):
    return FileMetaData(number, size, _ik(lo), _ik(hi))


class TestVersionEditEncoding:
    def test_roundtrip_all_fields(self):
        edit = VersionEdit(log_number=7, next_file_number=12, last_sequence=99)
        edit.add_file(0, _meta(3))
        edit.add_file(2, _meta(4, b"m", b"q", size=555))
        edit.delete_file(1, 2)
        decoded = VersionEdit.decode(edit.encode())
        assert decoded.log_number == 7
        assert decoded.next_file_number == 12
        assert decoded.last_sequence == 99
        assert [(lv, m.number, m.file_size) for lv, m in decoded.new_files] == [
            (0, 3, 100), (2, 4, 555)
        ]
        assert decoded.deleted_files == [(1, 2)]

    def test_empty_edit(self):
        decoded = VersionEdit.decode(VersionEdit().encode())
        assert decoded.log_number is None
        assert decoded.new_files == []

    def test_unknown_tag_rejected(self):
        from repro.codec.varint import encode_varint64

        with pytest.raises(ValueError):
            VersionEdit.decode(encode_varint64(99))

    @settings(max_examples=50)
    @given(
        log=st.one_of(st.none(), st.integers(min_value=0, max_value=10**6)),
        files=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=1, max_value=10**6),
                st.binary(min_size=1, max_size=8),
                st.binary(min_size=1, max_size=8),
            ),
            max_size=10,
        ),
    )
    def test_roundtrip_property(self, log, files):
        edit = VersionEdit(log_number=log)
        for level, number, lo, hi in files:
            if lo > hi:
                lo, hi = hi, lo
            edit.add_file(level, _meta(number, lo, hi or b"x"))
        decoded = VersionEdit.decode(edit.encode())
        assert decoded.log_number == log
        assert len(decoded.new_files) == len(files)
        for (lv_a, m_a), (lv_b, m_b) in zip(edit.new_files, decoded.new_files):
            assert lv_a == lv_b
            assert m_a.number == m_b.number
            assert m_a.smallest == m_b.smallest
            assert m_a.largest == m_b.largest


class TestApply:
    def test_apply_adds_and_removes(self):
        from repro.lsm.version import Version

        version = Version(Options())
        VersionEdit().add_file(1, _meta(1)).apply(version)
        assert version.num_files(1) == 1
        edit = VersionEdit()
        edit.delete_file(1, 1)
        edit.add_file(2, _meta(9))
        edit.apply(version)
        assert version.num_files(1) == 0
        assert version.num_files(2) == 1

    def test_apply_missing_delete_raises(self):
        from repro.lsm.version import Version

        version = Version(Options())
        with pytest.raises(KeyError):
            VersionEdit(deleted_files=[(1, 42)]).apply(version)


class TestCurrentAndRecovery:
    def test_current_roundtrip(self):
        storage = MemStorage()
        assert read_current(storage) is None
        set_current(storage, "MANIFEST-000001")
        assert read_current(storage) == "MANIFEST-000001"
        # Switch is atomic (tmp + rename): no tmp file is left.
        assert CURRENT_NAME + ".tmp" not in storage.list()

    def test_recover_fresh_directory(self):
        version, next_file, last_seq, log, name = recover_version(
            MemStorage(), Options()
        )
        assert version.total_bytes() == 0
        assert (next_file, last_seq, log, name) == (1, 0, None, None)

    def test_recover_replays_edit_sequence(self):
        storage = MemStorage()
        writer = ManifestWriter(storage, "MANIFEST-000001")
        writer.append(VersionEdit(next_file_number=5, last_sequence=10)  # repro: noqa[RA204]
                      .add_file(0, _meta(2)))
        writer.append(VersionEdit(log_number=4).add_file(1, _meta(3)))  # repro: noqa[RA204]
        edit3 = VersionEdit(next_file_number=9)
        edit3.delete_file(0, 2)
        writer.append(edit3, sync=True)
        writer.close()
        set_current(storage, "MANIFEST-000001")

        version, next_file, last_seq, log, name = recover_version(
            storage, Options()
        )
        assert name == "MANIFEST-000001"
        assert next_file == 9
        assert last_seq == 10
        assert log == 4
        assert version.num_files(0) == 0
        assert version.num_files(1) == 1
