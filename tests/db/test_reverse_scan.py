"""Tests for descending iteration (reverse scans)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import DB
from repro.devices import MemStorage
from repro.lsm import Options
from repro.lsm.blockfmt import Block, BlockBuilder
from repro.lsm.ikey import KIND_VALUE, encode_internal_key
from repro.lsm.memtable import MemTable
from repro.lsm.table_builder import TableBuilder
from repro.lsm.table_reader import Table


def small_options(**kw):
    defaults = dict(
        memtable_bytes=16 * 1024,
        sstable_bytes=8 * 1024,
        block_bytes=1024,
        level1_bytes=32 * 1024,
        level_multiplier=4,
        compression="lz77",
    )
    defaults.update(kw)
    return Options(**defaults)


def _ik(user, seq=1):
    return encode_internal_key(user, seq, KIND_VALUE)


class TestBlockReverse:
    def test_iter_reverse(self):
        builder = BlockBuilder(4)
        entries = [(b"k%02d" % i, b"v%d" % i) for i in range(20)]
        for k, v in entries:
            builder.add(k, v)
        block = Block(builder.finish())
        assert list(block.iter_reverse()) == entries[::-1]

    def test_seek_reverse(self):
        builder = BlockBuilder(4)
        for i in range(0, 20, 2):
            builder.add(b"k%02d" % i, b"")
        block = Block(builder.finish())
        got = [k for k, _ in block.seek_reverse(b"k09")]
        assert got == [b"k08", b"k06", b"k04", b"k02", b"k00"]

    def test_seek_reverse_inclusive(self):
        builder = BlockBuilder(4)
        builder.add(b"a", b"")
        builder.add(b"b", b"")
        block = Block(builder.finish())
        assert [k for k, _ in block.seek_reverse(b"b")] == [b"b", b"a"]


class TestTableReverse:
    def _table(self, n=200):
        storage = MemStorage()
        options = Options(block_bytes=512, compression="null")
        with storage.create("t") as f:
            b = TableBuilder(f, options)
            for i in range(n):
                b.add(_ik(b"key-%04d" % i), b"v%d" % i)
            b.finish()
        return Table(storage.open("t"), options)

    def test_iter_reverse_full(self):
        table = self._table()
        forward = list(table)
        assert list(table.iter_reverse()) == forward[::-1]

    def test_iter_reverse_from(self):
        table = self._table()
        probe = _ik(b"key-0050", 0)
        got = [k[:-8] for k, _ in table.iter_reverse_from(probe)]
        assert got == [b"key-%04d" % i for i in range(50, -1, -1)]

    def test_iter_reverse_from_past_end(self):
        table = self._table(10)
        got = list(table.iter_reverse_from(_ik(b"zzz", 0)))
        assert len(got) == 10


class TestMemtableReverse:
    def test_reverse_matches_forward(self):
        mt = MemTable()
        for i in range(100):
            mt.put(i + 1, b"k%03d" % (i * 7 % 100), b"v")
        assert list(mt.iter_reverse()) == list(mt)[::-1]

    def test_reverse_from(self):
        mt = MemTable()
        for i in range(10):
            mt.put(i + 1, b"k%02d" % i, b"v")
        probe = encode_internal_key(b"k04", 0, 0)
        got = [k[:-8] for k, _ in mt.iter_reverse_from(probe)]
        assert got == [b"k04", b"k03", b"k02", b"k01", b"k00"]


class TestDBScanReverse:
    def test_full_reverse(self):
        with DB(MemStorage(), small_options()) as db:
            import random

            order = list(range(800))
            random.Random(1).shuffle(order)
            for i in order:
                db.put(b"key-%04d" % i, b"v%d" % i)
            forward = list(db.scan())
            backward = list(db.scan_reverse())
            assert backward == forward[::-1]

    def test_window_reverse(self):
        with DB(MemStorage(), small_options()) as db:
            for i in range(100):
                db.put(b"k%03d" % i, b"v")
            got = [k for k, _ in db.scan_reverse(b"k010", b"k015")]
            assert got == [b"k014", b"k013", b"k012", b"k011", b"k010"]

    def test_reverse_sees_newest_version(self):
        with DB(MemStorage(), small_options()) as db:
            db.put(b"k", b"old")
            db.flush()
            db.put(b"k", b"new")
            assert list(db.scan_reverse()) == [(b"k", b"new")]

    def test_reverse_skips_tombstones(self):
        with DB(MemStorage(), small_options()) as db:
            db.put(b"a", b"1")
            db.put(b"b", b"2")
            db.flush()
            db.delete(b"b")
            assert list(db.scan_reverse()) == [(b"a", b"1")]

    def test_reverse_with_snapshot(self):
        with DB(MemStorage(), small_options()) as db:
            db.put(b"a", b"1")
            snap = db.snapshot()
            db.put(b"a", b"2")
            db.put(b"b", b"3")
            assert list(db.scan_reverse(snapshot=snap)) == [(b"a", b"1")]
            snap.release()

    def test_reverse_spans_all_levels(self):
        with DB(MemStorage(), small_options()) as db:
            import random

            order = list(range(2000))
            random.Random(8).shuffle(order)
            for i in order:
                db.put(b"key-%05d" % i, b"v%d" % i)
            # Data across memtable, L0, deeper levels.
            backward = [k for k, _ in db.scan_reverse()]
            assert backward == [b"key-%05d" % i for i in range(1999, -1, -1)]


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.integers(min_value=0, max_value=50),
            st.binary(max_size=10),
        ),
        max_size=150,
    ),
    lo=st.integers(min_value=0, max_value=50),
    hi=st.integers(min_value=0, max_value=50),
)
def test_reverse_scan_property(ops, lo, hi):
    """scan_reverse(start, end) == reversed(scan(start, end)) always."""
    if lo > hi:
        lo, hi = hi, lo
    start, end = b"key-%03d" % lo, b"key-%03d" % hi
    with DB(MemStorage(), small_options(memtable_bytes=2048)) as db:
        for op, keyid, value in ops:
            key = b"key-%03d" % keyid
            if op == "put":
                db.put(key, value)
            else:
                db.delete(key)
        forward = list(db.scan(start, end))
        backward = list(db.scan_reverse(start, end))
        assert backward == forward[::-1]
