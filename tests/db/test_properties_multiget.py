"""Coverage for DB.get_property and DB.multi_get.

Satellite of the server PR: these two are now exercised remotely (the
STATS opcode reads properties, clients batch point lookups), so their
edge cases — missing keys, snapshot reads, closed-DB errors — get
direct tests.
"""

import pytest

from repro.db import DB
from repro.devices import MemStorage
from repro.lsm import Options


SMALL = dict(
    memtable_bytes=4 * 1024,
    sstable_bytes=4 * 1024,
    level1_bytes=16 * 1024,
    level_multiplier=4,
)


@pytest.fixture()
def db():
    database = DB(MemStorage(), Options(**SMALL))
    yield database
    database.close()


class TestMultiGet:
    def test_order_preserving_with_missing_keys(self, db):
        db.put(b"a", b"1")
        db.put(b"c", b"3")
        result = db.multi_get([b"a", b"b", b"c", b"zz"])
        assert result == [b"1", None, b"3", None]

    def test_empty_key_list(self, db):
        assert db.multi_get([]) == []

    def test_sees_tombstones(self, db):
        db.put(b"k", b"v")
        db.delete(b"k")
        assert db.multi_get([b"k"]) == [None]

    def test_reads_through_flushed_tables(self, db):
        for i in range(300):
            db.put(b"key-%04d" % i, b"val-%d" % i)
        db.flush()
        assert db.stats.flushes >= 1
        keys = [b"key-0000", b"key-0123", b"key-9999"]
        assert db.multi_get(keys) == [b"val-0", b"val-123", None]

    def test_snapshot_read_ignores_later_writes(self, db):
        db.put(b"k1", b"old")
        with db.snapshot() as snap:
            db.put(b"k1", b"new")
            db.put(b"k2", b"born-later")
            assert db.multi_get([b"k1", b"k2"], snapshot=snap) == [b"old", None]
        # Without the snapshot the new state is visible.
        assert db.multi_get([b"k1", b"k2"]) == [b"new", b"born-later"]

    def test_closed_db_raises(self):
        db = DB(MemStorage(), Options(**SMALL))
        db.put(b"k", b"v")
        db.close()
        with pytest.raises(RuntimeError, match="closed"):
            db.multi_get([b"k"])


class TestGetProperty:
    def test_num_files_per_level(self, db):
        assert db.get_property("num-files-at-level0") == "0"
        for i in range(200):
            db.put(b"key-%04d" % i, b"x" * 16)
        db.flush()
        assert int(db.get_property("num-files-at-level0")) >= 0
        total = sum(
            int(db.get_property(f"num-files-at-level{lv}"))
            for lv in range(db.options.num_levels)
        )
        assert total >= 1

    def test_unknown_names_return_none(self, db):
        assert db.get_property("bogus") is None
        assert db.get_property("num-files-at-levelX") is None
        assert db.get_property("num-files-at-level99") is None

    def test_stats_and_memory_usage_track_writes(self, db):
        before = int(db.get_property("approximate-memory-usage"))
        db.put(b"key", b"value" * 10)
        after = int(db.get_property("approximate-memory-usage"))
        assert after > before
        assert "writes=1" in db.get_property("stats")

    def test_total_bytes_and_sstables_after_flush(self, db):
        for i in range(300):
            db.put(b"key-%04d" % i, b"v" * 32)
        db.flush()
        assert int(db.get_property("total-bytes")) > 0
        assert db.get_property("sstables")

    def test_compaction_log_lists_runs(self, db):
        for i in range(2000):
            db.put(b"key-%05d" % i, b"w" * 32)
        db.flush()
        db.compact_all()
        if db.stats.compactions - db.stats.trivial_moves > 0:
            assert "L0" in db.get_property("compaction-log") or "L1" in (
                db.get_property("compaction-log")
            )

    def test_closed_db_raises(self):
        db = DB(MemStorage(), Options(**SMALL))
        db.close()
        with pytest.raises(RuntimeError, match="closed"):
            db.get_property("stats")
