"""Tests for the dbtool CLI."""

import pytest

from repro.db import DB
from repro.devices import OSStorage
from repro.lsm import Options
from repro.tools.dbtool import main


@pytest.fixture()
def db_dir(tmp_path):
    path = str(tmp_path / "db")
    db = DB(OSStorage(path), Options(memtable_bytes=8 * 1024,
                                     sstable_bytes=8 * 1024,
                                     level1_bytes=32 * 1024,
                                     level_multiplier=4))
    for i in range(500):
        db.put(b"key-%04d" % i, b"value-%d" % i)
    db.flush()
    db.close()
    return path


def test_stats(db_dir, capsys):
    assert main(["stats", db_dir]) == 0
    out = capsys.readouterr().out
    assert "live entries: 500" in out
    assert "total table bytes" in out


def test_verify_ok(db_dir, capsys):
    assert main(["verify", db_dir]) == 0
    assert "OK" in capsys.readouterr().out


def test_verify_detects_corruption(db_dir, capsys):
    import os

    victim = next(
        f for f in sorted(os.listdir(db_dir)) if f.endswith(".sst")
    )
    path = os.path.join(db_dir, victim)
    with open(path, "rb") as f:
        data = bytearray(f.read())
    data[12] ^= 0xFF
    with open(path, "wb") as f:
        f.write(bytes(data))
    assert main(["verify", db_dir]) == 1
    assert "CORRUPT" in capsys.readouterr().out


def test_repair_roundtrip(db_dir, capsys):
    import os

    os.remove(os.path.join(db_dir, "CURRENT"))
    assert main(["repair", db_dir]) == 0
    assert "salvaged" in capsys.readouterr().out
    assert main(["verify", db_dir]) == 0


def test_dump_with_range_and_limit(db_dir, capsys):
    assert main(["dump", db_dir, "--start", "key-0100",
                 "--end", "key-0200", "--limit", "5"]) == 0
    captured = capsys.readouterr()
    lines = captured.out.strip().splitlines()
    assert len(lines) == 5
    assert lines[0].startswith("key-0100 =")
    assert "(5 entries)" in captured.err


def test_dump_keys_only(db_dir, capsys):
    assert main(["dump", db_dir, "--limit", "2", "--keys-only"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines == ["key-0000", "key-0001"]


def test_compact(db_dir, capsys):
    assert main(["compact", db_dir]) == 0
    assert "compactions" in capsys.readouterr().out
    assert main(["verify", db_dir]) == 0


def test_fsck_clean(db_dir, capsys):
    assert main(["fsck", db_dir]) == 0
    assert "OK" in capsys.readouterr().out


def test_fsck_detects_without_repair(db_dir, capsys):
    import os

    os.remove(os.path.join(db_dir, "CURRENT"))
    assert main(["fsck", db_dir]) == 1
    assert "--repair" in capsys.readouterr().out


def test_fsck_repairs_damaged_store(db_dir, capsys):
    import os

    os.remove(os.path.join(db_dir, "CURRENT"))
    assert main(["fsck", db_dir, "--repair"]) == 0
    out = capsys.readouterr().out
    assert "salvaged" in out
    assert "OK" in out
    assert main(["verify", db_dir]) == 0
    with DB(OSStorage(db_dir), Options()) as db:
        assert sum(1 for _ in db.items()) == 500


def test_fsck_unrepairable_exits_nonzero(tmp_path, capsys):
    # An empty directory has nothing to salvage, but repair builds a
    # valid empty store — so damage the rebuilt CURRENT's target.
    path = str(tmp_path / "broken")
    import os

    os.makedirs(path)
    with open(os.path.join(path, "CURRENT"), "w") as f:
        f.write("MANIFEST-nonexistent\n")
    assert main(["fsck", path]) == 1


def test_trace_with_benign_fault_plan(tmp_path, capsys):
    out = str(tmp_path / "trace.json")
    assert main([
        "trace", out, "--ops", "200", "--records", "200",
        "--fault-plan", '{"seed": 3}',
    ]) == 0
    assert "wrote" in capsys.readouterr().out


def test_trace_fault_plan_reaches_storage(tmp_path):
    from repro.devices.faults import TransientIOError

    # A hostile plan proves the flag wires into the write path: the
    # very first WAL append fails with the injected error.
    with pytest.raises(TransientIOError):
        main([
            "trace", str(tmp_path / "t.json"), "--ops", "50",
            "--records", "50", "--fault-plan", '{"fail_nth": {"write": 1}}',
        ])


def test_fault_plan_rejects_bad_json(tmp_path):
    with pytest.raises(ValueError):
        main([
            "trace", str(tmp_path / "t.json"),
            "--fault-plan", '{"crash_at": "bogus.point"}',
        ])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate", "/tmp/nope"])


def test_sst_inspect(db_dir, capsys):
    import os

    victim = next(f for f in sorted(os.listdir(db_dir)) if f.endswith(".sst"))
    assert main(["sst", db_dir, victim]) == 0
    out = capsys.readouterr().out
    assert "data blocks:" in out
    assert "key range:" in out
    assert "entries:" in out
