"""Unit and property tests for varint/fixed-width integer coding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codec.varint import (
    MAX_VARINT64_LEN,
    VarintError,
    decode_varint32,
    decode_varint64,
    encode_varint32,
    encode_varint64,
    get_fixed32,
    get_fixed64,
    put_fixed32,
    put_fixed64,
    varint_length,
)


class TestVarintKnownVectors:
    def test_zero_is_single_byte(self):
        assert encode_varint64(0) == b"\x00"

    def test_small_values_single_byte(self):
        assert encode_varint64(1) == b"\x01"
        assert encode_varint64(127) == b"\x7f"

    def test_128_uses_two_bytes(self):
        assert encode_varint64(128) == b"\x80\x01"

    def test_300_leb128(self):
        # Classic LEB128 example from the protobuf docs.
        assert encode_varint64(300) == b"\xac\x02"

    def test_max_uint64_is_ten_bytes(self):
        encoded = encode_varint64((1 << 64) - 1)
        assert len(encoded) == MAX_VARINT64_LEN

    def test_decode_at_offset(self):
        buf = b"\xffpad" + encode_varint64(300)
        value, pos = decode_varint64(buf, 4)
        assert value == 300
        assert pos == len(buf)


class TestVarintErrors:
    def test_negative_rejected(self):
        with pytest.raises(VarintError):
            encode_varint64(-1)

    def test_too_large_rejected(self):
        with pytest.raises(VarintError):
            encode_varint64(1 << 64)

    def test_varint32_range(self):
        with pytest.raises(VarintError):
            encode_varint32(1 << 32)

    def test_truncated_buffer(self):
        with pytest.raises(VarintError):
            decode_varint64(b"\x80\x80")

    def test_overlong_encoding(self):
        with pytest.raises(VarintError):
            decode_varint64(b"\x80" * 10 + b"\x02")

    def test_decode32_rejects_64bit_value(self):
        with pytest.raises(VarintError):
            decode_varint32(encode_varint64(1 << 40))

    def test_varint_length_negative(self):
        with pytest.raises(VarintError):
            varint_length(-5)


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_varint64_roundtrip(value):
    encoded = encode_varint64(value)
    decoded, pos = decode_varint64(encoded)
    assert decoded == value
    assert pos == len(encoded)


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_varint32_roundtrip(value):
    decoded, _ = decode_varint32(encode_varint32(value))
    assert decoded == value


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_varint_length_matches_encoding(value):
    assert varint_length(value) == len(encode_varint64(value))


@given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=20))
def test_varint_stream_roundtrip(values):
    buf = b"".join(encode_varint64(v) for v in values)
    pos = 0
    out = []
    for _ in values:
        v, pos = decode_varint64(buf, pos)
        out.append(v)
    assert out == values
    assert pos == len(buf)


class TestFixedWidth:
    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_fixed32_roundtrip(self, value):
        assert get_fixed32(put_fixed32(value)) == value

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_fixed64_roundtrip(self, value):
        assert get_fixed64(put_fixed64(value)) == value

    def test_fixed32_little_endian(self):
        assert put_fixed32(0x01020304) == b"\x04\x03\x02\x01"

    def test_fixed_at_offset(self):
        buf = b"xx" + put_fixed64(42)
        assert get_fixed64(buf, 2) == 42
