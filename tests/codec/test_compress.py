"""Tests for the LZ77, zlib, and null block codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.compress import (
    CODECS,
    CompressionError,
    get_codec,
    lz77_compress,
    lz77_decompress,
)


class TestLZ77Basics:
    def test_empty(self):
        assert lz77_decompress(lz77_compress(b"")) == b""

    def test_tiny_input_stays_literal(self):
        data = b"abc"
        assert lz77_decompress(lz77_compress(data)) == data

    def test_repetitive_input_compresses(self):
        data = b"keyvalue" * 512
        blob = lz77_compress(data)
        assert len(blob) < len(data) // 4
        assert lz77_decompress(blob) == data

    def test_incompressible_input_roundtrips(self):
        import random

        rng = random.Random(7)
        data = bytes(rng.randrange(256) for _ in range(4096))
        blob = lz77_compress(data)
        assert lz77_decompress(blob) == data
        # Incompressible data should not blow up by more than the
        # literal-tag overhead (~1 byte per 60).
        assert len(blob) < len(data) * 1.1

    def test_rle_overlapping_copy(self):
        # A long run forces overlapping copies (offset < length).
        data = b"A" * 1000
        blob = lz77_compress(data)
        assert lz77_decompress(blob) == data
        assert len(blob) < 64

    def test_kv_like_payload(self):
        entries = b"".join(
            b"user%08d=profile-field-value-%04d;" % (i, i % 100) for i in range(500)
        )
        blob = lz77_compress(entries)
        assert lz77_decompress(blob) == entries
        assert len(blob) < len(entries)

    def test_long_literal_runs(self):
        # Exercise the 1-byte and 2-byte extended literal-length forms.
        import random

        rng = random.Random(1)
        for size in (59, 60, 61, 255, 256, 257, 5000):
            data = bytes(rng.randrange(256) for _ in range(size))
            assert lz77_decompress(lz77_compress(data)) == data


class TestLZ77Errors:
    def test_empty_blob_rejected(self):
        with pytest.raises(CompressionError):
            lz77_decompress(b"")

    def test_truncated_literal(self):
        blob = lz77_compress(b"hello world, hello world")
        with pytest.raises(CompressionError):
            lz77_decompress(blob[: len(blob) - 3])

    def test_length_header_mismatch(self):
        blob = bytearray(lz77_compress(b"abcdef"))
        blob[0] = 50  # claim 50 bytes, decode 6
        with pytest.raises(CompressionError):
            lz77_decompress(bytes(blob))

    def test_copy_offset_out_of_window(self):
        # Hand-craft: header len=4, then a copy referring before start.
        blob = bytes([4, 0x02 | (3 << 2), 10, 0])  # copy len 4 offset 10
        with pytest.raises(CompressionError):
            lz77_decompress(blob)

    def test_bad_tag(self):
        blob = bytes([1, 0x03])
        with pytest.raises(CompressionError):
            lz77_decompress(blob)


@settings(max_examples=200)
@given(st.binary(max_size=4096))
def test_lz77_roundtrip_property(data):
    assert lz77_decompress(lz77_compress(data)) == data


@given(
    st.lists(
        st.sampled_from([b"alpha", b"beta", b"gamma", b"delta-key", b"\x00\xff"]),
        max_size=300,
    )
)
def test_lz77_roundtrip_structured(parts):
    data = b"|".join(parts)
    assert lz77_decompress(lz77_compress(data)) == data


class TestCodecRegistry:
    @pytest.mark.parametrize("name", sorted(CODECS))
    @given(data=st.binary(max_size=2048))
    @settings(max_examples=25)
    def test_all_codecs_roundtrip(self, name, data):
        codec = get_codec(name)
        assert codec.decompress(codec.compress(data)) == data

    def test_null_is_identity(self):
        codec = get_codec("null")
        assert codec.compress(b"xyz") == b"xyz"

    def test_zlib_rejects_garbage(self):
        with pytest.raises(CompressionError):
            get_codec("zlib").decompress(b"not zlib data")

    def test_unknown_codec(self):
        with pytest.raises(KeyError):
            get_codec("snappy-real")

    def test_lz77_beats_null_on_kv_data(self):
        data = b"".join(b"%016d" % i + b"v" * 100 for i in range(200))
        assert len(get_codec("lz77").compress(data)) < len(data)
