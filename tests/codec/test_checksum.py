"""Tests for CRC-32/CRC-32C and LevelDB-style masking."""

import zlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codec.checksum import (
    CHECKSUMMERS,
    crc32,
    crc32c_py,
    get_checksummer,
    mask_crc,
    unmask_crc,
)


class TestCRC32C:
    def test_empty(self):
        assert crc32c_py(b"") == 0

    def test_known_vector_123456789(self):
        # RFC 3720 / standard CRC-32C check value.
        assert crc32c_py(b"123456789") == 0xE3069283

    def test_known_vector_32_zeros(self):
        # iSCSI test vector: 32 bytes of zero.
        assert crc32c_py(b"\x00" * 32) == 0x8A9136AA

    def test_known_vector_32_ff(self):
        assert crc32c_py(b"\xff" * 32) == 0x62A8AB43

    def test_incremental_matches_oneshot(self):
        data = b"hello, compaction world" * 10
        split = len(data) // 3
        partial = crc32c_py(data[:split])
        assert crc32c_py(data[split:], partial) == crc32c_py(data)

    @given(st.binary(max_size=512))
    def test_in_32bit_range(self, data):
        assert 0 <= crc32c_py(data) <= 0xFFFFFFFF


class TestCRC32:
    @given(st.binary(max_size=512))
    def test_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data) & 0xFFFFFFFF


class TestMasking:
    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_mask_roundtrip(self, crc):
        assert unmask_crc(mask_crc(crc)) == crc

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_mask_changes_value(self, crc):
        # Masking must not be the identity (that's its whole point).
        assert mask_crc(crc) != crc or crc == unmask_crc(crc)

    def test_leveldb_mask_constant_behaviour(self):
        # mask(0) = rot17(0) + delta = delta
        assert mask_crc(0) == 0xA282EAD8


class TestChecksummer:
    @pytest.mark.parametrize("name", sorted(CHECKSUMMERS))
    def test_verify_accepts_valid(self, name):
        cs = get_checksummer(name)
        data = b"block payload"
        assert cs.verify(data, cs.masked(data))

    @pytest.mark.parametrize("name", sorted(CHECKSUMMERS))
    def test_verify_rejects_corruption(self, name):
        cs = get_checksummer(name)
        data = bytearray(b"block payload")
        masked = cs.masked(bytes(data))
        data[3] ^= 0x40
        assert not cs.verify(bytes(data), masked)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_checksummer("md5")
