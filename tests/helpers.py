"""Shared test helpers.

``corrupt_file`` is the canonical bit-flip seeder (it lives in
:mod:`repro.devices.faults` so the fsck/chaos tooling can use it too);
``small_options`` is the common tiny-engine configuration the db tests
use so a few hundred keys produce flushes and multi-level compactions.
"""

from repro.devices.faults import corrupt_file
from repro.lsm import Options

__all__ = ["corrupt_file", "small_options"]


def small_options(**kw):
    defaults = dict(
        memtable_bytes=16 * 1024,
        sstable_bytes=8 * 1024,
        block_bytes=1024,
        level1_bytes=32 * 1024,
        level_multiplier=4,
        compression="lz77",
    )
    defaults.update(kw)
    return Options(**defaults)
