"""SharedComputePool tests: bounded occupancy, metrics, lifecycle."""

import threading
import time

import pytest

from repro.cluster import SharedComputePool
from repro.obs import MetricsRegistry


def test_executes_and_returns_results():
    with SharedComputePool(2) as pool:
        futures = [pool.submit(lambda x: x * x, i) for i in range(20)]
        assert [f.result() for f in futures] == [i * i for i in range(20)]


def test_propagates_exceptions():
    def boom():
        raise ValueError("compute failed")

    with SharedComputePool(1) as pool:
        future = pool.submit(boom)
        with pytest.raises(ValueError, match="compute failed"):
            future.result()


def test_occupancy_never_exceeds_workers():
    metrics = MetricsRegistry()
    barrier = threading.Barrier(2, timeout=5)

    def task():
        try:
            barrier.wait()  # force two tasks to overlap
        except threading.BrokenBarrierError:
            pass
        time.sleep(0.01)

    with SharedComputePool(2, metrics=metrics) as pool:
        futures = [pool.submit(task) for _ in range(12)]
        for f in futures:
            f.result()
    snap = metrics.snapshot()
    assert snap["gauges"]["cluster.pool.workers"] == 2
    assert 1 <= snap["gauges"]["cluster.pool.max_active"] <= 2
    assert snap["counters"]["cluster.pool.tasks"] == 12
    assert snap["gauges"]["cluster.pool.active"] == 0
    assert snap["histograms"]["cluster.pool.exec_seconds"]["count"] == 12


def test_many_submitters_one_pool():
    # N "shards" submitting concurrently still share the worker cap.
    metrics = MetricsRegistry()
    pool = SharedComputePool(3, metrics=metrics)
    errors = []

    def shard_load():
        try:
            futures = [pool.submit(sum, range(1000)) for _ in range(25)]
            assert all(f.result() == 499500 for f in futures)
        except Exception as exc:  # pragma: no cover - assertion carrier
            errors.append(exc)

    threads = [
        threading.Thread(target=shard_load, name=f"shard-load-{i}")
        for i in range(6)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    pool.shutdown()
    assert not errors
    snap = metrics.snapshot()
    assert snap["counters"]["cluster.pool.tasks"] == 150
    assert snap["gauges"]["cluster.pool.max_active"] <= 3


def test_shutdown_is_idempotent_and_rejects_new_work():
    pool = SharedComputePool(1)
    pool.submit(lambda: None).result()
    pool.shutdown()
    pool.shutdown()
    with pytest.raises(RuntimeError, match="shut down"):
        pool.submit(lambda: None)


def test_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        SharedComputePool(0)
