"""Cross-shard cursor tests: global order, limits, tombstones, snapshots.

The merge is only correct if every global ordering property holds at
shard *boundaries* — exactly where a naive concatenation would break —
so the range-partitioned cases pick windows and limits that straddle
split keys on purpose.
"""

import random
import threading

import pytest

from repro.cluster import RangePartitioner, ShardedDB
from tests.helpers import small_options

SPLITS = [b"key250", b"key500", b"key750"]


def _fill(db, n=1000, prefix=b"key"):
    expected = {}
    for i in range(n):
        key = b"%s%03d" % (prefix, i)
        value = b"val%03d" % i
        db.put(key, value)
        expected[key] = value
    return expected


@pytest.fixture(params=["hash", "range"])
def cluster(request):
    if request.param == "hash":
        db = ShardedDB.in_memory(4, options=small_options())
    else:
        db = ShardedDB.in_memory(
            4,
            partitioner=RangePartitioner(SPLITS),
            options=small_options(),
        )
    yield db
    db.close()


class TestGlobalOrder:
    def test_forward_scan_strictly_ascending(self, cluster):
        expected = _fill(cluster)
        cluster.flush()
        pairs = list(cluster.scan())
        keys = [k for k, _ in pairs]
        assert keys == sorted(expected)
        assert dict(pairs) == expected

    def test_reverse_scan_strictly_descending(self, cluster):
        expected = _fill(cluster)
        pairs = list(cluster.scan_reverse())
        assert [k for k, _ in pairs] == sorted(expected, reverse=True)

    def test_range_window_straddling_shard_boundaries(self, cluster):
        _fill(cluster)
        # [key240, key760) covers parts of all four range shards.
        keys = [k for k, _ in cluster.scan(b"key240", b"key760")]
        assert keys == [b"key%03d" % i for i in range(240, 760)]
        rkeys = [k for k, _ in cluster.scan_reverse(b"key240", b"key760")]
        assert rkeys == list(reversed(keys))

    def test_interleaved_keys_across_shards(self, cluster):
        # Insert in shuffled order; the merge must still sort globally.
        order = list(range(1000))
        random.Random(3).shuffle(order)
        for i in order:
            cluster.put(b"key%03d" % i, b"v")
        keys = [k for k, _ in cluster.scan()]
        assert keys == [b"key%03d" % i for i in range(1000)]

    def test_cursor_count_and_iter(self, cluster):
        _fill(cluster, n=100)
        cursor = cluster.cursor()
        assert cursor.n_shards == 4
        assert cursor.count() == 100
        assert len(list(iter(cluster.cursor()))) == 100
        assert [k for k, _ in cluster.cursor().seek(b"key090")] == [
            b"key%03d" % i for i in range(90, 100)
        ]


class TestLimit:
    def test_limit_lands_exactly_on_shard_boundary(self):
        db = ShardedDB.in_memory(
            4, partitioner=RangePartitioner(SPLITS), options=small_options()
        )
        try:
            _fill(db)
            # shard 0 holds key000..key249: limits at 249/250/251 cross
            # the first split.
            for limit in (249, 250, 251):
                keys = [k for k, _ in db.scan(limit=limit)]
                assert keys == [b"key%03d" % i for i in range(limit)]
            rkeys = [k for k, _ in db.scan_reverse(limit=251)]
            assert rkeys == [b"key%03d" % i for i in range(999, 748, -1)]
        finally:
            db.close()

    def test_limit_larger_than_data(self, cluster):
        _fill(cluster, n=10)
        assert len(list(cluster.scan(limit=100))) == 10

    def test_limit_zero(self, cluster):
        _fill(cluster, n=10)
        assert list(cluster.scan(limit=0)) == []


class TestTombstones:
    def test_deletes_masked_across_all_shards(self, cluster):
        expected = _fill(cluster)
        # Delete a stripe that hits every shard of either partitioner.
        for i in range(0, 1000, 3):
            cluster.delete(b"key%03d" % i)
            expected.pop(b"key%03d" % i)
        cluster.flush()
        assert dict(cluster.scan()) == expected
        assert dict(cluster.scan_reverse()) == expected

    def test_delete_then_rewrite_is_visible(self, cluster):
        _fill(cluster, n=50)
        cluster.delete(b"key025")
        cluster.put(b"key025", b"reborn")
        pairs = dict(cluster.scan())
        assert pairs[b"key025"] == b"reborn"
        assert len(pairs) == 50

    def test_tombstones_survive_flush_boundaries(self, cluster):
        _fill(cluster, n=200)
        cluster.flush()
        for i in range(100):
            cluster.delete(b"key%03d" % i)
        cluster.flush()  # tombstones now in different tables than data
        keys = [k for k, _ in cluster.scan()]
        assert keys == [b"key%03d" % i for i in range(100, 200)]


class TestSnapshotIsolation:
    def test_scan_pinned_while_other_shards_mutate(self, cluster):
        expected = _fill(cluster)
        with cluster.snapshot() as snap:
            # Mutate every shard after pinning.
            for i in range(0, 1000, 7):
                cluster.put(b"key%03d" % i, b"mutated")
            for i in range(1, 1000, 7):
                cluster.delete(b"key%03d" % i)
            cluster.put(b"zzz-new", b"new")
            assert dict(cluster.scan(snapshot=snap)) == expected
            assert dict(cluster.scan_reverse(snapshot=snap)) == expected
        # Without the snapshot the mutations are visible.
        live = dict(cluster.scan())
        assert live[b"key000"] == b"mutated"
        assert b"key001" not in live
        assert live[b"zzz-new"] == b"new"

    def test_snapshot_stable_under_concurrent_writers(self, cluster):
        expected = _fill(cluster, n=400)
        stop = threading.Event()
        errors = []

        def writer(seed):
            rnd = random.Random(seed)
            try:
                while not stop.is_set():
                    i = rnd.randrange(400)
                    if rnd.random() < 0.3:
                        cluster.delete(b"key%03d" % i)
                    else:
                        cluster.put(b"key%03d" % i, b"noise%d" % seed)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(
                target=writer, args=(s,), name=f"cursor-writer-{s}"
            )
            for s in range(3)
        ]
        with cluster.snapshot() as snap:
            for t in threads:
                t.start()
            try:
                # Repeated scans under load must all see the pinned view.
                for _ in range(5):
                    assert dict(cluster.scan(snapshot=snap)) == expected
                    assert dict(
                        cluster.scan_reverse(snapshot=snap)
                    ) == expected
            finally:
                stop.set()
                for t in threads:
                    t.join()
        assert not errors
