"""Partitioner unit tests: routing, grouping, spec round-trips."""

import pytest

from repro.cluster import (
    HashPartitioner,
    RangePartitioner,
    partitioner_from_spec,
)


class TestHashPartitioner:
    def test_routes_within_range(self):
        p = HashPartitioner(4)
        for i in range(1000):
            assert 0 <= p.shard_of(b"key%d" % i) < 4

    def test_deterministic(self):
        a, b = HashPartitioner(8), HashPartitioner(8)
        keys = [b"k%d" % i for i in range(200)]
        assert [a.shard_of(k) for k in keys] == [b.shard_of(k) for k in keys]

    def test_reasonably_balanced(self):
        p = HashPartitioner(4)
        counts = [0] * 4
        for i in range(4000):
            counts[p.shard_of(b"key%06d" % i)] += 1
        for n in counts:
            assert 600 < n < 1400, counts

    def test_seed_changes_assignment(self):
        a, b = HashPartitioner(4, seed=0), HashPartitioner(4, seed=99)
        keys = [b"k%d" % i for i in range(100)]
        assert [a.shard_of(k) for k in keys] != [b.shard_of(k) for k in keys]

    def test_single_shard(self):
        p = HashPartitioner(1)
        assert p.shard_of(b"anything") == 0

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_spec_round_trip(self):
        p = HashPartitioner(4, seed=7)
        q = partitioner_from_spec(p.spec())
        assert q == p
        assert [q.shard_of(b"k%d" % i) for i in range(50)] == [
            p.shard_of(b"k%d" % i) for i in range(50)
        ]


class TestRangePartitioner:
    def test_split_semantics(self):
        # splits are the *first* key of the next shard.
        p = RangePartitioner([b"h", b"p"])
        assert p.n_shards == 3
        assert p.shard_of(b"a") == 0
        assert p.shard_of(b"g\xff") == 0
        assert p.shard_of(b"h") == 1
        assert p.shard_of(b"o") == 1
        assert p.shard_of(b"p") == 2
        assert p.shard_of(b"z") == 2

    def test_rejects_unsorted_splits(self):
        with pytest.raises(ValueError):
            RangePartitioner([b"p", b"h"])
        with pytest.raises(ValueError):
            RangePartitioner([b"h", b"h"])
        with pytest.raises(ValueError):
            RangePartitioner([])

    def test_spec_round_trip(self):
        p = RangePartitioner([b"b", b"\xff\x00"])
        q = partitioner_from_spec(p.spec())
        assert q == p
        assert q.shard_of(b"\xff\x01") == 2


class TestGroupKeys:
    def test_positions_cover_all_keys(self):
        p = HashPartitioner(4)
        keys = [b"key%03d" % i for i in range(57)]
        groups = p.group_keys(keys)
        seen = sorted(pos for positions in groups.values() for pos in positions)
        assert seen == list(range(len(keys)))

    def test_groups_agree_with_shard_of(self):
        p = RangePartitioner([b"key020", b"key040"])
        keys = [b"key%03d" % i for i in range(60)]
        for shard, positions in p.group_keys(keys).items():
            for pos in positions:
                assert p.shard_of(keys[pos]) == shard


def test_from_spec_rejects_unknown_kind():
    with pytest.raises(ValueError):
        partitioner_from_spec({"kind": "consistent-hash", "n_shards": 3})


def test_cross_kind_inequality():
    assert HashPartitioner(2) != RangePartitioner([b"m"])
