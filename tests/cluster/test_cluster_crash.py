"""Cluster crash consistency: power-cut ONE shard, recover only it.

Shards are independent failure domains: each owns its WAL, manifest,
and tables.  These tests arm a :class:`FaultPlan` crash point on shard
0's storage only, drive an interleaved acked workload across shards
until the simulated power cut fires, then reopen the cluster from
shard 0's frozen disk image.  The contract: no acknowledged write is
lost anywhere, recovery work (WAL replay) happens on the crashed
shard alone, and the healthy shard — flushed and closed gracefully —
reopens with nothing to replay.
"""

import random

import pytest

from repro.cluster import RangePartitioner, ShardedDB
from repro.db.verify import verify_db
from repro.devices import MemStorage
from repro.devices.faults import FaultPlan, FaultyStorage, SimulatedCrash
from repro.lsm import Options

#: (crash point, occurrences to skip before firing, whether reopen must
#: replay WAL records).  The skips land the cut mid-workload with a
#: part-filled memtable; ``flush.installed`` fires *after* the new
#: empty WAL is committed, so its recovery legitimately replays nothing
#: — the acked writes are already in the installed table.
SHARD_CRASH_POINTS = [
    ("wal.append", 40, True),
    ("wal.sync", 40, True),
    ("flush.table_written", 0, True),
    ("flush.installed", 0, False),
]

#: shard 0 owns keys < ``m``; shard 1 owns the rest.
PARTITIONER = RangePartitioner([b"m"])


def crash_options(**kw):
    defaults = dict(
        memtable_bytes=4096,
        sstable_bytes=4096,
        block_bytes=1024,
        level1_bytes=16384,
        level_multiplier=4,
        l0_compaction_trigger=2,
    )
    defaults.update(kw)
    return Options(**defaults)


def _open_cluster(root, shard_storages):
    return ShardedDB(
        root,
        shard_storages,
        partitioner=PARTITIONER,
        options=crash_options(),
        sync_every=1,
    )


def run_until_shard_crash(point, seed=0, baseline=60, workload=500,
                          crash_skip=0):
    """Two-phase harness, cluster edition.

    Returns ``(acked, root, frozen_shard0, healthy_shard1, crashed)``.
    """
    root = MemStorage()
    storages = [
        FaultyStorage(MemStorage(), FaultPlan()),
        FaultyStorage(MemStorage(), FaultPlan()),
    ]
    acked = {}

    db = _open_cluster(root, storages)
    for i in range(baseline):
        for k in (b"a-base-%04d" % i, b"z-base-%04d" % i):
            db.put(k, b"b-%d" % i)
            acked[k] = b"b-%d" % i
    db.close()

    # Arm ONLY shard 0; shard 1 keeps running unharmed.
    storages[0].arm(
        FaultPlan(seed=seed, crash_at=point, crash_skip=crash_skip)
    )
    crashed = False
    db = _open_cluster(root, storages)
    try:
        order = list(range(workload))
        random.Random(seed).shuffle(order)
        for i in order:
            # Interleave both shards so the cut lands mid-traffic.
            for k in (b"a-%04d" % i, b"z-%04d" % i):
                v = b"v-%d-%d" % (seed, i)
                db.put(k, v)
                acked[k] = v
        db.flush()
        db.close()
    except SimulatedCrash:
        crashed = True
        # The cut hit shard 0 only; shard 1 shuts down gracefully, so
        # its memtable reaches tables and its WAL is retired.
        db.shards[1].flush()
        db.shards[1].close()

    return acked, root, storages[0].frozen_storage(), storages[1], crashed


class TestShardCrashMatrix:
    @pytest.mark.parametrize("point,skip,expect_replay", SHARD_CRASH_POINTS)
    def test_no_acked_write_lost_cluster_wide(self, point, skip,
                                              expect_replay):
        acked, root, frozen0, healthy1, crashed = run_until_shard_crash(
            point, crash_skip=skip
        )
        assert crashed, f"workload never reached crash point {point}"

        db = _open_cluster(root, [frozen0, healthy1])
        try:
            for k, v in acked.items():
                assert db.get(k) == v, f"{point}: lost acked write {k!r}"
            # Recovery ran on the crashed shard only: shard 0 replayed
            # WAL records; shard 1 closed cleanly and has none.
            replayed0 = db.shards[0].obs.metrics.counter(
                "recovery.wal_records"
            ).value
            replayed1 = db.shards[1].obs.metrics.counter(
                "recovery.wal_records"
            ).value
            if expect_replay:
                assert replayed0 > 0, (
                    f"{point}: crashed shard replayed nothing"
                )
            assert replayed1 == 0, (
                f"{point}: healthy shard unexpectedly replayed "
                f"{replayed1} records"
            )
        finally:
            db.close()

    @pytest.mark.parametrize("point,skip,expect_replay", SHARD_CRASH_POINTS)
    def test_both_shard_images_verify_clean(self, point, skip,
                                            expect_replay):
        _, root, frozen0, healthy1, crashed = run_until_shard_crash(
            point, seed=3, crash_skip=skip
        )
        assert crashed
        db = _open_cluster(root, [frozen0, healthy1])
        db.close()
        assert verify_db(frozen0, crash_options()).ok
        assert verify_db(healthy1, crash_options()).ok

    def test_scan_after_recovery_is_globally_ordered(self):
        acked, root, frozen0, healthy1, crashed = run_until_shard_crash(
            "flush.installed", seed=5
        )
        assert crashed
        db = _open_cluster(root, [frozen0, healthy1])
        try:
            pairs = list(db.scan())
            keys = [k for k, _ in pairs]
            assert keys == sorted(keys)
            # acked ⟹ present.  The one in-flight write whose put never
            # returned may ALSO survive (it reached the WAL before the
            # cut) — allowed, so assert superset not equality.
            recovered = dict(pairs)
            for k, v in acked.items():
                assert recovered[k] == v
            assert len(recovered) <= len(acked) + 1
        finally:
            db.close()

    def test_healthy_shard_serves_during_peer_outage(self):
        """A crashed shard does not take the cluster's other shards
        down: the still-open shard 1 keeps serving its keyspace."""
        _, root, frozen0, healthy1, crashed = run_until_shard_crash(
            "wal.sync", seed=7
        )
        assert crashed
        # Reopen ONLY shard 1 as a plain single DB (its directory is a
        # complete, self-contained store).
        from repro.db import DB

        solo = DB(healthy1, crash_options())
        try:
            solo.put(b"z-post-outage", b"still-serving")
            assert solo.get(b"z-post-outage") == b"still-serving"
        finally:
            solo.close()
