"""ShardedDB facade tests: routing, persistence, pool, aggregation."""

import pytest

from repro.cluster import (
    ClusterConfigError,
    HashPartitioner,
    RangePartitioner,
    ShardedDB,
)
from repro.core.procedures import ProcedureSpec
from repro.lsm.wal import WriteBatch
from tests.helpers import small_options


@pytest.fixture
def cluster():
    db = ShardedDB.in_memory(4, options=small_options())
    yield db
    db.close()


class TestRouting:
    def test_put_get_delete_round_trip(self, cluster):
        for i in range(300):
            cluster.put(b"key%04d" % i, b"value%04d" % i)
        assert cluster.get(b"key0123") == b"value0123"
        cluster.delete(b"key0123")
        assert cluster.get(b"key0123") is None
        assert cluster.get(b"never-written") is None

    def test_keys_land_on_partitioner_shard(self, cluster):
        for i in range(100):
            key = b"key%04d" % i
            cluster.put(key, b"v")
            shard = cluster.shard_for_key(key)
            assert cluster.shards[shard].get(key) == b"v"
            for j, other in enumerate(cluster.shards):
                if j != shard:
                    assert other.get(key) is None

    def test_every_shard_receives_some_keys(self, cluster):
        for i in range(400):
            cluster.put(b"key%04d" % i, b"v")
        assert all(shard.stats.writes > 0 for shard in cluster.shards)

    def test_batch_split_per_shard(self, cluster):
        cluster.put(b"stale", b"old")
        # Count engine-level write() calls per shard.
        calls = {i: 0 for i in range(cluster.n_shards)}
        for i, shard in enumerate(cluster.shards):
            original = shard.write

            def counted(b, _i=i, _orig=original):
                calls[_i] += 1
                return _orig(b)

            shard.write = counted
        batch = WriteBatch()
        for i in range(50):
            batch.put(b"batch%03d" % i, b"bv%03d" % i)
        batch.delete(b"stale")
        cluster.write(batch)
        for i in range(50):
            assert cluster.get(b"batch%03d" % i) == b"bv%03d" % i
        assert cluster.get(b"stale") is None
        # One engine batch per touched shard, not one per op.
        touched = {
            cluster.shard_for_key(b"batch%03d" % i) for i in range(50)
        } | {cluster.shard_for_key(b"stale")}
        assert calls == {
            i: (1 if i in touched else 0) for i in range(cluster.n_shards)
        }

    def test_empty_batch_is_noop(self, cluster):
        cluster.write(WriteBatch())
        assert sum(s.stats.writes for s in cluster.shards) == 0

    def test_multi_get_order_preserved(self, cluster):
        for i in range(64):
            cluster.put(b"mg%02d" % i, b"val%02d" % i)
        keys = [b"mg%02d" % i for i in (63, 0, 17, 4)] + [b"absent"]
        assert cluster.multi_get(keys) == [
            b"val63", b"val00", b"val17", b"val04", None,
        ]
        assert cluster.multi_get([]) == []


class TestSnapshots:
    def test_cluster_snapshot_pins_all_shards(self, cluster):
        for i in range(40):
            cluster.put(b"snap%02d" % i, b"before")
        with cluster.snapshot() as snap:
            for i in range(40):
                cluster.put(b"snap%02d" % i, b"after")
            cluster.put(b"snap-new", b"x")
            assert cluster.get(b"snap07", snapshot=snap) == b"before"
            assert cluster.get(b"snap-new", snapshot=snap) is None
            assert cluster.multi_get(
                [b"snap00", b"snap39"], snapshot=snap
            ) == [b"before", b"before"]
        assert cluster.get(b"snap07") == b"after"

    def test_release_is_idempotent(self, cluster):
        snap = cluster.snapshot()
        cluster.release_snapshot(snap)
        snap.release()


class TestPersistence:
    def test_reopen_preserves_layout_and_data(self, tmp_path):
        path = str(tmp_path / "cluster")
        db = ShardedDB.open_path(
            path, n_shards=3, partitioner=HashPartitioner(3, seed=11),
            options=small_options(),
        )
        for i in range(200):
            db.put(b"persist%03d" % i, b"pv%03d" % i)
        db.flush()
        db.close()

        reopened = ShardedDB.open_path(path, options=small_options())
        try:
            assert reopened.n_shards == 3
            assert reopened.partitioner == HashPartitioner(3, seed=11)
            for i in range(200):
                assert reopened.get(b"persist%03d" % i) == b"pv%03d" % i
        finally:
            reopened.close()

    def test_reopen_with_wrong_shard_count_fails(self, tmp_path):
        path = str(tmp_path / "cluster")
        ShardedDB.open_path(path, n_shards=2, options=small_options()).close()
        with pytest.raises(ClusterConfigError, match="2 shards"):
            ShardedDB.open_path(path, n_shards=4)

    def test_reopen_with_wrong_partitioner_fails(self, tmp_path):
        path = str(tmp_path / "cluster")
        ShardedDB.open_path(path, n_shards=2, options=small_options()).close()
        with pytest.raises(ClusterConfigError, match="partitioner mismatch"):
            ShardedDB.open_path(
                path, n_shards=2, partitioner=HashPartitioner(2, seed=3)
            )

    def test_open_path_without_manifest_needs_n_shards(self, tmp_path):
        with pytest.raises(ClusterConfigError, match="pass n_shards"):
            ShardedDB.open_path(str(tmp_path / "fresh"))

    def test_partitioner_shard_count_must_match_storages(self):
        from repro.devices import MemStorage

        with pytest.raises(ClusterConfigError, match="covers 3 shards"):
            ShardedDB(
                MemStorage(),
                [MemStorage(), MemStorage()],
                partitioner=HashPartitioner(3),
            )


class TestSharedPool:
    def test_pipelined_spec_creates_capped_pool(self):
        db = ShardedDB.in_memory(
            4,
            options=small_options(),
            compaction_spec=ProcedureSpec.cppcp(2, subtask_bytes=4096),
        )
        try:
            assert db.pool is not None
            assert db.pool.workers == 2
            import random

            # Random key order: overlapping L0 runs force real merge
            # compactions (sequential keys would all trivial-move).
            rnd = random.Random(7)
            for _ in range(5000):
                db.put(b"pool%09d" % rnd.randrange(10**9),
                       bytes(rnd.randrange(256) for _ in range(4)) * 32)
            db.flush()
            db.compact_all()
            snap = db.metrics_snapshot()
            assert snap["counters"].get("cluster.pool.tasks", 0) > 0
            assert snap["gauges"]["cluster.pool.max_active"] <= 2
        finally:
            db.close()

    def test_pool_workers_override(self):
        db = ShardedDB.in_memory(
            2,
            options=small_options(),
            compaction_spec=ProcedureSpec.cppcp(4),
            pool_workers=1,
        )
        try:
            assert db.pool.workers == 1
        finally:
            db.close()

    def test_scp_spec_has_no_pool(self, cluster):
        assert cluster.pool is None


class TestAggregation:
    def test_stats_sum_over_shards(self, cluster):
        for i in range(120):
            cluster.put(b"agg%03d" % i, b"v")
        cluster.flush()
        total = cluster.stats
        assert total.writes == 120
        assert total.writes == sum(s.stats.writes for s in cluster.shards)
        assert total.flushes == sum(s.stats.flushes for s in cluster.shards)
        assert cluster.num_files(0) == sum(
            s.num_files(0) for s in cluster.shards
        )
        assert cluster.total_bytes() == sum(
            s.total_bytes() for s in cluster.shards
        )

    def test_shard_stats_shape(self, cluster):
        cluster.put(b"x", b"y")
        entries = cluster.shard_stats()
        assert [e["shard"] for e in entries] == [0, 1, 2, 3]
        assert sum(e["writes"] for e in entries) == 1
        assert all("write_stalled_now" in e for e in entries)

    def test_metrics_snapshot_has_shard_dimension(self, cluster):
        for i in range(200):
            cluster.put(b"met%03d" % i, b"v" * 32)
        cluster.flush()
        snap = cluster.metrics_snapshot()
        shard_keys = [
            k for k in snap["counters"] if k.startswith("cluster.shard")
        ]
        assert shard_keys, snap["counters"].keys()
        # Rollup: the bare name equals the sum of the per-shard values.
        name = shard_keys[0].split(".", 2)[2]
        rollup = sum(
            v
            for k, v in snap["counters"].items()
            if k.startswith("cluster.shard") and k.endswith("." + name)
        )
        assert snap["counters"][name] == rollup

    def test_get_property(self, cluster):
        cluster.put(b"p", b"q")
        cluster.flush()
        assert "shards=4" in cluster.get_property("cluster")
        assert cluster.get_property("total-bytes") == str(
            cluster.total_bytes()
        )
        assert cluster.get_property("num-files-at-level0") == str(
            cluster.num_files(0)
        )
        assert cluster.get_property("num-files-at-level999") is None
        assert cluster.get_property("no-such-property") is None
        assert cluster.get_property("quarantine") == "(none)"
        assert "writes=1" in cluster.get_property("stats")

    def test_describe_names_every_shard(self, cluster):
        text = cluster.describe()
        for i in range(4):
            assert f"[shard {i}]" in text


class TestStallRouting:
    def test_write_stalled_routes_by_key(self):
        db = ShardedDB.in_memory(
            3,
            partitioner=RangePartitioner([b"h", b"p"]),
            options=small_options(),
        )
        try:
            assert db.write_stalled() is False
            assert db.stalled_shards() == []
            # Force shard 1 (keys in [h, p)) to report a stall.
            db.shards[1].picker.write_stall = lambda version: True
            assert db.stalled_shards() == [1]
            assert db.write_stalled() is True
            assert db.write_stalled(keys=[b"aaa"]) is False
            assert db.write_stalled(keys=[b"mmm"]) is True
            assert db.write_stalled(keys=[b"zzz"]) is False
            assert db.write_stalled(keys=[b"aaa", b"mmm"]) is True
        finally:
            db.close()


class TestLifecycle:
    def test_close_idempotent_and_rejects_use(self, cluster):
        cluster.put(b"k", b"v")
        cluster.close()
        cluster.close()
        with pytest.raises(RuntimeError):
            cluster.put(b"k2", b"v2")

    def test_context_manager(self):
        with ShardedDB.in_memory(2, options=small_options()) as db:
            db.put(b"cm", b"1")
            assert db.get(b"cm") == b"1"

    def test_server_duck_surface(self, cluster):
        # The attributes KVServer relies on for cluster mode.
        assert cluster._background is False
        assert cluster._closed is False
        assert callable(cluster.write_stalled)
        assert callable(cluster.shard_stats)
        assert callable(cluster.metrics_snapshot)
        assert callable(cluster.wait_for_compactions)
