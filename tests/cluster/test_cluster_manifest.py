"""CLUSTER manifest tests: round-trip, corruption, layout validation."""

import json

import pytest

from repro.cluster import (
    CLUSTER_FILE,
    ClusterConfigError,
    ClusterManifest,
    HashPartitioner,
    RangePartitioner,
    shard_dir_name,
)
from repro.devices import MemStorage


def test_shard_dir_names():
    assert shard_dir_name(0) == "shard-00"
    assert shard_dir_name(7) == "shard-07"
    assert shard_dir_name(12) == "shard-12"


def test_round_trip_hash():
    root = MemStorage()
    m = ClusterManifest(4, HashPartitioner(4, seed=9).spec())
    m.save(root)
    loaded = ClusterManifest.load(root)
    assert loaded.n_shards == 4
    assert loaded.partitioner() == HashPartitioner(4, seed=9)
    assert loaded.shard_names() == [f"shard-{i:02d}" for i in range(4)]


def test_round_trip_range():
    root = MemStorage()
    splits = [b"\x00\xffbinary", b"zzz"]
    ClusterManifest(3, RangePartitioner(splits).spec()).save(root)
    assert ClusterManifest.load(root).partitioner() == RangePartitioner(splits)


def test_save_is_atomic_no_tmp_left():
    root = MemStorage()
    ClusterManifest(2, HashPartitioner(2).spec()).save(root)
    assert root.exists(CLUSTER_FILE)
    assert not root.exists(CLUSTER_FILE + ".tmp")


def test_resave_overwrites():
    root = MemStorage()
    ClusterManifest(2, HashPartitioner(2).spec()).save(root)
    ClusterManifest(2, HashPartitioner(2, seed=5).spec()).save(root)
    assert ClusterManifest.load(root).partitioner() == HashPartitioner(2, 5)


def test_load_missing_raises():
    with pytest.raises(ClusterConfigError, match="no CLUSTER"):
        ClusterManifest.load(MemStorage())


def _write_raw(root, blob: bytes) -> None:
    with root.create(CLUSTER_FILE) as f:
        f.append(blob)
        f.sync()


def test_load_rejects_bit_flip():
    root = MemStorage()
    ClusterManifest(2, HashPartitioner(2).spec()).save(root)
    with root.open(CLUSTER_FILE) as f:
        blob = bytearray(f.read_all())
    wrapper = json.loads(bytes(blob))
    wrapper["data"] = wrapper["data"].replace('"n_shards": 2', '"n_shards": 3')
    _write_raw(root, json.dumps(wrapper).encode())
    with pytest.raises(ClusterConfigError, match="checksum"):
        ClusterManifest.load(root)


def test_load_rejects_garbage():
    root = MemStorage()
    _write_raw(root, b"\x00\x01not json at all")
    with pytest.raises(ClusterConfigError, match="damaged"):
        ClusterManifest.load(root)


def test_load_rejects_future_format_version():
    root = MemStorage()
    m = ClusterManifest(2, HashPartitioner(2).spec(), format_version=99)
    m.save(root)
    with pytest.raises(ClusterConfigError, match="format_version"):
        ClusterManifest.load(root)


def test_validate_against():
    m = ClusterManifest(4, HashPartitioner(4).spec())
    m.validate_against(4, HashPartitioner(4))  # no raise
    with pytest.raises(ClusterConfigError, match="4 shards"):
        m.validate_against(2, HashPartitioner(2))
    with pytest.raises(ClusterConfigError, match="partitioner mismatch"):
        m.validate_against(4, HashPartitioner(4, seed=1))
    with pytest.raises(ClusterConfigError, match="partitioner mismatch"):
        m.validate_against(4, RangePartitioner([b"a", b"b", b"c"]))
