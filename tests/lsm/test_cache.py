"""Tests for the LRU block cache."""

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lsm.cache import LRUCache


class TestLRU:
    def test_put_get(self):
        c = LRUCache(4)
        c.put("a", 1)
        assert c.get("a") == 1

    def test_miss_returns_none(self):
        c = LRUCache(4)
        assert c.get("missing") is None
        assert c.stats.misses == 1

    def test_eviction_order(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("c", 3)  # evicts a
        assert c.get("a") is None
        assert c.get("b") == 2
        assert c.get("c") == 3
        assert c.stats.evictions == 1

    def test_get_refreshes_recency(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")  # refresh a
        c.put("c", 3)  # evicts b
        assert c.get("a") == 1
        assert c.get("b") is None

    def test_put_overwrites(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("a", 2)
        assert c.get("a") == 2
        assert len(c) == 1

    def test_zero_capacity_disables(self):
        c = LRUCache(0)
        c.put("a", 1)
        assert c.get("a") is None
        assert len(c) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_invalidate(self):
        c = LRUCache(4)
        c.put("a", 1)
        c.invalidate("a")
        assert c.get("a") is None
        c.invalidate("a")  # idempotent

    def test_clear(self):
        c = LRUCache(4)
        c.put("a", 1)
        c.clear()
        assert len(c) == 0

    def test_hit_rate(self):
        c = LRUCache(4)
        c.put("a", 1)
        c.get("a")
        c.get("b")
        assert c.stats.hit_rate() == 0.5
        assert LRUCache(4).stats.hit_rate() == 0.0

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 100)), max_size=200
        ),
        st.integers(min_value=1, max_value=8),
    )
    def test_capacity_never_exceeded(self, ops, capacity):
        c = LRUCache(capacity)
        for key, value in ops:
            c.put(key, value)
            assert len(c) <= capacity

    def test_thread_safety_smoke(self):
        c = LRUCache(64)
        errors = []

        def worker(base):
            try:
                for i in range(500):
                    c.put((base, i % 100), i)
                    c.get((base, (i * 7) % 100))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,), name=f"cache-worker-{t}")
            for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(c) <= 64
