"""Tests for merge/visibility iterator combinators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.ikey import (
    KIND_DELETE,
    KIND_VALUE,
    decode_internal_key,
    encode_internal_key,
    internal_compare,
)
from repro.lsm.iterators import drop_tombstones, merge_iterators, visible_entries


def _e(user, seq, value=b"", kind=KIND_VALUE):
    return (encode_internal_key(user, seq, kind), value)


class TestMerge:
    def test_merge_two_sources(self):
        a = [_e(b"a", 1), _e(b"c", 1)]
        b = [_e(b"b", 1), _e(b"d", 1)]
        merged = list(merge_iterators([iter(a), iter(b)]))
        users = [decode_internal_key(k)[0] for k, _ in merged]
        assert users == [b"a", b"b", b"c", b"d"]

    def test_merge_preserves_sequence_order_within_key(self):
        newer = [_e(b"k", 10, b"new")]
        older = [_e(b"k", 2, b"old")]
        merged = list(merge_iterators([iter(older), iter(newer)]))
        assert [v for _, v in merged] == [b"new", b"old"]

    def test_empty_sources(self):
        assert list(merge_iterators([iter([]), iter([])])) == []
        assert list(merge_iterators([])) == []

    def test_single_source_passthrough(self):
        a = [_e(b"x", 3), _e(b"y", 1)]
        assert list(merge_iterators([iter(a)])) == a

    @settings(max_examples=50)
    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.binary(min_size=1, max_size=6),
                    st.integers(min_value=0, max_value=1000),
                ),
                max_size=20,
            ),
            max_size=5,
        )
    )
    def test_merge_property_sorted_output(self, raw_sources):
        # Deduplicate (user, seq) globally — the engine never emits the
        # same internal key from two sources.
        seen = set()
        sources = []
        for src in raw_sources:
            entries = []
            for user, seq in src:
                if (user, seq) in seen:
                    continue
                seen.add((user, seq))
                entries.append(_e(user, seq))
            entries.sort(key=lambda kv: _SortKey(kv[0]))
            sources.append(iter(entries))
        merged = list(merge_iterators(sources))
        assert len(merged) == len(seen)
        for (ka, _), (kb, _) in zip(merged, merged[1:]):
            assert internal_compare(ka, kb) < 0


class _SortKey:
    def __init__(self, ikey):
        self.ikey = ikey

    def __lt__(self, other):
        return internal_compare(self.ikey, other.ikey) < 0


class TestVisibility:
    def test_newest_version_wins(self):
        stream = iter([_e(b"k", 9, b"v9"), _e(b"k", 5, b"v5"), _e(b"k", 1, b"v1")])
        out = list(visible_entries(stream))
        assert len(out) == 1
        assert out[0][1] == b"v9"

    def test_snapshot_hides_new_entries(self):
        stream = iter([_e(b"k", 9, b"v9"), _e(b"k", 5, b"v5")])
        out = list(visible_entries(stream, snapshot=6))
        assert [v for _, v in out] == [b"v5"]

    def test_snapshot_before_everything(self):
        stream = iter([_e(b"k", 9, b"v9")])
        assert list(visible_entries(stream, snapshot=3)) == []

    def test_tombstone_emitted_by_visible(self):
        stream = iter(
            [_e(b"k", 9, b"", KIND_DELETE), _e(b"k", 5, b"v5")]
        )
        out = list(visible_entries(stream))
        assert len(out) == 1
        assert decode_internal_key(out[0][0])[2] == KIND_DELETE

    def test_drop_tombstones(self):
        stream = iter(
            [
                _e(b"a", 9, b"", KIND_DELETE),
                _e(b"b", 5, b"vb"),
                _e(b"c", 3, b"", KIND_DELETE),
            ]
        )
        out = list(drop_tombstones(iter(stream)))
        assert [decode_internal_key(k)[0] for k, _ in out] == [b"b"]

    def test_multiple_keys_interleaved_versions(self):
        stream = iter(
            [
                _e(b"a", 4, b"a4"),
                _e(b"a", 2, b"a2"),
                _e(b"b", 3, b"b3"),
                _e(b"c", 9, b"c9"),
                _e(b"c", 1, b"c1"),
            ]
        )
        out = list(visible_entries(stream))
        assert [v for _, v in out] == [b"a4", b"b3", b"c9"]
