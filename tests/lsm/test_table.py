"""Tests for SSTable builder + reader (the full table format)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import MemStorage
from repro.lsm.cache import LRUCache
from repro.lsm.ikey import (
    KIND_VALUE,
    MAX_SEQUENCE,
    decode_internal_key,
    encode_internal_key,
    lookup_key,
)
from repro.lsm.options import Options
from repro.lsm.table_builder import (
    TableBuilder,
    shortest_separator,
    shortest_successor,
)
from repro.lsm.table_format import TableCorruption
from repro.lsm.table_reader import Table


def _ik(user: bytes, seq: int = 1) -> bytes:
    return encode_internal_key(user, seq, KIND_VALUE)


def _build_table(entries, options=None, storage=None, name="t.sst"):
    storage = storage or MemStorage()
    options = options or Options()
    with storage.create(name) as f:
        builder = TableBuilder(f, options)
        for ikey, value in entries:
            builder.add(ikey, value)
        builder.finish()
    return storage, options


def _open(storage, options, name="t.sst", cache=None):
    return Table(storage.open(name), options, cache=cache)


SMALL = [(_ik(b"key-%04d" % i), b"value-%d" % i) for i in range(100)]


class TestRoundtrip:
    def test_iterate_all(self):
        storage, options = _build_table(SMALL)
        table = _open(storage, options)
        assert list(table) == SMALL
        assert table.num_entries == len(SMALL)

    def test_multi_block_table(self):
        options = Options(block_bytes=256)  # force many blocks
        entries = [(_ik(b"key-%05d" % i), b"v" * 50) for i in range(500)]
        storage, _ = _build_table(entries, options)
        table = _open(storage, options)
        assert table.num_blocks() > 10
        assert list(table) == entries

    def test_empty_table(self):
        storage, options = _build_table([])
        table = _open(storage, options)
        assert list(table) == []
        assert table.get(lookup_key(b"x", MAX_SEQUENCE)) is None

    @pytest.mark.parametrize("compression", ["null", "lz77", "zlib"])
    def test_all_codecs(self, compression):
        options = Options(compression=compression, block_bytes=512)
        entries = [(_ik(b"key-%04d" % i), b"payload-%d" % i * 3) for i in range(200)]
        storage, _ = _build_table(entries, options)
        assert list(_open(storage, options)) == entries

    def test_incompressible_blocks_stored_raw(self):
        import random

        rng = random.Random(3)
        options = Options(compression="lz77", block_bytes=512)
        entries = [
            (_ik(b"k%04d" % i), bytes(rng.randrange(256) for _ in range(64)))
            for i in range(100)
        ]
        storage, _ = _build_table(entries, options)
        assert list(_open(storage, options)) == entries


class TestGet:
    def test_point_lookup(self):
        storage, options = _build_table(SMALL)
        table = _open(storage, options)
        hit = table.get(lookup_key(b"key-0042", MAX_SEQUENCE))
        assert hit is not None
        key, value = hit
        assert decode_internal_key(key)[0] == b"key-0042"
        assert value == b"value-42"

    def test_missing_key_bloom_rejects(self):
        storage, options = _build_table(SMALL)
        table = _open(storage, options)
        hit = table.get(lookup_key(b"nonexistent", MAX_SEQUENCE))
        assert hit is None

    def test_lookup_respects_snapshot_ordering(self):
        entries = [
            (encode_internal_key(b"k", 9, KIND_VALUE), b"v9"),
            (encode_internal_key(b"k", 5, KIND_VALUE), b"v5"),
            (encode_internal_key(b"k", 1, KIND_VALUE), b"v1"),
        ]
        storage, options = _build_table(entries)
        table = _open(storage, options)
        key, value = table.get(lookup_key(b"k", 6))
        assert decode_internal_key(key)[1] == 5
        assert value == b"v5"

    def test_get_between_blocks(self):
        # Disable the bloom filter: this exercises get()'s successor
        # semantics for a key that is absent but inside the key span.
        options = Options(block_bytes=128, bloom_bits_per_key=0)
        entries = [(_ik(b"key-%04d" % (i * 10)), b"v%d" % i) for i in range(100)]
        storage, _ = _build_table(entries, options)
        table = _open(storage, options)
        # A key that is absent but sorts between blocks.
        hit = table.get(lookup_key(b"key-0015", MAX_SEQUENCE))
        assert hit is not None
        assert decode_internal_key(hit[0])[0] == b"key-0020"

    def test_iter_from(self):
        storage, options = _build_table(SMALL)
        table = _open(storage, options)
        out = list(table.iter_from(lookup_key(b"key-0090", MAX_SEQUENCE)))
        assert len(out) == 10
        assert decode_internal_key(out[0][0])[0] == b"key-0090"

    @settings(max_examples=25)
    @given(st.integers(min_value=0, max_value=99))
    def test_every_key_findable(self, i):
        storage, options = _build_table(SMALL)
        table = _open(storage, options)
        hit = table.get(lookup_key(b"key-%04d" % i, MAX_SEQUENCE))
        assert hit is not None and hit[1] == b"value-%d" % i


class TestCacheIntegration:
    def test_second_read_hits_cache(self):
        cache = LRUCache(64)
        options = Options(block_bytes=256)
        entries = [(_ik(b"key-%04d" % i), b"v" * 30) for i in range(200)]
        storage, _ = _build_table(entries, options)
        table = _open(storage, options, cache=cache)
        table.get(lookup_key(b"key-0100", MAX_SEQUENCE))
        misses_after_first = cache.stats.misses
        table.get(lookup_key(b"key-0100", MAX_SEQUENCE))
        assert cache.stats.misses == misses_after_first
        assert cache.stats.hits >= 1


class TestCorruptionDetection:
    def test_flipped_data_byte_detected(self):
        storage, options = _build_table(SMALL)
        data = bytearray(storage.open("t.sst").read_all())
        data[10] ^= 0x01  # inside the first data block
        bad = MemStorage()
        with bad.create("t.sst") as f:
            f.append(bytes(data))
        table = Table(bad.open("t.sst"), options)
        with pytest.raises(TableCorruption):
            list(table)

    def test_bad_magic_rejected(self):
        storage, options = _build_table(SMALL)
        data = bytearray(storage.open("t.sst").read_all())
        data[-1] ^= 0xFF
        bad = MemStorage()
        with bad.create("t.sst") as f:
            f.append(bytes(data))
        with pytest.raises(TableCorruption):
            Table(bad.open("t.sst"), options)

    def test_truncated_file_rejected(self):
        bad = MemStorage()
        with bad.create("t.sst") as f:
            f.append(b"tiny")
        with pytest.raises(TableCorruption):
            Table(bad.open("t.sst"), Options())

    def test_paranoid_off_skips_verification(self):
        options = Options(compression="null", paranoid_checks=False)
        storage, _ = _build_table(SMALL, options)
        data = bytearray(storage.open("t.sst").read_all())
        # Flip a bit inside the first block's *value* region; with null
        # compression the block still parses, just with a wrong byte.
        data[30] ^= 0x01
        bad = MemStorage()
        with bad.create("t.sst") as f:
            f.append(bytes(data))
        list(Table(bad.open("t.sst"), options))  # should not raise


class TestSeparators:
    def test_separator_between_keys(self):
        a, b = _ik(b"apple"), _ik(b"cherry")
        sep = shortest_separator(a, b)
        from repro.lsm.ikey import internal_compare

        assert internal_compare(a, sep) <= 0
        assert internal_compare(sep, b) < 0
        assert len(sep) <= len(a)

    def test_prefix_case_falls_back(self):
        a, b = _ik(b"app"), _ik(b"apple")
        assert shortest_separator(a, b) == a

    def test_successor(self):
        from repro.lsm.ikey import internal_compare

        key = _ik(b"hello")
        succ = shortest_successor(key)
        assert internal_compare(key, succ) <= 0

    @given(
        st.binary(min_size=1, max_size=12),
        st.binary(min_size=1, max_size=12),
    )
    def test_separator_property(self, ua, ub):
        from repro.lsm.ikey import internal_compare

        if ua >= ub:
            ua, ub = ub, ua
        if ua == ub:
            return
        a, b = _ik(ua), _ik(ub)
        sep = shortest_separator(a, b)
        assert internal_compare(a, sep) <= 0
        assert internal_compare(sep, b) < 0


class TestBuilderErrors:
    def test_out_of_order_add(self):
        storage = MemStorage()
        with storage.create("t") as f:
            builder = TableBuilder(f)
            builder.add(_ik(b"b"), b"")
            with pytest.raises(ValueError):
                builder.add(_ik(b"a"), b"")

    def test_add_after_finish(self):
        storage = MemStorage()
        with storage.create("t") as f:
            builder = TableBuilder(f)
            builder.add(_ik(b"a"), b"")
            builder.finish()
            with pytest.raises(RuntimeError):
                builder.add(_ik(b"b"), b"")

    def test_double_finish(self):
        storage = MemStorage()
        with storage.create("t") as f:
            builder = TableBuilder(f)
            builder.finish()
            with pytest.raises(RuntimeError):
                builder.finish()

    def test_smallest_largest_tracked(self):
        storage = MemStorage()
        with storage.create("t") as f:
            builder = TableBuilder(f)
            for ikey, v in SMALL:
                builder.add(ikey, v)
            assert builder.smallest == SMALL[0][0]
            assert builder.largest == SMALL[-1][0]
            builder.finish()
