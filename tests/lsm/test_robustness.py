"""Fuzz robustness: decoders must fail *cleanly* on arbitrary bytes.

Every parser that consumes on-disk data (blocks, table footers, WAL
records, version edits, compressed payloads) must raise its documented
error type on garbage — never IndexError/KeyError/struct.error leaking
from internals, and never an infinite loop or wrong-but-silent result.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.compress import CompressionError, lz77_decompress
from repro.codec.varint import VarintError, decode_varint64
from repro.db.manifest import VersionEdit
from repro.lsm.blockfmt import Block, BlockCorruption
from repro.lsm.table_format import Footer, TableCorruption, decode_block_contents
from repro.lsm.wal import LogCorruption, LogReader
from repro.codec.checksum import get_checksummer


@settings(max_examples=300)
@given(st.binary(max_size=256))
def test_varint_decoder_total(data):
    try:
        value, pos = decode_varint64(data)
        assert 0 <= value < (1 << 64)
        assert 0 < pos <= len(data)
    except VarintError:
        pass


@settings(max_examples=300)
@given(st.binary(max_size=512))
def test_lz77_decoder_total(blob):
    try:
        lz77_decompress(blob)
    except CompressionError:
        pass


@settings(max_examples=300)
@given(st.binary(max_size=512))
def test_block_parser_total(data):
    try:
        block = Block(data)
        for _ in block:
            pass
        list(block.seek(b"m"))
    except BlockCorruption:
        pass


@settings(max_examples=200)
@given(st.binary(min_size=0, max_size=128))
def test_footer_decoder_total(data):
    try:
        Footer.decode(data)
    except TableCorruption:
        pass


@settings(max_examples=200)
@given(st.binary(max_size=512))
def test_block_contents_decoder_total(stored):
    cs = get_checksummer("crc32")
    try:
        decode_block_contents(stored, cs)
    except (TableCorruption, CompressionError):
        pass


@settings(max_examples=200)
@given(st.binary(max_size=2048))
def test_wal_reader_total(data):
    from repro.devices import MemStorage

    storage = MemStorage()
    with storage.create("wal") as f:
        f.append(data)
    try:
        list(LogReader(storage.open("wal")))
    except LogCorruption:
        pass


@settings(max_examples=200)
@given(st.binary(max_size=256))
def test_version_edit_decoder_total(blob):
    try:
        VersionEdit.decode(blob)
    except (ValueError, IndexError):
        # IndexError only via truncated key reads is unacceptable —
        # check it specifically:
        try:
            VersionEdit.decode(blob)
        except ValueError:
            pass
        except IndexError:
            pytest.fail("VersionEdit.decode leaked IndexError")


@settings(max_examples=100)
@given(st.binary(max_size=256), st.integers(min_value=0, max_value=40))
def test_write_batch_decoder_total(blob, pad):
    from repro.lsm.wal import WriteBatch

    try:
        WriteBatch.decode(blob + b"\x00" * pad)
    except ValueError:
        pass
