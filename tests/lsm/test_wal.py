"""Tests for the write-ahead log format and write batches."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import MemStorage
from repro.lsm.ikey import KIND_DELETE, KIND_VALUE
from repro.lsm.wal import (
    BLOCK_SIZE,
    HEADER_SIZE,
    LogCorruption,
    LogReader,
    LogWriter,
    WriteBatch,
)


def _write_records(storage, records, name="wal"):
    writer = LogWriter(storage.create(name))
    for rec in records:
        writer.add_record(rec)
    writer.close()


def _read_records(storage, name="wal", **kw):
    return list(LogReader(storage.open(name), **kw))


class TestLogRoundtrip:
    def test_single_small_record(self):
        s = MemStorage()
        _write_records(s, [b"hello"])
        assert _read_records(s) == [b"hello"]

    def test_many_records(self):
        s = MemStorage()
        records = [b"rec-%d" % i * (i % 7 + 1) for i in range(100)]
        _write_records(s, records)
        assert _read_records(s) == records

    def test_record_spanning_blocks(self):
        s = MemStorage()
        big = bytes(range(256)) * (BLOCK_SIZE // 128)  # ~2 blocks
        _write_records(s, [b"small", big, b"tail"])
        assert _read_records(s) == [b"small", big, b"tail"]

    def test_empty_record(self):
        s = MemStorage()
        _write_records(s, [b"", b"x", b""])
        assert _read_records(s) == [b"", b"x", b""]

    def test_record_exactly_filling_block(self):
        s = MemStorage()
        payload = b"a" * (BLOCK_SIZE - HEADER_SIZE)
        _write_records(s, [payload, b"next"])
        assert _read_records(s) == [payload, b"next"]

    def test_block_tail_padding(self):
        # Leave < HEADER_SIZE bytes in the block: writer must pad.
        s = MemStorage()
        first = b"x" * (BLOCK_SIZE - HEADER_SIZE - HEADER_SIZE - 3)
        _write_records(s, [first, b"second"])
        assert _read_records(s) == [first, b"second"]

    @settings(max_examples=30)
    @given(st.lists(st.binary(max_size=BLOCK_SIZE * 2), max_size=20))
    def test_roundtrip_property(self, records):
        s = MemStorage()
        _write_records(s, records)
        assert _read_records(s) == records


class TestLogFailures:
    def test_truncated_tail_tolerated(self):
        s = MemStorage()
        _write_records(s, [b"complete", b"this-one-gets-torn"])
        data = s.open("wal").read_all()
        torn = MemStorage()
        with torn.create("wal") as f:
            f.append(data[:-5])  # cut mid-payload
        assert _read_records(torn) == [b"complete"]

    def test_interior_corruption_detected(self):
        s = MemStorage()
        _write_records(s, [b"record-one", b"record-two"])
        data = bytearray(s.open("wal").read_all())
        data[HEADER_SIZE + 2] ^= 0xFF  # flip a byte in record one
        bad = MemStorage()
        with bad.create("wal") as f:
            f.append(bytes(data))
        with pytest.raises(LogCorruption):
            _read_records(bad)

    def test_corruption_ignored_without_verification(self):
        s = MemStorage()
        _write_records(s, [b"record-one"])
        data = bytearray(s.open("wal").read_all())
        data[HEADER_SIZE] ^= 0x01
        bad = MemStorage()
        with bad.create("wal") as f:
            f.append(bytes(data))
        recs = _read_records(bad, verify_checksums=False)
        assert len(recs) == 1


class TestWriteBatch:
    def test_encode_decode_roundtrip(self):
        batch = WriteBatch()
        batch.put(b"k1", b"v1").delete(b"k2").put(b"k3", b"")
        blob = batch.encode(sequence=42)
        decoded, seq = WriteBatch.decode(blob)
        assert seq == 42
        assert list(decoded) == [
            (KIND_VALUE, b"k1", b"v1"),
            (KIND_DELETE, b"k2", b""),
            (KIND_VALUE, b"k3", b""),
        ]

    def test_len_counts_ops(self):
        batch = WriteBatch().put(b"a", b"1").delete(b"b")
        assert len(batch) == 2

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            WriteBatch().put(b"", b"v")
        with pytest.raises(ValueError):
            WriteBatch().delete(b"")

    def test_non_bytes_rejected(self):
        with pytest.raises(TypeError):
            WriteBatch().put("str", b"v")
        with pytest.raises(TypeError):
            WriteBatch().delete(123)

    def test_decode_rejects_truncation(self):
        blob = WriteBatch().put(b"key", b"value").encode(1)
        with pytest.raises(ValueError):
            WriteBatch.decode(blob[:-2])

    def test_decode_rejects_trailing_garbage(self):
        blob = WriteBatch().put(b"key", b"value").encode(1)
        with pytest.raises(ValueError):
            WriteBatch.decode(blob + b"zz")

    def test_byte_size_upper_bounds_encoding(self):
        batch = WriteBatch()
        for i in range(20):
            batch.put(b"key-%d" % i, b"value-%d" % i)
        assert batch.byte_size() >= len(batch.encode(0))

    @given(
        st.lists(
            st.tuples(
                st.booleans(),
                st.binary(min_size=1, max_size=20),
                st.binary(max_size=40),
            ),
            max_size=30,
        ),
        st.integers(min_value=0, max_value=(1 << 56) - 1),
    )
    def test_roundtrip_property(self, ops, seq):
        batch = WriteBatch()
        for is_put, key, value in ops:
            if is_put:
                batch.put(key, value)
            else:
                batch.delete(key)
        decoded, got_seq = WriteBatch.decode(batch.encode(seq))
        assert got_seq == seq
        assert list(decoded) == list(batch)


class TestWALMemtableIntegration:
    def test_recovery_replays_into_memtable(self):
        """The DB recovery path: WAL records -> batches -> memtable."""
        from repro.lsm.memtable import MemTable

        s = MemStorage()
        writer = LogWriter(s.create("wal"))
        for i in range(10):
            batch = WriteBatch().put(b"key-%d" % i, b"val-%d" % i)
            writer.add_record(batch.encode(i * 2 + 1))
        writer.close()

        mt = MemTable()
        for record in LogReader(s.open("wal")):
            batch, base_seq = WriteBatch.decode(record)
            for offset, (kind, key, value) in enumerate(batch):
                mt.add(base_seq + offset, kind, key, value)
        for i in range(10):
            assert mt.get(b"key-%d" % i).value == b"val-%d" % i
