"""Tests for internal key encoding and ordering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lsm.ikey import (
    KIND_DELETE,
    KIND_VALUE,
    MAX_SEQUENCE,
    InternalKey,
    decode_internal_key,
    encode_internal_key,
    internal_compare,
    lookup_key,
    pack_trailer,
    unpack_trailer,
)

keys = st.binary(min_size=1, max_size=24)
seqs = st.integers(min_value=0, max_value=MAX_SEQUENCE)
kinds = st.sampled_from([KIND_DELETE, KIND_VALUE])


class TestEncoding:
    @given(keys, seqs, kinds)
    def test_roundtrip(self, key, seq, kind):
        assert decode_internal_key(encode_internal_key(key, seq, kind)) == (
            key,
            seq,
            kind,
        )

    @given(seqs, kinds)
    def test_trailer_roundtrip(self, seq, kind):
        assert unpack_trailer(pack_trailer(seq, kind)) == (seq, kind)

    def test_sequence_out_of_range(self):
        with pytest.raises(ValueError):
            pack_trailer(MAX_SEQUENCE + 1, KIND_VALUE)
        with pytest.raises(ValueError):
            pack_trailer(-1, KIND_VALUE)

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            pack_trailer(0, 7)

    def test_too_short_key(self):
        with pytest.raises(ValueError):
            decode_internal_key(b"short")


class TestOrdering:
    def test_user_key_ascending(self):
        a = encode_internal_key(b"aaa", 5, KIND_VALUE)
        b = encode_internal_key(b"bbb", 5, KIND_VALUE)
        assert internal_compare(a, b) < 0
        assert internal_compare(b, a) > 0

    def test_sequence_descending_within_user_key(self):
        newer = encode_internal_key(b"k", 10, KIND_VALUE)
        older = encode_internal_key(b"k", 3, KIND_VALUE)
        assert internal_compare(newer, older) < 0  # newer sorts first

    def test_equal_keys(self):
        a = encode_internal_key(b"k", 7, KIND_DELETE)
        assert internal_compare(a, a) == 0

    def test_delete_sorts_after_value_same_seq(self):
        # kind packs into the trailer's low byte: VALUE(1) > DELETE(0),
        # and larger trailer sorts first.
        val = encode_internal_key(b"k", 7, KIND_VALUE)
        dele = encode_internal_key(b"k", 7, KIND_DELETE)
        assert internal_compare(val, dele) < 0

    def test_user_key_prefix_ordering(self):
        # "ab" < "abc" as user keys regardless of trailers.
        a = encode_internal_key(b"ab", 1, KIND_VALUE)
        b = encode_internal_key(b"abc", 999, KIND_VALUE)
        assert internal_compare(a, b) < 0

    @given(keys, keys, seqs, seqs)
    def test_compare_matches_decoded_semantics(self, ka, kb, sa, sb):
        a = encode_internal_key(ka, sa, KIND_VALUE)
        b = encode_internal_key(kb, sb, KIND_VALUE)
        expected = -1 if (ka, -sa) < (kb, -sb) else (1 if (ka, -sa) > (kb, -sb) else 0)
        assert internal_compare(a, b) == expected

    @given(st.lists(st.tuples(keys, seqs, kinds), min_size=2, max_size=30))
    def test_internalkey_class_sort_agrees(self, triples):
        encoded = [encode_internal_key(*t) for t in triples]
        by_compare = sorted(
            encoded, key=lambda e: _CmpWrap(e)
        )
        by_class = [
            ik.encode() for ik in sorted(InternalKey.decode(e) for e in encoded)
        ]
        assert by_compare == by_class


class _CmpWrap:
    def __init__(self, e):
        self.e = e

    def __lt__(self, other):
        return internal_compare(self.e, other.e) < 0


class TestLookupKey:
    def test_lookup_sorts_before_older_entries(self):
        lk = lookup_key(b"k", 100)
        older = encode_internal_key(b"k", 50, KIND_VALUE)
        newer = encode_internal_key(b"k", 200, KIND_VALUE)
        assert internal_compare(lk, older) < 0  # lookup finds the ≤100 entry
        assert internal_compare(newer, lk) < 0  # >snapshot entries sort before
