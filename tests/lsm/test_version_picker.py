"""Tests for level metadata (Version) and compaction picking."""

import pytest

from repro.lsm.ikey import KIND_VALUE, encode_internal_key
from repro.lsm.options import Options
from repro.lsm.picker import CompactionPicker
from repro.lsm.version import FileMetaData, Version


def _ik(user: bytes, seq: int = 1) -> bytes:
    return encode_internal_key(user, seq, KIND_VALUE)


def _meta(number, lo, hi, size=1024):
    return FileMetaData(number, size, _ik(lo), _ik(hi))


def _options(**kw):
    defaults = dict(level1_bytes=10 * 1024, level_multiplier=10)
    defaults.update(kw)
    return Options(**defaults)


class TestVersion:
    def test_add_and_query(self):
        v = Version(_options())
        v.add_file(1, _meta(1, b"a", b"m"))
        v.add_file(1, _meta(2, b"n", b"z"))
        assert v.num_files(1) == 2
        assert v.level_bytes(1) == 2048
        v.check_invariants()

    def test_ordered_insert_in_level(self):
        v = Version(_options())
        v.add_file(1, _meta(2, b"n", b"z"))
        v.add_file(1, _meta(1, b"a", b"m"))
        assert [m.number for m in v.files[1]] == [1, 2]

    def test_l0_keeps_arrival_order(self):
        v = Version(_options())
        v.add_file(0, _meta(5, b"a", b"z"))
        v.add_file(0, _meta(6, b"a", b"z"))
        assert [m.number for m in v.files[0]] == [5, 6]

    def test_remove_file(self):
        v = Version(_options())
        v.add_file(1, _meta(1, b"a", b"m"))
        removed = v.remove_file(1, 1)
        assert removed.number == 1
        with pytest.raises(KeyError):
            v.remove_file(1, 1)

    def test_level_out_of_range(self):
        v = Version(_options())
        with pytest.raises(ValueError):
            v.add_file(99, _meta(1, b"a", b"b"))

    def test_files_for_get_order(self):
        v = Version(_options())
        v.add_file(0, _meta(1, b"a", b"z"))
        v.add_file(0, _meta(2, b"a", b"z"))
        v.add_file(1, _meta(3, b"a", b"m"))
        v.add_file(2, _meta(4, b"a", b"m"))
        hits = v.files_for_get(b"c")
        # L0 newest first, then one file per level.
        assert [(lv, m.number) for lv, m in hits] == [(0, 2), (0, 1), (1, 3), (2, 4)]

    def test_files_for_get_skips_nonoverlapping(self):
        v = Version(_options())
        v.add_file(1, _meta(1, b"a", b"c"))
        v.add_file(1, _meta(2, b"x", b"z"))
        hits = v.files_for_get(b"m")
        assert hits == []

    def test_overlapping_files(self):
        v = Version(_options())
        v.add_file(1, _meta(1, b"a", b"f"))
        v.add_file(1, _meta(2, b"g", b"p"))
        v.add_file(1, _meta(3, b"q", b"z"))
        hits = v.overlapping_files(1, b"e", b"h")
        assert [m.number for m in hits] == [1, 2]
        assert len(v.overlapping_files(1, None, None)) == 3

    def test_invariant_violation_detected(self):
        v = Version(_options())
        v.files[1] = [_meta(1, b"a", b"m"), _meta(2, b"g", b"z")]
        with pytest.raises(AssertionError):
            v.check_invariants()

    def test_describe(self):
        v = Version(_options())
        assert v.describe() == "(empty)"
        v.add_file(1, _meta(7, b"a", b"b"))
        assert "L1" in v.describe() and "#7" in v.describe()


class TestPickerL0:
    def test_no_compaction_when_quiet(self):
        opts = _options(l0_compaction_trigger=4)
        picker = CompactionPicker(opts)
        v = Version(opts)
        v.add_file(0, _meta(1, b"a", b"m"))
        assert picker.pick(v) is None
        assert not picker.needs_compaction(v)

    def test_l0_trigger_by_file_count(self):
        opts = _options(l0_compaction_trigger=2)
        picker = CompactionPicker(opts)
        v = Version(opts)
        v.add_file(0, _meta(1, b"a", b"m"))
        v.add_file(0, _meta(2, b"d", b"q"))
        task = picker.pick(v)
        assert task is not None and task.level == 0
        assert {m.number for m in task.inputs_upper} == {1, 2}

    def test_l0_pulls_in_transitive_overlaps(self):
        opts = _options(l0_compaction_trigger=3)
        picker = CompactionPicker(opts)
        v = Version(opts)
        v.add_file(0, _meta(1, b"a", b"e"))
        v.add_file(0, _meta(2, b"d", b"k"))
        v.add_file(0, _meta(3, b"j", b"p"))
        task = picker.pick(v)
        assert {m.number for m in task.inputs_upper} == {1, 2, 3}

    def test_l0_includes_overlapping_l1(self):
        opts = _options(l0_compaction_trigger=1)
        picker = CompactionPicker(opts)
        v = Version(opts)
        v.add_file(0, _meta(1, b"d", b"h"))
        v.add_file(1, _meta(2, b"a", b"e"))
        v.add_file(1, _meta(3, b"x", b"z"))
        task = picker.pick(v)
        assert [m.number for m in task.inputs_lower] == [2]


class TestPickerLevels:
    def test_size_trigger(self):
        opts = _options(level1_bytes=1000)
        picker = CompactionPicker(opts)
        v = Version(opts)
        v.add_file(1, _meta(1, b"a", b"m", size=600))
        v.add_file(1, _meta(2, b"n", b"z", size=600))
        task = picker.pick(v)
        assert task is not None and task.level == 1
        assert len(task.inputs_upper) == 1

    def test_round_robin_pointer(self):
        opts = _options(level1_bytes=100)
        picker = CompactionPicker(opts)
        v = Version(opts)
        v.add_file(1, _meta(1, b"a", b"f", size=200))
        v.add_file(1, _meta(2, b"g", b"p", size=200))
        first = picker.pick(v)
        assert first.inputs_upper[0].number == 1
        second = picker.pick(v)
        assert second.inputs_upper[0].number == 2
        third = picker.pick(v)  # wraps
        assert third.inputs_upper[0].number == 1

    def test_trivial_move_detected(self):
        opts = _options(level1_bytes=100)
        picker = CompactionPicker(opts)
        v = Version(opts)
        v.add_file(1, _meta(1, b"a", b"f", size=200))
        task = picker.pick(v)
        assert task.is_trivial_move()

    def test_overlap_disables_trivial_move(self):
        opts = _options(level1_bytes=100)
        picker = CompactionPicker(opts)
        v = Version(opts)
        v.add_file(1, _meta(1, b"a", b"f", size=200))
        v.add_file(2, _meta(2, b"c", b"d", size=50))
        task = picker.pick(v)
        assert not task.is_trivial_move()
        assert task.input_bytes() == 250

    def test_key_range_user(self):
        opts = _options(level1_bytes=100)
        picker = CompactionPicker(opts)
        v = Version(opts)
        v.add_file(1, _meta(1, b"d", b"f", size=200))
        v.add_file(2, _meta(2, b"a", b"e", size=50))
        task = picker.pick(v)
        assert task.key_range_user() == (b"a", b"f")

    def test_write_stall(self):
        opts = _options(l0_stop_writes_trigger=3)
        picker = CompactionPicker(opts)
        v = Version(opts)
        for i in range(3):
            v.add_file(0, _meta(i, b"a", b"z"))
        assert picker.write_stall(v)

    def test_deepest_level_never_picked_as_source(self):
        opts = _options(level1_bytes=1, num_levels=3)
        picker = CompactionPicker(opts)
        v = Version(opts)
        # Oversize the bottom level: still no compaction from it.
        v.add_file(2, _meta(1, b"a", b"z", size=10**9))
        assert picker.pick(v) is None
