"""Tests for the prefix-compressed block format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.blockfmt import Block, BlockBuilder, BlockCorruption


def _build(entries, restart_interval=16):
    builder = BlockBuilder(restart_interval)
    for k, v in entries:
        builder.add(k, v)
    return builder.finish()


class TestBuilder:
    def test_empty_block(self):
        data = BlockBuilder().finish()
        block = Block(data)
        assert list(block) == []
        assert block.first_key() is None

    def test_single_entry(self):
        block = Block(_build([(b"key", b"value")]))
        assert list(block) == [(b"key", b"value")]

    def test_out_of_order_rejected(self):
        builder = BlockBuilder()
        builder.add(b"b", b"")
        with pytest.raises(ValueError):
            builder.add(b"a", b"")

    def test_duplicate_rejected(self):
        builder = BlockBuilder()
        builder.add(b"a", b"")
        with pytest.raises(ValueError):
            builder.add(b"a", b"")

    def test_invalid_restart_interval(self):
        with pytest.raises(ValueError):
            BlockBuilder(0)

    def test_prefix_compression_shrinks(self):
        shared = [(b"user-common-prefix-%04d" % i, b"v") for i in range(100)]
        distinct = [(bytes([i]) * 23, b"v") for i in range(100)]
        assert len(_build(shared)) < len(_build(distinct))

    def test_reset_reuses_builder(self):
        builder = BlockBuilder()
        builder.add(b"z", b"1")
        builder.reset()
        assert builder.empty
        builder.add(b"a", b"2")  # would be out of order without reset
        block = Block(builder.finish())
        assert list(block) == [(b"a", b"2")]

    def test_size_estimate_matches_finish(self):
        builder = BlockBuilder(4)
        for i in range(50):
            builder.add(b"key-%04d" % i, b"val-%d" % i)
        assert builder.current_size_estimate() == len(builder.finish())

    def test_restart_points_created(self):
        block = Block(_build([(b"%04d" % i, b"") for i in range(64)], 16))
        assert block.num_restarts() == 4


class TestSeek:
    ENTRIES = [(b"key-%04d" % i, b"val-%d" % i) for i in range(0, 200, 2)]

    def test_seek_exact(self):
        block = Block(_build(self.ENTRIES))
        hits = list(block.seek(b"key-0100"))
        assert hits[0] == (b"key-0100", b"val-100")
        assert len(hits) == 50

    def test_seek_between_keys(self):
        block = Block(_build(self.ENTRIES))
        hits = list(block.seek(b"key-0101"))  # odd: not present
        assert hits[0][0] == b"key-0102"

    def test_seek_before_first(self):
        block = Block(_build(self.ENTRIES))
        assert next(iter(block.seek(b"")))[0] == b"key-0000"

    def test_seek_past_last(self):
        block = Block(_build(self.ENTRIES))
        assert list(block.seek(b"zzz")) == []

    @settings(max_examples=50)
    @given(st.binary(max_size=10))
    def test_seek_matches_linear_scan(self, target):
        block = Block(_build(self.ENTRIES))
        expected = [(k, v) for k, v in self.ENTRIES if k >= target]
        assert list(block.seek(target)) == expected

    @given(
        st.lists(st.binary(min_size=1, max_size=12), min_size=1, max_size=60, unique=True),
        st.integers(min_value=1, max_value=8),
    )
    def test_roundtrip_property(self, keys, restart_interval):
        entries = [(k, b"v:" + k) for k in sorted(keys)]
        block = Block(_build(entries, restart_interval))
        assert list(block) == entries


class TestCorruption:
    def test_too_short(self):
        with pytest.raises(BlockCorruption):
            Block(b"ab")

    def test_bad_restart_count(self):
        data = _build([(b"a", b"1")])
        # Overwrite the restart count with an absurd value.
        bad = data[:-4] + b"\xff\xff\xff\x7f"
        with pytest.raises(BlockCorruption):
            Block(bad)

    def test_entry_overrun_detected(self):
        data = bytearray(_build([(b"abcdef", b"payload")]))
        data[2] = 200  # inflate value_len varint
        with pytest.raises(BlockCorruption):
            list(Block(bytes(data)))

    def test_custom_comparator_ordering(self):
        # Reverse-order comparator accepts descending keys.
        def rev(a, b):
            return (a < b) - (a > b)
        builder = BlockBuilder(4, compare=rev)
        keys = [b"c", b"b", b"a"]
        for k in keys:
            builder.add(k, b"")
        block = Block(builder.finish(), compare=rev)
        assert [k for k, _ in block] == keys
        assert [k for k, _ in block.seek(b"b")] == [b"b", b"a"]
