"""Tests for the skiplist memtable."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.ikey import KIND_VALUE, decode_internal_key, encode_internal_key
from repro.lsm.memtable import MemTable


class TestBasics:
    def test_empty(self):
        mt = MemTable()
        assert len(mt) == 0
        assert not mt.get(b"anything").found
        assert mt.smallest_key() is None
        assert mt.largest_key() is None

    def test_put_get(self):
        mt = MemTable()
        mt.put(1, b"alpha", b"1")
        mt.put(2, b"beta", b"2")
        assert mt.get(b"alpha").value == b"1"
        assert mt.get(b"beta").value == b"2"
        assert not mt.get(b"gamma").found

    def test_overwrite_newest_wins(self):
        mt = MemTable()
        mt.put(1, b"k", b"old")
        mt.put(2, b"k", b"new")
        assert mt.get(b"k").value == b"new"

    def test_delete_shadows_put(self):
        mt = MemTable()
        mt.put(1, b"k", b"v")
        mt.delete(2, b"k")
        result = mt.get(b"k")
        assert result.found and result.deleted
        assert result.value is None

    def test_put_after_delete(self):
        mt = MemTable()
        mt.put(1, b"k", b"v1")
        mt.delete(2, b"k")
        mt.put(3, b"k", b"v2")
        result = mt.get(b"k")
        assert result.found and not result.deleted
        assert result.value == b"v2"

    def test_snapshot_reads_see_past(self):
        mt = MemTable()
        mt.put(1, b"k", b"v1")
        mt.put(5, b"k", b"v5")
        assert mt.get(b"k", snapshot=1).value == b"v1"
        assert mt.get(b"k", snapshot=4).value == b"v1"
        assert mt.get(b"k", snapshot=5).value == b"v5"
        assert not mt.get(b"k", snapshot=0).found

    def test_approximate_bytes_grows(self):
        mt = MemTable()
        before = mt.approximate_bytes
        mt.put(1, b"key", b"x" * 1000)
        assert mt.approximate_bytes > before + 1000


class TestIteration:
    def test_iteration_in_internal_order(self):
        mt = MemTable()
        mt.put(3, b"b", b"3")
        mt.put(1, b"a", b"1")
        mt.put(2, b"c", b"2")
        mt.put(4, b"a", b"4")  # newer version of a
        entries = list(mt)
        users = [decode_internal_key(ik)[0] for ik, _ in entries]
        assert users == [b"a", b"a", b"b", b"c"]
        # Within 'a', newer sequence first.
        seqs = [decode_internal_key(ik)[1] for ik, _ in entries[:2]]
        assert seqs == [4, 1]

    def test_iter_from(self):
        mt = MemTable()
        for i, key in enumerate([b"a", b"b", b"c", b"d"]):
            mt.put(i + 1, key, key)
        probe = encode_internal_key(b"b", 1 << 40, KIND_VALUE)
        users = [decode_internal_key(ik)[0] for ik, _ in mt.iter_from(probe)]
        assert users == [b"b", b"c", b"d"]

    def test_smallest_largest(self):
        mt = MemTable()
        mt.put(1, b"m", b"")
        mt.put(2, b"a", b"")
        mt.put(3, b"z", b"")
        assert decode_internal_key(mt.smallest_key())[0] == b"a"
        assert decode_internal_key(mt.largest_key())[0] == b"z"


@settings(max_examples=50)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.binary(min_size=1, max_size=8),
            st.binary(max_size=16),
        ),
        max_size=80,
    )
)
def test_memtable_matches_dict_model(ops):
    """The memtable behaves like a dict with tombstones."""
    mt = MemTable()
    model: dict[bytes, tuple[str, bytes]] = {}
    for seq, (op, key, value) in enumerate(ops, start=1):
        if op == "put":
            mt.put(seq, key, value)
            model[key] = ("put", value)
        else:
            mt.delete(seq, key)
            model[key] = ("del", b"")
    for key, (op, value) in model.items():
        result = mt.get(key)
        assert result.found
        if op == "put":
            assert not result.deleted and result.value == value
        else:
            assert result.deleted

    # Iteration yields every version exactly once, in internal order.
    entries = list(mt)
    assert len(entries) == len(ops)
    decoded = [decode_internal_key(ik) for ik, _ in entries]
    for (ua, sa, _), (ub, sb, _) in zip(decoded, decoded[1:]):
        assert (ua, -sa) <= (ub, -sb)


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_skiplist_shape_independent_of_seed_for_correctness(seed):
    mt = MemTable(seed=seed)
    for i in range(50):
        mt.put(i + 1, b"%04d" % i, b"v%d" % i)
    assert mt.get(b"0025").value == b"v25"
    assert len(list(mt)) == 50
