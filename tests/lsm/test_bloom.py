"""Tests for the bloom filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.bloom import BloomFilter, BloomFilterBuilder, bloom_hash


class TestHash:
    def test_deterministic(self):
        assert bloom_hash(b"key") == bloom_hash(b"key")

    def test_seed_changes_hash(self):
        assert bloom_hash(b"key", seed=1) != bloom_hash(b"key", seed=2)

    def test_distributes(self):
        hashes = {bloom_hash(b"key-%d" % i) for i in range(1000)}
        assert len(hashes) > 990  # essentially no collisions

    @given(st.binary(max_size=64))
    def test_32bit_range(self, key):
        assert 0 <= bloom_hash(key) <= 0xFFFFFFFF


class TestFilter:
    def _filter(self, keys, bits_per_key=10):
        builder = BloomFilterBuilder(bits_per_key)
        for k in keys:
            builder.add(k)
        return BloomFilter(builder.finish())

    def test_no_false_negatives(self):
        keys = [b"user-%06d" % i for i in range(2000)]
        bf = self._filter(keys)
        assert all(bf.may_contain(k) for k in keys)

    def test_false_positive_rate_reasonable(self):
        keys = [b"present-%d" % i for i in range(2000)]
        bf = self._filter(keys, bits_per_key=10)
        fp = sum(bf.may_contain(b"absent-%d" % i) for i in range(10000))
        assert fp / 10000 < 0.03  # ~1% expected at 10 bits/key

    def test_more_bits_fewer_false_positives(self):
        keys = [b"k%d" % i for i in range(500)]
        rates = []
        for bits in (4, 8, 16):
            bf = self._filter(keys, bits_per_key=bits)
            fp = sum(bf.may_contain(b"x%d" % i) for i in range(5000))
            rates.append(fp)
        assert rates[0] > rates[1] > rates[2]

    def test_empty_filter_blob_matches_all(self):
        bf = BloomFilter(b"")
        assert bf.may_contain(b"anything")

    def test_empty_builder(self):
        blob = BloomFilterBuilder().finish()
        bf = BloomFilter(blob)
        # No keys added: nothing should match (all bits zero).
        assert not bf.may_contain(b"key")

    def test_invalid_bits_per_key(self):
        with pytest.raises(ValueError):
            BloomFilterBuilder(-1)

    def test_corrupt_k_treated_as_match_all(self):
        builder = BloomFilterBuilder()
        builder.add(b"x")
        blob = bytearray(builder.finish())
        blob[-1] = 31  # reserved k value
        assert BloomFilter(bytes(blob)).may_contain(b"never-added")

    @settings(max_examples=50)
    @given(st.sets(st.binary(min_size=1, max_size=16), max_size=100))
    def test_membership_property(self, keys):
        bf = self._filter(sorted(keys))
        for k in keys:
            assert bf.may_contain(k)
