"""Tests for TableSink (write-stage table assembly)."""

import pytest

from repro.codec.checksum import get_checksummer
from repro.devices import MemStorage
from repro.lsm.ikey import KIND_VALUE, encode_internal_key, lookup_key
from repro.lsm.options import Options
from repro.lsm.table_format import encode_block_contents
from repro.lsm.table_reader import Table
from repro.lsm.table_sink import EncodedBlock, TableSink
from repro.codec.compress import get_codec
from repro.lsm.blockfmt import BlockBuilder
from repro.lsm.bloom import bloom_hash
from repro.lsm.ikey import internal_compare


def _ik(user, seq=1):
    return encode_internal_key(user, seq, KIND_VALUE)


def _encoded_block(users, options, seq=1):
    """Build one finished EncodedBlock over ``users`` (sorted)."""
    builder = BlockBuilder(options.block_restart_interval, compare=internal_compare)
    hashes = []
    for user in users:
        builder.add(_ik(user, seq), b"val:" + user)
        hashes.append(bloom_hash(user))
    raw = builder.finish()
    stored = encode_block_contents(
        raw, get_codec(options.compression), get_checksummer(options.checksum)
    )
    return EncodedBlock(
        stored=stored,
        first_key=_ik(users[0], seq),
        last_key=_ik(users[-1], seq),
        num_entries=len(users),
        key_hashes=tuple(hashes),
        uncompressed_bytes=len(raw),
    )


@pytest.fixture()
def setup():
    storage = MemStorage()
    options = Options(sstable_bytes=2048, block_bytes=512, compression="null")
    counter = iter(range(1, 100))
    sink = TableSink(storage, options, lambda: f"{next(counter):06d}.sst")
    return storage, options, sink


class TestAssembly:
    def test_single_block_single_file(self, setup):
        storage, options, sink = setup
        sink.append(_encoded_block([b"a", b"b", b"c"], options))
        outputs = sink.finish()
        assert len(outputs) == 1
        table = Table(storage.open(outputs[0].name), options)
        assert [k[:-8] for k, _ in table] == [b"a", b"b", b"c"]
        assert table.num_entries == 3

    def test_cuts_files_at_size_limit(self, setup):
        storage, options, sink = setup
        for i in range(0, 300, 3):
            users = [b"key-%04d" % (i + j) for j in range(3)]
            sink.append(_encoded_block(users, options, seq=1))
        outputs = sink.finish()
        assert len(outputs) > 1
        # Outputs are disjoint and ordered.
        for a, b in zip(outputs, outputs[1:]):
            assert internal_compare(a.largest, b.smallest) < 0
        # And every key is findable through the bloom + index path.
        for meta in outputs:
            table = Table(storage.open(meta.name), options)
            probe = meta.smallest[:-8]
            hit = table.get(lookup_key(probe, 1 << 40))
            assert hit is not None

    def test_out_of_order_blocks_rejected(self, setup):
        _, options, sink = setup
        sink.append(_encoded_block([b"m", b"n"], options))
        with pytest.raises(ValueError):
            sink.append(_encoded_block([b"a", b"b"], options))

    def test_empty_block_skipped(self, setup):
        storage, options, sink = setup
        block = _encoded_block([b"x"], options)
        empty = EncodedBlock(
            stored=block.stored, first_key=block.first_key,
            last_key=block.last_key, num_entries=0,
        )
        sink.append(empty)
        assert sink.finish() == []

    def test_finish_without_blocks(self, setup):
        _, _, sink = setup
        assert sink.finish() == []
        assert sink.blocks_written == 0

    def test_counters(self, setup):
        _, options, sink = setup
        b1 = _encoded_block([b"a", b"b"], options)
        b2 = _encoded_block([b"c"], options)
        sink.append(b1)
        sink.append(b2)
        sink.finish()
        assert sink.blocks_written == 2
        assert sink.entries_written == 3
        assert sink.bytes_written == len(b1.stored) + len(b2.stored)

    def test_metadata_records_file_name(self, setup):
        storage, options, sink = setup
        sink.append(_encoded_block([b"a"], options))
        meta = sink.finish()[0]
        assert meta.file_name == meta.name
        assert storage.exists(meta.name)
        assert meta.file_size == storage.file_size(meta.name)

    def test_bloom_built_from_key_hashes(self, setup):
        storage, options, sink = setup
        users = [b"present-%02d" % i for i in range(30)]
        sink.append(_encoded_block(users, options))
        meta = sink.finish()[0]
        table = Table(storage.open(meta.name), options)
        # Present keys found; absent keys mostly rejected by the bloom.
        for user in users[:5]:
            assert table.get(lookup_key(user, 1 << 40)) is not None
        rejected = sum(
            table.get(lookup_key(b"absent-%03d" % i, 1 << 40)) is None
            for i in range(50)
        )
        assert rejected >= 45
