"""Tests for sub-task partitioning of a compaction key range."""

import pytest

from repro.core.subtask import partition_subtasks
from repro.devices import MemStorage
from repro.lsm.ikey import KIND_VALUE, decode_internal_key, encode_internal_key
from repro.lsm.options import Options
from repro.lsm.table_builder import TableBuilder
from repro.lsm.table_reader import Table


def _ik(user: bytes, seq: int = 1) -> bytes:
    return encode_internal_key(user, seq, KIND_VALUE)


def make_table(storage, name, entries, options):
    with storage.create(name) as f:
        builder = TableBuilder(f, options)
        for ikey, value in entries:
            builder.add(ikey, value)
        builder.finish()
    return Table(storage.open(name), options)


@pytest.fixture()
def tables():
    storage = MemStorage()
    options = Options(block_bytes=256, compression="null")
    upper = make_table(
        storage,
        "upper.sst",
        [(_ik(b"key-%05d" % i, 2), b"U" * 40) for i in range(0, 1000, 2)],
        options,
    )
    lower = make_table(
        storage,
        "lower.sst",
        [(_ik(b"key-%05d" % i, 1), b"L" * 40) for i in range(0, 1000, 3)],
        options,
    )
    return options, upper, lower


class TestPartition:
    def test_covers_all_upper_blocks_exactly_once(self, tables):
        _, upper, lower = tables
        subtasks = partition_subtasks([upper, lower], subtask_bytes=2048)
        seen = []
        for sub in subtasks:
            seen.extend(sub.runs[0].handles)
        assert sorted(h.offset for h in seen) == sorted(
            h.offset for h in upper.block_handles()
        )
        assert len(seen) == len(set(h.offset for h in seen))

    def test_multiple_subtasks_created(self, tables):
        _, upper, lower = tables
        subtasks = partition_subtasks([upper, lower], subtask_bytes=2048)
        assert len(subtasks) > 3

    def test_bounds_are_contiguous_and_disjoint(self, tables):
        _, upper, lower = tables
        subtasks = partition_subtasks([upper, lower], subtask_bytes=2048)
        assert subtasks[0].lower is None
        assert subtasks[-1].upper is None
        for a, b in zip(subtasks, subtasks[1:]):
            assert a.upper == b.lower

    def test_every_entry_lands_in_exactly_one_subtask(self, tables):
        """The no-data-dependency invariant: union of [lower, upper)
        windows assigns each user key to exactly one sub-task."""
        _, upper, lower = tables
        subtasks = partition_subtasks([upper, lower], subtask_bytes=2048)
        all_users = set()
        for table in (upper, lower):
            for ikey, _ in table:
                all_users.add(decode_internal_key(ikey)[0])
        for user in all_users:
            owners = [
                s.index
                for s in subtasks
                if (s.lower is None or user >= s.lower)
                and (s.upper is None or user < s.upper)
            ]
            assert len(owners) == 1, f"{user!r} owned by {owners}"

    def test_subtask_blocks_cover_their_window(self, tables):
        """Blocks selected for a window contain every entry of it."""
        options, upper, lower = tables
        subtasks = partition_subtasks([upper, lower], subtask_bytes=2048)
        from repro.core.backends.threadbackend import run_subtask_read
        from repro.core.steps import step_decompress
        from repro.lsm.blockfmt import Block
        from repro.lsm.ikey import internal_compare

        total = 0
        for sub in subtasks:
            raws = step_decompress(run_subtask_read(sub))
            users = set()
            for raw in raws:
                for ikey, _ in Block(raw.raw, compare=internal_compare):
                    users.add(decode_internal_key(ikey)[0])
            in_window = {
                u
                for u in users
                if (sub.lower is None or u >= sub.lower)
                and (sub.upper is None or u < sub.upper)
            }
            total += len(in_window)
        # Every distinct user key (834 = 500 evens + 334 thirds - 167 sixths)
        all_users = set()
        for table in (upper, lower):
            for ikey, _ in table:
                all_users.add(decode_internal_key(ikey)[0])
        assert total == len(all_users)

    def test_single_giant_subtask(self, tables):
        _, upper, lower = tables
        subtasks = partition_subtasks([upper, lower], subtask_bytes=1 << 30)
        assert len(subtasks) == 1
        assert subtasks[0].lower is None and subtasks[0].upper is None

    def test_input_bytes_positive(self, tables):
        _, upper, lower = tables
        for sub in partition_subtasks([upper, lower], subtask_bytes=2048):
            assert sub.input_bytes() > 0
            assert sub.num_blocks() >= 1

    def test_window_clamping(self, tables):
        _, upper, lower = tables
        subtasks = partition_subtasks(
            [upper, lower],
            subtask_bytes=2048,
            lower=b"key-00200",
            upper=b"key-00700",
        )
        assert subtasks[0].lower == b"key-00200"
        assert subtasks[-1].upper == b"key-00700"

    def test_empty_inputs(self):
        assert partition_subtasks([], 1024) == []

    def test_invalid_subtask_bytes(self, tables):
        _, upper, lower = tables
        with pytest.raises(ValueError):
            partition_subtasks([upper, lower], 0)

    def test_single_table(self, tables):
        _, upper, _ = tables
        subtasks = partition_subtasks([upper], subtask_bytes=2048)
        assert all(len(s.runs) == 1 for s in subtasks)
        covered = sum(len(s.runs[0].handles) for s in subtasks)
        assert covered == upper.num_blocks()
