"""Functional compaction tests: the seven steps + procedure equivalence.

The paper's central legality argument is that sub-tasks are independent,
so any schedule produces the same merged output.  These tests compact
real tables with SCP, PCP, and C-PPCP and assert bit-identical results.
"""

import itertools

import pytest

from repro.core.procedures import ProcedureSpec, compact_tables
from repro.core.steps import step_merge
from repro.devices import MemStorage
from repro.lsm.ikey import (
    KIND_DELETE,
    KIND_VALUE,
    MAX_SEQUENCE,
    decode_internal_key,
    encode_internal_key,
    lookup_key,
)
from repro.lsm.options import Options
from repro.lsm.table_builder import TableBuilder
from repro.lsm.table_reader import Table


def _ik(user, seq=1, kind=KIND_VALUE):
    return encode_internal_key(user, seq, kind)


def make_table(storage, name, entries, options):
    with storage.create(name) as f:
        builder = TableBuilder(f, options)
        for ikey, value in entries:
            builder.add(ikey, value)
        builder.finish()
    return Table(storage.open(name), options)


def _sorted_internal(entries):
    from repro.lsm.iterators import merge_iterators

    return list(merge_iterators([iter(sorted_run) for sorted_run in [entries]]))


@pytest.fixture()
def setup():
    storage = MemStorage()
    options = Options(
        block_bytes=512, sstable_bytes=2 * 1024, compression="lz77"
    )
    upper_entries = [
        (_ik(b"key-%05d" % i, 100 + i), b"new-value-%d" % i)
        for i in range(0, 600, 2)
    ]
    lower_entries = [
        (_ik(b"key-%05d" % i, 10), b"old-value-%d" % i) for i in range(0, 600, 3)
    ]
    upper = make_table(storage, "u.sst", upper_entries, options)
    lower = make_table(storage, "l.sst", lower_entries, options)
    return storage, options, upper, lower, upper_entries, lower_entries


def _expected_merge(upper_entries, lower_entries):
    """Model: newest version per user key."""
    best = {}
    for ikey, value in itertools.chain(upper_entries, lower_entries):
        user, seq, kind = decode_internal_key(ikey)
        if user not in best or best[user][0] < seq:
            best[user] = (seq, kind, value)
    out = []
    for user in sorted(best):
        seq, kind, value = best[user]
        out.append((encode_internal_key(user, seq, kind), value))
    return out


def _read_outputs(storage, options, outputs):
    entries = []
    for meta in outputs:
        table = Table(storage.open(meta.name), options)
        entries.extend(table)
    return entries


class TestSCPFunctional:
    def test_merged_output_matches_model(self, setup):
        storage, options, upper, lower, ue, le = setup
        counter = itertools.count(100)
        outputs, stats, subtasks = compact_tables(
            [upper, lower], storage, options,
            file_namer=lambda: f"{next(counter):06d}.sst",
            spec=ProcedureSpec.scp(subtask_bytes=1024),
        )
        assert len(subtasks) > 2
        assert stats.n_subtasks == len(subtasks)
        got = _read_outputs(storage, options, outputs)
        assert got == _expected_merge(ue, le)

    def test_outputs_size_limited(self, setup):
        storage, options, upper, lower, *_ = setup
        counter = itertools.count(100)
        outputs, _, _ = compact_tables(
            [upper, lower], storage, options,
            file_namer=lambda: f"{next(counter):06d}.sst",
            spec=ProcedureSpec.scp(subtask_bytes=2048),
        )
        assert len(outputs) > 1  # paper: "multiple size-limited SSTables"
        for meta in outputs:
            # A file may exceed the limit by at most one block + metadata.
            assert meta.file_size < options.sstable_bytes + 4 * options.block_bytes

    def test_output_metadata_consistent(self, setup):
        storage, options, upper, lower, *_ = setup
        counter = itertools.count(100)
        outputs, _, _ = compact_tables(
            [upper, lower], storage, options,
            file_namer=lambda: f"{next(counter):06d}.sst",
            spec=ProcedureSpec.scp(subtask_bytes=2048),
        )
        from repro.lsm.ikey import internal_compare

        for meta in outputs:
            table = Table(storage.open(meta.name), options)
            entries = list(table)
            assert entries[0][0] == meta.smallest
            assert entries[-1][0] == meta.largest
        for a, b in zip(outputs, outputs[1:]):
            assert internal_compare(a.largest, b.smallest) < 0

    def test_point_lookups_work_on_outputs(self, setup):
        storage, options, upper, lower, *_ = setup
        counter = itertools.count(100)
        outputs, _, _ = compact_tables(
            [upper, lower], storage, options,
            file_namer=lambda: f"{next(counter):06d}.sst",
            spec=ProcedureSpec.scp(subtask_bytes=2048),
        )
        # key 4 is in both inputs: the upper (newer) value must win.
        for meta in outputs:
            if meta.smallest[:-8] <= b"key-00004" <= meta.largest[:-8]:
                table = Table(storage.open(meta.name), options)
                hit = table.get(lookup_key(b"key-00004", MAX_SEQUENCE))
                assert hit is not None
                assert hit[1] == b"new-value-4"
                return
        pytest.fail("no output file covers key-00004")


class TestProcedureEquivalence:
    @pytest.mark.parametrize(
        "spec",
        [
            ProcedureSpec.pcp(subtask_bytes=2048),
            ProcedureSpec.cppcp(k=3, subtask_bytes=2048),
            ProcedureSpec.sppcp(k=2, subtask_bytes=2048),
            ProcedureSpec.pcp(subtask_bytes=2048, queue_capacity=1),
        ],
        ids=["pcp", "cppcp3", "sppcp2", "pcp-q1"],
    )
    def test_pipelined_output_identical_to_scp(self, setup, spec):
        storage, options, upper, lower, *_ = setup
        c1 = itertools.count(100)
        scp_out, _, _ = compact_tables(
            [upper, lower], storage, options,
            file_namer=lambda: f"scp-{next(c1):06d}.sst",
            spec=ProcedureSpec.scp(subtask_bytes=2048),
        )
        c2 = itertools.count(100)
        pipe_out, _, _ = compact_tables(
            [upper, lower], storage, options,
            file_namer=lambda: f"pipe-{next(c2):06d}.sst",
            spec=spec,
        )
        scp_bytes = [storage.open(m.name).read_all() for m in scp_out]
        pipe_bytes = [storage.open(m.name).read_all() for m in pipe_out]
        assert scp_bytes == pipe_bytes  # bit-identical outputs

    def test_stats_account_input_bytes(self, setup):
        storage, options, upper, lower, *_ = setup
        counter = itertools.count(100)
        _, stats, subtasks = compact_tables(
            [upper, lower], storage, options,
            file_namer=lambda: f"{next(counter):06d}.sst",
            spec=ProcedureSpec.pcp(subtask_bytes=2048),
        )
        assert stats.input_bytes == sum(s.input_bytes() for s in subtasks)
        assert stats.output_bytes > 0
        assert stats.wall_seconds > 0
        assert stats.bandwidth() > 0


class TestTombstones:
    def _tables_with_deletes(self):
        storage = MemStorage()
        options = Options(block_bytes=256, compression="null")
        upper = make_table(
            storage,
            "u.sst",
            [
                (_ik(b"a", 20), b"va"),
                (_ik(b"b", 21, KIND_DELETE), b""),
                (_ik(b"c", 22), b"vc"),
            ],
            options,
        )
        lower = make_table(
            storage,
            "l.sst",
            [(_ik(b"b", 5), b"old-b"), (_ik(b"c", 6), b"old-c")],
            options,
        )
        return storage, options, upper, lower

    def test_tombstone_kept_at_intermediate_level(self):
        storage, options, upper, lower = self._tables_with_deletes()
        counter = itertools.count(500)
        outputs, _, _ = compact_tables(
            [upper, lower], storage, options,
            file_namer=lambda: f"{next(counter):06d}.sst",
            spec=ProcedureSpec.scp(), drop_deletes=False,
        )
        entries = _read_outputs(storage, options, outputs)
        users = [(decode_internal_key(k)[0], decode_internal_key(k)[2]) for k, _ in entries]
        assert (b"b", KIND_DELETE) in users  # tombstone survives
        assert len(entries) == 3  # a, b-tombstone, c(new)

    def test_tombstone_dropped_at_bottom_level(self):
        storage, options, upper, lower = self._tables_with_deletes()
        counter = itertools.count(500)
        outputs, _, _ = compact_tables(
            [upper, lower], storage, options,
            file_namer=lambda: f"{next(counter):06d}.sst",
            spec=ProcedureSpec.scp(), drop_deletes=True,
        )
        entries = _read_outputs(storage, options, outputs)
        users = [decode_internal_key(k)[0] for k, _ in entries]
        assert users == [b"a", b"c"]


class TestStepMerge:
    def test_empty_blocks(self):
        assert step_merge([], None, None, 4096) == []

    def test_bounds_filtering(self):
        from repro.core.steps import RawBlock
        from repro.lsm.blockfmt import BlockBuilder
        from repro.lsm.ikey import internal_compare

        builder = BlockBuilder(16, compare=internal_compare)
        for user in (b"a", b"b", b"c", b"d"):
            builder.add(_ik(user), user)
        raw = RawBlock(0, builder.finish())
        merged = step_merge([raw], b"b", b"d", 4096)
        got = []
        for block in merged:
            from repro.lsm.blockfmt import Block

            got.extend(
                decode_internal_key(k)[0]
                for k, _ in Block(block.raw, compare=internal_compare)
            )
        assert got == [b"b", b"c"]

    def test_key_hashes_attached(self):
        from repro.core.steps import RawBlock
        from repro.lsm.blockfmt import BlockBuilder
        from repro.lsm.bloom import bloom_hash
        from repro.lsm.ikey import internal_compare

        builder = BlockBuilder(16, compare=internal_compare)
        builder.add(_ik(b"xyz"), b"v")
        merged = step_merge([RawBlock(0, builder.finish())], None, None, 4096)
        assert merged[0].key_hashes == (bloom_hash(b"xyz"),)


class TestSpecValidation:
    def test_bad_kind(self):
        with pytest.raises(ValueError):
            ProcedureSpec(kind="turbo")

    def test_scp_rejects_k(self):
        with pytest.raises(ValueError):
            ProcedureSpec(kind="scp", k=2)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            ProcedureSpec(kind="sppcp", k=0)

    def test_pipeline_config_for_scp_rejected(self):
        with pytest.raises(ValueError):
            ProcedureSpec.scp().pipeline_config()

    def test_config_mapping(self):
        assert ProcedureSpec.sppcp(4).pipeline_config().n_devices == 4
        assert ProcedureSpec.cppcp(4).pipeline_config().compute_workers == 4
        assert ProcedureSpec.pcp().pipeline_config().n_devices == 1


class TestReorderBuffer:
    def test_in_order(self):
        from repro.core.backends.threadbackend import ReorderBuffer

        rb = ReorderBuffer()
        assert rb.push(0, "a") == ["a"]
        assert rb.push(1, "b") == ["b"]

    def test_out_of_order_buffered(self):
        from repro.core.backends.threadbackend import ReorderBuffer

        rb = ReorderBuffer()
        assert rb.push(2, "c") == []
        assert rb.push(1, "b") == []
        assert rb.push(0, "a") == ["a", "b", "c"]
        assert len(rb) == 0

    def test_duplicate_rejected(self):
        from repro.core.backends.threadbackend import ReorderBuffer

        rb = ReorderBuffer()
        rb.push(0, "a")
        with pytest.raises(ValueError):
            rb.push(0, "again")
