"""Tests for the per-step cost model and its calibration."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.costmodel import DEFAULT_KV_BYTES, CostModel, StageTimes, StepTimes
from repro.devices import make_device

MB = 1 << 20


class TestStepTimes:
    def test_totals(self):
        t = StepTimes(1, 2, 3, 4, 5, 6, 7)
        assert t.total == 28
        assert t.compute_total == 2 + 3 + 4 + 5 + 6
        st_ = t.stages()
        assert (st_.t_read, st_.t_compute, st_.t_write) == (1, 20, 7)

    def test_as_dict_keys(self):
        t = StepTimes(1, 2, 3, 4, 5, 6, 7)
        assert set(t.as_dict()) == {
            "read", "checksum", "decompress", "merge", "compress",
            "rechecksum", "write",
        }

    def test_stage_times_helpers(self):
        s = StageTimes(1.0, 3.0, 2.0)
        assert s.total == 6.0
        assert s.bottleneck == "compute"
        scaled = s.scaled(2.0)
        assert scaled.t_write == 4.0


class TestDefaults:
    def test_compute_total_at_default_config(self):
        """The constant the device presets were calibrated against."""
        cm = CostModel()
        entries = cm.entries_for(MB)
        t = cm.compute_times(MB, entries)
        assert t.compute_total == pytest.approx(0.0256, rel=0.02)

    def test_compress_costliest_decompress_cheapest(self):
        """Paper §IV-B: 'step comp is almost the most costly', 'step
        decomp takes the least amount of time'."""
        cm = CostModel()
        t = cm.compute_times(MB, cm.entries_for(MB))
        cpu_steps = {
            "checksum": t.checksum,
            "decompress": t.decompress,
            "merge": t.merge,
            "compress": t.compress,
            "rechecksum": t.rechecksum,
        }
        assert max(cpu_steps, key=cpu_steps.get) == "compress"
        assert min(cpu_steps, key=cpu_steps.get) == "decompress"

    def test_crc_under_5_percent(self):
        """Paper: 'either step crc or step re-crc takes less than 5%'."""
        cm = CostModel()
        ssd = make_device("ssd")
        t = cm.step_times(MB, cm.entries_for(MB), ssd, ssd)
        assert t.checksum / t.total < 0.05
        assert t.rechecksum / t.total < 0.05

    def test_merge_shrinks_with_kv_size(self):
        """Paper Fig 8: 'as the key-value size increases step sort
        takes less time'."""
        cm = CostModel()
        t64 = cm.compute_times(MB, cm.entries_for(MB, 64))
        t1024 = cm.compute_times(MB, cm.entries_for(MB, 1024))
        assert t64.merge > 10 * t1024.merge

    def test_entries_for(self):
        cm = CostModel()
        assert cm.entries_for(MB) == MB // DEFAULT_KV_BYTES
        assert cm.entries_for(10) == 1  # never zero
        with pytest.raises(ValueError):
            cm.entries_for(MB, 0)

    def test_compression_ratio_scales_write(self):
        # Ratio small enough that the output drops below one channel
        # chunk (the SSD write time is flat between chunk multiples).
        cm_small = CostModel(compression_ratio=0.05)
        cm_full = CostModel(compression_ratio=1.0)
        ssd = make_device("ssd")
        t_small = cm_small.step_times(MB, 100, ssd, ssd)
        t_full = cm_full.step_times(MB, 100, ssd, ssd)
        assert t_small.write < t_full.write
        assert t_small.rechecksum == pytest.approx(t_full.rechecksum * 0.05)
        assert t_small.read == t_full.read

    @given(st.integers(min_value=1024, max_value=8 * MB))
    def test_times_scale_linearly_in_bytes(self, nbytes):
        cm = CostModel()
        t = cm.compute_times(nbytes, 100)
        assert t.compress == pytest.approx(cm.compress_s_per_byte * nbytes)
        assert t.checksum == pytest.approx(cm.checksum_s_per_byte * nbytes)


class TestDeviceIntegration:
    def test_hdd_vs_ssd_profiles(self):
        """Fig 5: HDD is I/O-bound, SSD is CPU-bound."""
        from repro.core.analytical import CPU_BOUND, IO_BOUND, classify

        cm = CostModel()
        entries = cm.entries_for(MB)
        hdd = make_device("hdd")
        ssd = make_device("ssd")
        assert classify(cm.step_times(MB, entries, hdd, hdd)) == IO_BOUND
        assert classify(cm.step_times(MB, entries, ssd, ssd)) == CPU_BOUND

    def test_ssd_write_slower_than_read(self):
        cm = CostModel()
        ssd = make_device("ssd")
        t = cm.step_times(MB, 100, ssd, ssd)
        assert t.write > t.read

    def test_hdd_read_dominates(self):
        cm = CostModel()
        hdd = make_device("hdd")
        t = cm.step_times(MB, cm.entries_for(MB), hdd, hdd)
        assert t.read / t.total > 0.40

    def test_sequential_read_cheaper(self):
        cm = CostModel()
        hdd = make_device("hdd")
        seq = cm.step_times(MB, 100, hdd, hdd, sequential_read=True)
        rnd = cm.step_times(MB, 100, hdd, hdd, sequential_read=False)
        assert seq.read < rnd.read


class TestCalibration:
    def test_calibrate_produces_positive_constants(self):
        cm = CostModel.calibrate(sample_bytes=1 << 14)
        assert cm.checksum_s_per_byte > 0
        assert cm.decompress_s_per_byte > 0
        assert cm.compress_s_per_byte > 0
        assert cm.merge_s_per_entry > 0

    def test_calibrated_compress_costlier_than_decompress(self):
        """The pure-Python lz77 has the paper's cost asymmetry."""
        cm = CostModel.calibrate(sample_bytes=1 << 15)
        assert cm.compress_s_per_byte > cm.decompress_s_per_byte
