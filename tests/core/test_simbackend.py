"""Tests for the virtual-time schedule backend vs the analytical model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analytical import pcp_bandwidth, scp_bandwidth
from repro.core.backends.simbackend import (
    PipelineConfig,
    SimJob,
    simulate_pipeline,
    simulate_scp,
)
from repro.core.costmodel import StageTimes

MB = 1 << 20


def _jobs(n, t_read=0.004, t_compute=0.025, t_write=0.012, nbytes=MB):
    times = StageTimes(t_read, t_compute, t_write)
    return [SimJob(i, times, nbytes) for i in range(n)]


class TestSCP:
    def test_makespan_is_sum(self):
        jobs = _jobs(10)
        res = simulate_scp(jobs)
        assert res.makespan == pytest.approx(10 * 0.041)
        assert res.bandwidth() == pytest.approx(scp_bandwidth(MB, jobs[0].times))

    def test_empty(self):
        res = simulate_scp([])
        assert res.makespan == 0.0
        assert res.bandwidth() == 0.0

    def test_timeline_sequential(self):
        res = simulate_scp(_jobs(3))
        for a, b in zip(res.timeline, res.timeline[1:]):
            assert b.start == pytest.approx(a.end)

    def test_stage_busy(self):
        res = simulate_scp(_jobs(4))
        assert res.stage_busy["compute"] == pytest.approx(4 * 0.025)
        assert res.breakdown_fractions()["compute"] == pytest.approx(0.025 / 0.041)


class TestPCP:
    def test_approaches_eq2_for_many_subtasks(self):
        jobs = _jobs(200)
        res = simulate_pipeline(jobs, PipelineConfig(queue_capacity=4))
        ideal = pcp_bandwidth(MB, jobs[0].times)
        assert res.bandwidth() <= ideal + 1e-6
        assert res.bandwidth() >= 0.95 * ideal  # fill/drain < 5% at n=200

    def test_fill_drain_overhead_visible_at_small_n(self):
        jobs = _jobs(4)
        res = simulate_pipeline(jobs)
        ideal = pcp_bandwidth(MB, jobs[0].times)
        # At n=4 the pipeline spends a meaningful share filling/draining.
        assert res.bandwidth() < 0.95 * ideal
        assert res.bandwidth() > scp_bandwidth(MB, jobs[0].times)

    def test_single_subtask_equals_scp(self):
        jobs = _jobs(1)
        pcp = simulate_pipeline(jobs)
        scp = simulate_scp(jobs)
        assert pcp.makespan == pytest.approx(scp.makespan)

    def test_makespan_formula_exact(self):
        # With ample queueing, makespan = fill + n*bottleneck… verify the
        # canonical lower bound instead of the closed form.
        jobs = _jobs(50)
        res = simulate_pipeline(jobs, PipelineConfig(queue_capacity=50))
        t = jobs[0].times
        bottleneck = max(t.t_read, t.t_compute, t.t_write)
        assert res.makespan >= 50 * bottleneck - 1e-9
        assert res.makespan <= 50 * bottleneck + t.total

    def test_empty(self):
        res = simulate_pipeline([])
        assert res.makespan == 0.0

    def test_io_bound_profile(self):
        # Read dominates: bandwidth pinned by t_read.
        jobs = _jobs(100, t_read=0.030, t_compute=0.010, t_write=0.008)
        res = simulate_pipeline(jobs)
        assert res.bandwidth() == pytest.approx(MB / 0.030, rel=0.05)

    def test_queue_capacity_one_still_correct(self):
        jobs = _jobs(20)
        res = simulate_pipeline(jobs, PipelineConfig(queue_capacity=1))
        assert res.n_subtasks == 20
        assert {e.index for e in res.timeline if e.stage == "write"} == set(range(20))

    def test_shared_io_serialises_read_and_write(self):
        jobs = _jobs(100, t_read=0.010, t_compute=0.001, t_write=0.010)
        separate = simulate_pipeline(jobs, PipelineConfig(shared_io=False))
        shared = simulate_pipeline(jobs, PipelineConfig(shared_io=True))
        # With one device serving both stages, t1 and t7 serialize:
        # bandwidth halves compared to independent servers.
        assert separate.bandwidth() > 1.8 * shared.bandwidth()

    def test_all_subtasks_complete_every_stage(self):
        jobs = _jobs(13)
        res = simulate_pipeline(jobs)
        for stage in ("read", "compute", "write"):
            assert {e.index for e in res.timeline if e.stage == stage} == set(
                range(13)
            )

    def test_stage_ordering_per_subtask(self):
        res = simulate_pipeline(_jobs(10))
        by_index = {}
        for ev in res.timeline:
            by_index.setdefault(ev.index, {})[ev.stage] = ev
        for stages in by_index.values():
            assert stages["read"].end <= stages["compute"].start + 1e-12
            assert stages["compute"].end <= stages["write"].start + 1e-12


class TestSPPCP:
    def test_k_devices_divide_io(self):
        jobs = _jobs(100, t_read=0.030, t_compute=0.010, t_write=0.012)
        res1 = simulate_pipeline(jobs, PipelineConfig(n_devices=1))
        res2 = simulate_pipeline(jobs, PipelineConfig(n_devices=2))
        assert res2.bandwidth() > 1.5 * res1.bandwidth()

    def test_saturates_when_cpu_bound(self):
        jobs = _jobs(100, t_read=0.030, t_compute=0.015, t_write=0.012)
        # k=2: read/k = 0.015 == compute -> already CPU-bound.
        res2 = simulate_pipeline(jobs, PipelineConfig(n_devices=2))
        res8 = simulate_pipeline(jobs, PipelineConfig(n_devices=8))
        assert res8.bandwidth() == pytest.approx(res2.bandwidth(), rel=0.06)

    def test_round_robin_device_assignment(self):
        jobs = _jobs(10)
        res = simulate_pipeline(jobs, PipelineConfig(n_devices=2))
        readers = {e.index: e.worker for e in res.timeline if e.stage == "read"}
        assert all(readers[i] == i % 2 for i in range(10))


class TestCPPCP:
    def test_k_workers_divide_compute(self):
        jobs = _jobs(100, t_read=0.004, t_compute=0.030, t_write=0.008)
        res1 = simulate_pipeline(jobs, PipelineConfig(compute_workers=1))
        res3 = simulate_pipeline(jobs, PipelineConfig(compute_workers=3, queue_capacity=6))
        assert res3.bandwidth() > 2.0 * res1.bandwidth()

    def test_saturates_when_io_bound(self):
        jobs = _jobs(100, t_read=0.004, t_compute=0.025, t_write=0.012)
        res3 = simulate_pipeline(jobs, PipelineConfig(compute_workers=3, queue_capacity=8))
        res8 = simulate_pipeline(jobs, PipelineConfig(compute_workers=8, queue_capacity=8))
        assert res8.bandwidth() == pytest.approx(res3.bandwidth(), rel=0.08)

    def test_handoff_overhead_causes_decline(self):
        """Paper Fig 12(d): beyond saturation, more threads hurt."""
        jobs = _jobs(60, t_read=0.004, t_compute=0.025, t_write=0.012)
        bw = []
        for k in (1, 2, 4, 8):
            res = simulate_pipeline(
                jobs,
                PipelineConfig(
                    compute_workers=k,
                    queue_capacity=8,
                    handoff_overhead_s=0.0025,
                ),
            )
            bw.append(res.bandwidth())
        assert bw[1] > bw[0]  # adding a thread helps
        assert bw[3] < bw[1]  # far past saturation it hurts

    def test_no_overhead_when_single_worker(self):
        jobs = _jobs(20)
        with_oh = simulate_pipeline(
            jobs, PipelineConfig(compute_workers=1, handoff_overhead_s=0.01)
        )
        without = simulate_pipeline(jobs, PipelineConfig(compute_workers=1))
        assert with_oh.makespan == pytest.approx(without.makespan)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(compute_workers=0),
            dict(n_devices=0),
            dict(queue_capacity=0),
            dict(handoff_overhead_s=-1),
        ],
    )
    def test_bad_config(self, kw):
        with pytest.raises(ValueError):
            PipelineConfig(**kw)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    t_read=st.floats(min_value=1e-4, max_value=0.05),
    t_compute=st.floats(min_value=1e-4, max_value=0.05),
    t_write=st.floats(min_value=1e-4, max_value=0.05),
    devices=st.integers(min_value=1, max_value=4),
    workers=st.integers(min_value=1, max_value=4),
    qcap=st.integers(min_value=1, max_value=6),
)
def test_pipeline_makespan_bounds_property(
    n, t_read, t_compute, t_write, devices, workers, qcap
):
    """Work conservation: SCP >= any pipeline >= critical-path bound."""
    times = StageTimes(t_read, t_compute, t_write)
    jobs = [SimJob(i, times, MB) for i in range(n)]
    cfg = PipelineConfig(
        compute_workers=workers, n_devices=devices, queue_capacity=qcap
    )
    res = simulate_pipeline(jobs, cfg)
    scp = simulate_scp(jobs)
    assert res.makespan <= scp.makespan + 1e-9
    # Lower bounds: one sub-task's latency, and each stage's aggregate
    # demand over its server pool.
    assert res.makespan >= times.total - 1e-9
    assert res.makespan >= n * t_read / devices - 1e-9
    assert res.makespan >= n * t_compute / workers - 1e-9
    assert res.makespan >= n * t_write / devices - 1e-9
    # Every sub-task completed every stage exactly once.
    for stage in ("read", "compute", "write"):
        assert sorted(e.index for e in res.timeline if e.stage == stage) == list(
            range(n)
        )


class TestOverlapProperties:
    """The mechanism behind Figs 3/4: SCP never overlaps stages across
    sub-tasks; PCP does (that IS the contribution)."""

    @staticmethod
    def _max_concurrency(timeline):
        # Sweep-line over all busy intervals.
        points = []
        for ev in timeline:
            points.append((ev.start, 1))
            points.append((ev.end, -1))
        points.sort(key=lambda p: (p[0], p[1]))
        cur = best = 0
        for _, delta in points:
            cur += delta
            best = max(best, cur)
        return best

    def test_scp_is_strictly_serial(self):
        res = simulate_scp(_jobs(12))
        assert self._max_concurrency(res.timeline) == 1

    def test_pcp_overlaps_stages(self):
        res = simulate_pipeline(_jobs(12))
        assert self._max_concurrency(res.timeline) >= 2

    def test_pcp_never_overlaps_same_stage_single_worker(self):
        res = simulate_pipeline(_jobs(12))
        for stage in ("read", "compute", "write"):
            evs = sorted(
                (e for e in res.timeline if e.stage == stage),
                key=lambda e: e.start,
            )
            for a, b in zip(evs, evs[1:]):
                assert b.start >= a.end - 1e-12

    def test_cppcp_overlaps_compute(self):
        res = simulate_pipeline(
            _jobs(12), PipelineConfig(compute_workers=3, queue_capacity=6)
        )
        compute = [e for e in res.timeline if e.stage == "compute"]
        assert self._max_concurrency(compute) >= 2

    def test_sppcp_overlaps_reads_across_devices(self):
        res = simulate_pipeline(_jobs(12), PipelineConfig(n_devices=3))
        reads = [e for e in res.timeline if e.stage == "read"]
        assert self._max_concurrency(reads) >= 2
        # ... but never on the same device.
        for dev in range(3):
            evs = sorted(
                (e for e in reads if e.worker == dev), key=lambda e: e.start
            )
            for a, b in zip(evs, evs[1:]):
                assert b.start >= a.end - 1e-12
