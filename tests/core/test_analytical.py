"""Tests for Equations 1-7 and bound classification."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.analytical import (
    CPU_BOUND,
    IO_BOUND,
    classify,
    cppcp_bandwidth,
    cppcp_max_speedup,
    cppcp_saturation_k,
    cppcp_speedup,
    pcp_bandwidth,
    pcp_speedup,
    scp_bandwidth,
    sppcp_bandwidth,
    sppcp_max_speedup,
    sppcp_saturation_k,
    sppcp_speedup,
)
from repro.core.costmodel import StageTimes, StepTimes

L = 1 << 20

# An SSD-like profile: compute-bound.
SSD = StageTimes(t_read=0.004, t_compute=0.025, t_write=0.012)
# An HDD-like profile: read-bound.
HDD = StageTimes(t_read=0.030, t_compute=0.020, t_write=0.012)

stage_times = st.builds(
    StageTimes,
    t_read=st.floats(min_value=1e-6, max_value=1.0),
    t_compute=st.floats(min_value=1e-6, max_value=1.0),
    t_write=st.floats(min_value=1e-6, max_value=1.0),
)


class TestEquations:
    def test_eq1_scp(self):
        assert scp_bandwidth(L, SSD) == pytest.approx(L / 0.041)

    def test_eq2_pcp(self):
        assert pcp_bandwidth(L, SSD) == pytest.approx(L / 0.025)

    def test_eq3_speedup(self):
        assert pcp_speedup(SSD) == pytest.approx(0.041 / 0.025)

    def test_eq4_sppcp(self):
        # k=3 on HDD: read 0.030/3 = 0.010 < compute -> compute-bound.
        assert sppcp_bandwidth(L, HDD, 3) == pytest.approx(L / 0.020)
        assert sppcp_bandwidth(L, HDD, 1) == pytest.approx(L / 0.030)

    def test_eq5_speedup(self):
        assert sppcp_speedup(HDD, 2) == pytest.approx(0.030 / 0.020)

    def test_eq6_cppcp(self):
        # k=2 on SSD: compute 0.0125 > write? no, write 0.012 < 0.0125.
        assert cppcp_bandwidth(L, SSD, 2) == pytest.approx(L / 0.0125)
        assert cppcp_bandwidth(L, SSD, 4) == pytest.approx(L / 0.012)

    def test_eq7_speedup(self):
        assert cppcp_speedup(SSD, 2) == pytest.approx(0.025 / 0.0125)

    def test_step_times_accepted(self):
        steps = StepTimes(0.004, 0.002, 0.002, 0.01, 0.009, 0.002, 0.012)
        assert steps.compute_total == pytest.approx(0.025)
        assert pcp_bandwidth(L, steps) == pytest.approx(L / 0.025)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            sppcp_bandwidth(L, HDD, 0)
        with pytest.raises(ValueError):
            cppcp_bandwidth(L, SSD, -1)

    def test_zero_times_rejected(self):
        with pytest.raises(ValueError):
            scp_bandwidth(L, StageTimes(0, 0, 0))
        with pytest.raises(ValueError):
            pcp_bandwidth(L, StageTimes(0, 0, 0))


class TestBounds:
    @given(stage_times)
    def test_pcp_speedup_bounded_by_3(self, times):
        assert 1.0 <= pcp_speedup(times) <= 3.0 + 1e-9

    @given(stage_times, st.integers(min_value=1, max_value=16))
    def test_eq5_bound_holds(self, times, k):
        assert sppcp_speedup(times, k) <= sppcp_max_speedup(times, k) * (1 + 1e-9) + 1e-9

    @given(stage_times, st.integers(min_value=1, max_value=16))
    def test_eq7_bound_holds(self, times, k):
        assert cppcp_speedup(times, k) <= cppcp_max_speedup(times, k) * (1 + 1e-9) + 1e-9

    @given(stage_times, st.integers(min_value=1, max_value=16))
    def test_speedups_at_least_one(self, times, k):
        assert sppcp_speedup(times, k) >= 1.0 - 1e-12
        assert cppcp_speedup(times, k) >= 1.0 - 1e-12

    @given(stage_times, st.integers(min_value=1, max_value=15))
    def test_monotone_in_k(self, times, k):
        assert sppcp_bandwidth(L, times, k + 1) >= sppcp_bandwidth(L, times, k) - 1e-9
        assert cppcp_bandwidth(L, times, k + 1) >= cppcp_bandwidth(L, times, k) - 1e-9

    @given(stage_times)
    def test_pcp_at_least_scp(self, times):
        assert pcp_bandwidth(L, times) >= scp_bandwidth(L, times) - 1e-9


class TestClassification:
    def test_ssd_is_cpu_bound(self):
        assert classify(SSD) == CPU_BOUND

    def test_hdd_is_io_bound(self):
        assert classify(HDD) == IO_BOUND

    def test_sppcp_saturation(self):
        # HDD: read/compute = 1.5 -> saturates at k=2.
        assert sppcp_saturation_k(HDD) == 2

    def test_cppcp_saturation(self):
        # SSD: compute/write = 25/12 -> saturates at k=3 (ceil 2.08).
        assert cppcp_saturation_k(SSD) == 3

    @given(stage_times)
    def test_saturation_transforms_boundedness(self, times):
        """Paper §III-C: past k*, S-PPCP is CPU-bound and C-PPCP I/O-bound."""
        ks = sppcp_saturation_k(times)
        st_after = StageTimes(
            times.t_read / ks, times.t_compute, times.t_write / ks
        )
        assert classify(st_after) == CPU_BOUND
        kc = cppcp_saturation_k(times)
        ct_after = StageTimes(times.t_read, times.t_compute / kc, times.t_write)
        assert classify(ct_after) == CPU_BOUND or max(
            ct_after.t_read, ct_after.t_write
        ) >= ct_after.t_compute

    @given(stage_times, st.integers(min_value=1, max_value=32))
    def test_no_gain_past_saturation(self, times, extra):
        ks = sppcp_saturation_k(times)
        assert sppcp_bandwidth(L, times, ks + extra) == pytest.approx(
            sppcp_bandwidth(L, times, ks)
        )
        kc = cppcp_saturation_k(times)
        assert cppcp_bandwidth(L, times, kc + extra) == pytest.approx(
            cppcp_bandwidth(L, times, kc)
        )
