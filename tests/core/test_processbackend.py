"""Tests for the process-pool compute backend (real parallelism)."""

import itertools

import pytest

from repro.core.backends.processbackend import compute_remote, execute_pipelined_mp
from repro.core.procedures import ProcedureSpec, compact_tables
from repro.core.subtask import partition_subtasks
from repro.devices import MemStorage
from repro.lsm.ikey import KIND_VALUE, encode_internal_key
from repro.lsm.options import Options
from repro.lsm.table_builder import TableBuilder
from repro.lsm.table_reader import Table
from repro.lsm.table_sink import TableSink


def _ik(user, seq=1):
    return encode_internal_key(user, seq, KIND_VALUE)


@pytest.fixture(scope="module")
def inputs():
    storage = MemStorage()
    options = Options(block_bytes=512, sstable_bytes=4096, compression="lz77")

    def build(name, rng, seq, tag):
        with storage.create(name) as f:
            builder = TableBuilder(f, options)
            for i in rng:
                builder.add(_ik(b"key-%05d" % i, seq), b"%s-%d" % (tag, i) * 4)
            builder.finish()
        return Table(storage.open(name), options)

    upper = build("u.sst", range(0, 600, 2), 9, b"new")
    lower = build("l.sst", range(0, 600, 3), 1, b"old")
    return storage, options, upper, lower


def test_compute_remote_is_picklable_roundtrip(inputs):
    """The worker function runs in-process with plain data."""
    from repro.core.backends.threadbackend import run_subtask_read

    storage, options, upper, lower = inputs
    subtasks = partition_subtasks([upper, lower], 2048)
    stored = run_subtask_read(subtasks[0])
    encoded = compute_remote(
        [(b.source, b.data) for b in stored],
        subtasks[0].lower, subtasks[0].upper,
        options.compression, options.checksum,
        options.block_bytes, options.block_restart_interval,
        False, None,
    )
    assert encoded
    assert all(b.num_entries > 0 for b in encoded)


def test_mp_output_identical_to_scp(inputs):
    storage, options, upper, lower = inputs
    c1 = itertools.count(1)
    scp_out, _, _ = compact_tables(
        [upper, lower], storage, options,
        file_namer=lambda: f"scp-{next(c1):04d}.sst",
        spec=ProcedureSpec.scp(subtask_bytes=2048),
    )
    subtasks = partition_subtasks([upper, lower], 2048)
    c2 = itertools.count(1)
    sink = TableSink(storage, options, lambda: f"mp-{next(c2):04d}.sst")
    stats = execute_pipelined_mp(
        subtasks, sink, options.compression, options.checksum,
        options.block_bytes, options.block_restart_interval,
        compute_workers=2,
    )
    mp_out = sink.finish()
    assert stats.n_subtasks == len(subtasks)
    scp_bytes = [storage.open(m.name).read_all() for m in scp_out]
    mp_bytes = [storage.open(m.name).read_all() for m in mp_out]
    assert scp_bytes == mp_bytes


def test_mp_empty_subtasks(inputs):
    storage, options, *_ = inputs
    sink = TableSink(storage, options, lambda: "never.sst")
    stats = execute_pipelined_mp(
        [], sink, options.compression, options.checksum, options.block_bytes
    )
    assert stats.n_subtasks == 0
    assert sink.finish() == []


def test_mp_invalid_workers(inputs):
    storage, options, *_ = inputs
    sink = TableSink(storage, options, lambda: "x.sst")
    with pytest.raises(ValueError):
        execute_pipelined_mp(
            [], sink, options.compression, options.checksum,
            options.block_bytes, compute_workers=0,
        )


def test_mp_worker_exception_propagates(inputs):
    """Corrupt input: the worker's checksum failure reaches the caller."""
    storage, options, upper, lower = inputs
    data = bytearray(storage.open("u.sst").read_all())
    data[10] ^= 0x01
    bad_storage = MemStorage()
    with bad_storage.create("u.sst") as f:
        f.append(bytes(data))
    bad_upper = Table(
        bad_storage.open("u.sst"),
        Options(block_bytes=512, compression="lz77", paranoid_checks=False),
    )
    subtasks = partition_subtasks([bad_upper], 2048)
    sink = TableSink(storage, options, lambda: "bad.sst")
    from repro.lsm.table_format import TableCorruption

    with pytest.raises(TableCorruption):
        execute_pipelined_mp(
            subtasks, sink, options.compression, options.checksum,
            options.block_bytes, compute_workers=2,
        )


def test_spec_backend_validation():
    with pytest.raises(ValueError):
        ProcedureSpec.pcp(backend="gpu")
    with pytest.raises(ValueError):
        ProcedureSpec(kind="scp", backend="process")
    spec = ProcedureSpec.cppcp(k=2, backend="process")
    assert spec.backend == "process"


def test_db_with_process_backend():
    """End to end: the DB compacts through worker processes."""
    from repro.db import DB
    from repro.lsm.options import Options
    import random

    options = Options(
        memtable_bytes=16 * 1024, sstable_bytes=8 * 1024, block_bytes=1024,
        level1_bytes=32 * 1024, level_multiplier=4, compression="lz77",
    )
    spec = ProcedureSpec.cppcp(k=2, subtask_bytes=8 * 1024, backend="process")
    with DB(MemStorage(), options, compaction_spec=spec) as db:
        order = list(range(1200))
        random.Random(4).shuffle(order)
        for i in order:
            db.put(b"key-%05d" % i, b"value-%d" % i)
        assert db.stats.compactions > 0
        for i in range(0, 1200, 111):
            assert db.get(b"key-%05d" % i) == b"value-%d" % i
