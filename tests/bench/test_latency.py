"""Tests for per-operation latency accounting (write pauses)."""


from repro.bench.latency import LatencyResult, run_latency_workload
from repro.core import ProcedureSpec


class TestLatencyResult:
    def _result(self, values):
        return LatencyResult(
            spec=ProcedureSpec.scp(), n_ops=len(values), latencies_us=values
        )

    def test_percentiles(self):
        r = self._result([float(i) for i in range(100)])
        assert r.percentile(50) == 50.0
        assert r.percentile(99) == 99.0
        assert r.percentile(0) == 0.0

    def test_percentile_empty(self):
        assert self._result([]).percentile(99) == 0.0

    def test_mean_max(self):
        r = self._result([1.0, 3.0])
        assert r.mean_us == 2.0
        assert r.max_us == 3.0

    def test_stalled_ops(self):
        r = self._result([10.0, 2000.0, 500.0, 5000.0])
        assert r.stalled_ops(1000.0) == 2


class TestLatencyWorkload:
    def test_every_op_recorded(self):
        result = run_latency_workload(
            1000, ProcedureSpec.scp(subtask_bytes=32 * 1024)
        )
        assert len(result.latencies_us) == 1000
        assert all(v > 0 for v in result.latencies_us)

    def test_tail_is_compaction_pause(self):
        """Most ops are cheap; a handful carry flush/compaction pauses
        orders of magnitude above the median."""
        result = run_latency_workload(
            6000, ProcedureSpec.scp(subtask_bytes=32 * 1024)
        )
        p50 = result.percentile(50)
        assert result.max_us > 100 * p50

    def test_pcp_shortens_worst_pause(self):
        scp = run_latency_workload(
            8000, ProcedureSpec.scp(subtask_bytes=32 * 1024), seed=1
        )
        pcp = run_latency_workload(
            8000, ProcedureSpec.pcp(subtask_bytes=32 * 1024), seed=1
        )
        assert pcp.max_us < scp.max_us
        # Total time conserved: sum of latencies ~ the virtual clock.
        assert sum(pcp.latencies_us) < sum(scp.latencies_us)

    def test_deterministic(self):
        a = run_latency_workload(1500, ProcedureSpec.scp(subtask_bytes=32 * 1024))
        b = run_latency_workload(1500, ProcedureSpec.scp(subtask_bytes=32 * 1024))
        assert a.latencies_us == b.latencies_us
