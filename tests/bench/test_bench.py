"""Tests for the bench harness: profiling, observer, runner, report."""

import pytest

from repro.bench.observer import VirtualClock
from repro.bench.profiling import breakdown3, profile_steps_model, profile_steps_real
from repro.bench.report import format_fractions, format_table, render_series
from repro.bench.runner import (
    SCALE,
    run_insert_workload,
    scaled_device,
    scaled_options,
)
from repro.core import CostModel, ProcedureSpec
from repro.devices import make_device

MB = 1 << 20


class TestProfiling:
    def test_model_breakdown_sums_to_one(self):
        times = profile_steps_model()
        frac = breakdown3(times)
        assert sum(frac.values()) == pytest.approx(1.0)

    def test_model_devices_differ(self):
        hdd = profile_steps_model(device="hdd")
        ssd = profile_steps_model(device="ssd")
        assert hdd.read > ssd.read
        assert hdd.compute_total == ssd.compute_total  # CPU is CPU

    def test_real_profile_runs_and_orders_cpu_steps(self):
        profile = profile_steps_real(subtask_bytes=64 * 1024, repeats=1)
        t = profile.times
        assert profile.input_bytes > 0
        assert profile.entries > 0
        # The real pure-Python implementation shows the same CPU-step
        # ordering the paper reports: compress is the costliest CPU
        # step and decompress is cheaper than compress.
        cpu = {
            "checksum": t.checksum,
            "decompress": t.decompress,
            "merge": t.merge,
            "compress": t.compress,
            "rechecksum": t.rechecksum,
        }
        assert max(cpu, key=cpu.get) in ("compress", "merge")
        assert t.decompress < t.compress

    def test_real_profile_null_codec_cheapens_compress(self):
        lz = profile_steps_real(subtask_bytes=32 * 1024, compression="lz77")
        null = profile_steps_real(subtask_bytes=32 * 1024, compression="null")
        assert null.times.compress < lz.times.compress


class TestVirtualClock:
    def _clock(self, spec=None):
        dev = make_device("ssd")
        return VirtualClock(
            spec=spec or ProcedureSpec.pcp(subtask_bytes=32 * 1024),
            read_device=dev,
            write_device=dev,
        )

    def test_write_accumulates_foreground(self):
        clock = self._clock()
        from repro.lsm import WriteBatch

        batch = WriteBatch().put(b"k", b"v")
        clock.on_write(batch, wal_bytes=64)
        assert clock.foreground_s > 0
        assert clock.compaction_s == 0

    def test_flush_accounts_build_and_write(self):
        clock = self._clock()

        class Meta:
            file_size = 64 * 1024

        clock.on_flush(Meta())
        assert clock.flush_s > 0

    def test_trivial_move_cheap(self):
        clock = self._clock()
        clock.on_trivial_move(None)
        assert clock.maintenance_s == clock.trivial_move_s

    def test_compaction_uses_procedure_schedule(self):
        class FakeSub:
            def __init__(self, n):
                self._n = n

            def input_bytes(self):
                return self._n

        subs = [FakeSub(32 * 1024) for _ in range(8)]
        scp_clock = self._clock(ProcedureSpec.scp(subtask_bytes=32 * 1024))
        pcp_clock = self._clock(ProcedureSpec.pcp(subtask_bytes=32 * 1024))
        scp_clock.on_compaction(None, subs, None)
        pcp_clock.on_compaction(None, subs, None)
        assert pcp_clock.compaction_s < scp_clock.compaction_s
        assert scp_clock.compaction_input_bytes == 8 * 32 * 1024
        assert scp_clock.n_compactions == 1

    def test_iops_and_bandwidth_guards(self):
        clock = self._clock()
        assert clock.iops(100) == 0.0
        assert clock.compaction_bandwidth() == 0.0


class TestRunner:
    def test_scaled_device_preserves_stage_ratios(self):
        """A 1/SCALE sub-task on the scaled device costs ~1/SCALE of a
        full sub-task on the calibrated preset."""
        cm = CostModel()
        for kind in ("hdd", "ssd"):
            full = cm.step_times(MB, cm.entries_for(MB),
                                 make_device(kind), make_device(kind))
            small = cm.step_times(MB // SCALE, cm.entries_for(MB // SCALE),
                                  scaled_device(kind), scaled_device(kind))
            assert small.read * SCALE == pytest.approx(full.read, rel=0.05)
            assert small.write * SCALE == pytest.approx(full.write, rel=0.05)

    def test_scaled_options_are_valid(self):
        scaled_options().validate()

    def test_run_produces_consistent_result(self):
        result = run_insert_workload(
            2000, ProcedureSpec.pcp(subtask_bytes=32 * 1024), device="ssd"
        )
        assert result.n_ops == 2000
        assert result.virtual_seconds == pytest.approx(
            result.foreground_seconds
            + result.flush_seconds
            + result.compaction_seconds
            + result.maintenance_seconds
        )
        assert result.iops > 0
        assert result.n_flushes > 0
        assert "pcp" in result.summary()

    def test_runs_are_deterministic(self):
        spec = ProcedureSpec.scp(subtask_bytes=32 * 1024)
        a = run_insert_workload(1500, spec, device="hdd", seed=5)
        b = run_insert_workload(1500, spec, device="hdd", seed=5)
        assert a.virtual_seconds == b.virtual_seconds
        assert a.n_compactions == b.n_compactions

    def test_pcp_beats_scp_when_compactions_happen(self):
        scp = run_insert_workload(
            6000, ProcedureSpec.scp(subtask_bytes=32 * 1024), device="ssd"
        )
        pcp = run_insert_workload(
            6000, ProcedureSpec.pcp(subtask_bytes=32 * 1024), device="ssd"
        )
        assert scp.n_compactions > 0
        assert pcp.compaction_seconds < scp.compaction_seconds
        assert pcp.iops > scp.iops


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["name", "x"], [["alpha", 1.5], ["b", 22.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) or True for line in lines)

    def test_format_table_with_title(self):
        out = format_table(["a"], [[1]], title="T")
        assert out.startswith("T\n")

    def test_format_fractions(self):
        s = format_fractions({"read": 0.416, "write": 0.2})
        assert "read 41.6%" in s and "write 20.0%" in s

    def test_render_series(self):
        s = render_series("bw", [1, 2], [10.0, 20.0])
        assert s.startswith("bw:") and "1:10.0" in s


class TestExperimentResult:
    def test_column_and_row_map(self):
        from repro.bench.experiments.base import ExperimentResult

        r = ExperimentResult("t", ["k", "v"], [["a", 1], ["b", 2]])
        assert r.column("v") == [1, 2]
        assert r.row_map("k")["b"] == ["b", 2]
        assert "== t ==" in r.render()

    def test_fast_experiments_render(self):
        from repro.bench.experiments import fig05, fig08, fig09

        for result in (fig05.run(), fig08.run(), fig09.run()):
            text = result.render()
            assert "==" in text and len(text.splitlines()) > 3


class TestGantt:
    def test_render_scp_and_pipeline(self):
        from repro.bench.gantt import render_gantt
        from repro.core import PipelineConfig, SimJob, StageTimes
        from repro.core.backends.simbackend import simulate_pipeline, simulate_scp

        jobs = [SimJob(i, StageTimes(0.004, 0.025, 0.012), 1 << 20) for i in range(4)]
        scp_chart = render_gantt(simulate_scp(jobs))
        assert "read" in scp_chart and "write" in scp_chart
        assert "busy:" in scp_chart
        pipe_chart = render_gantt(
            simulate_pipeline(jobs, PipelineConfig(n_devices=2))
        )
        # Multiple read workers get per-worker rows.
        assert "read[0]" in pipe_chart and "read[1]" in pipe_chart

    def test_render_empty(self):
        from repro.bench.gantt import render_gantt
        from repro.core.backends.simbackend import simulate_scp

        assert render_gantt(simulate_scp([])) == "(empty schedule)"

    def test_width_respected(self):
        from repro.bench.gantt import render_gantt
        from repro.core import SimJob, StageTimes
        from repro.core.backends.simbackend import simulate_scp

        jobs = [SimJob(i, StageTimes(1, 1, 1), 1) for i in range(3)]
        chart = render_gantt(simulate_scp(jobs), width=40)
        for line in chart.splitlines()[:3]:
            assert len(line) <= 40 + 14  # label + bar
