"""FaultyProxy behaviour against a plain echo server.

The proxy is exercised below the KV protocol on purpose: an echo
server makes every fault observable as raw socket behaviour (EOF,
silence, delay) without the client's own resilience machinery
masking it.  Wire-level integration lives in the retry and chaos
suites.
"""

import json
import socket
import threading
import time

import pytest

from repro.devices import FaultyProxy, NetFaultPlan
from repro.obs import MetricsRegistry


class EchoServer:
    """Accept loop that echoes every received chunk back."""

    def __init__(self) -> None:
        self._listener = socket.socket()
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self._listener.settimeout(0.2)
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._accept = threading.Thread(
            target=self._accept_loop, name="echo-accept", daemon=True
        )
        self._accept.start()

    @property
    def endpoint(self) -> tuple[str, int]:
        return self._listener.getsockname()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve, args=(conn,), name="echo-conn",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve(self, conn: socket.socket) -> None:
        conn.settimeout(0.2)
        with conn:
            while not self._stop.is_set():
                try:
                    chunk = conn.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    return
                if not chunk:
                    return
                try:
                    conn.sendall(chunk)
                except OSError:
                    return

    def close(self) -> None:
        self._stop.set()
        self._listener.close()
        self._accept.join(timeout=5)

    def __enter__(self) -> "EchoServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _roundtrip(endpoint, payload=b"ping", timeout=5.0) -> bytes:
    with socket.create_connection(endpoint, timeout=timeout) as sock:
        sock.settimeout(timeout)
        sock.sendall(payload)
        return sock.recv(65536)


def test_clean_passthrough():
    with EchoServer() as echo:
        with FaultyProxy(*echo.endpoint).start() as proxy:
            assert _roundtrip(proxy.endpoint, b"hello") == b"hello"
            assert proxy.injected == {}


def test_refuse_nth_connection_is_deterministic():
    with EchoServer() as echo:
        plan = NetFaultPlan(fail_nth={"connect": 2})
        with FaultyProxy(*echo.endpoint, plan=plan).start() as proxy:
            assert _roundtrip(proxy.endpoint) == b"ping"  # conn 1 fine
            # Connection 2: accepted then closed before any relay.
            with socket.create_connection(proxy.endpoint, timeout=5.0) as s:
                s.settimeout(5.0)
                s.sendall(b"ping")
                try:
                    assert s.recv(65536) == b""  # EOF, not an echo
                except OSError:
                    pass  # RST instead of EOF is also a refusal
            assert _roundtrip(proxy.endpoint) == b"ping"  # conn 3 fine
            assert proxy.injected.get("refuse") == 1


def test_cut_tears_connection_mid_stream():
    with EchoServer() as echo:
        plan = NetFaultPlan(fail_nth={"c2s": 1})
        with FaultyProxy(*echo.endpoint, plan=plan).start() as proxy:
            with socket.create_connection(proxy.endpoint, timeout=5.0) as s:
                s.settimeout(5.0)
                s.sendall(b"doomed")
                try:
                    assert s.recv(65536) == b""
                except OSError:
                    pass
            assert proxy.injected.get("cut") == 1


def test_latency_delays_roundtrip():
    with EchoServer() as echo:
        plan = NetFaultPlan(latency_ms=60.0)
        with FaultyProxy(*echo.endpoint, plan=plan).start() as proxy:
            t0 = time.monotonic()
            assert _roundtrip(proxy.endpoint) == b"ping"
            # Both directions are delayed: >= 2 * 60ms.
            assert time.monotonic() - t0 >= 0.1
            assert proxy.injected.get("latency", 0) >= 2


def test_partition_and_heal():
    with EchoServer() as echo:
        with FaultyProxy(*echo.endpoint).start() as proxy:
            with socket.create_connection(proxy.endpoint, timeout=5.0) as s:
                s.settimeout(0.5)
                s.sendall(b"before")
                assert s.recv(65536) == b"before"

                proxy.partition("both")
                assert proxy.partitioned == "both"
                s.sendall(b"lost")
                # The socket stays open but nothing comes back.
                with pytest.raises(socket.timeout):
                    s.recv(65536)

                proxy.heal()
                assert proxy.partitioned is None
                # Black-holed bytes are gone for good; new traffic flows.
                s.settimeout(5.0)
                s.sendall(b"after")
                assert s.recv(65536) == b"after"
            assert proxy.injected.get("blackhole", 0) >= 1


def test_asymmetric_partition_one_direction_only():
    with EchoServer() as echo:
        with FaultyProxy(*echo.endpoint).start() as proxy:
            proxy.partition("s2c")
            with socket.create_connection(proxy.endpoint, timeout=5.0) as s:
                s.settimeout(0.5)
                # Request reaches the echo server (c2s flows) but the
                # reply is swallowed: alive to TCP, dead to the client.
                s.sendall(b"oneway")
                with pytest.raises(socket.timeout):
                    s.recv(65536)
            assert proxy.injected.get("blackhole", 0) >= 1


def test_drop_connections_hard_closes_live_pairs():
    with EchoServer() as echo:
        with FaultyProxy(*echo.endpoint).start() as proxy:
            with socket.create_connection(proxy.endpoint, timeout=5.0) as s:
                s.settimeout(5.0)
                s.sendall(b"x")
                assert s.recv(65536) == b"x"
                assert proxy.n_connections == 1
                assert proxy.drop_connections() == 1
                try:
                    assert s.recv(65536) == b""
                except OSError:
                    pass
            assert proxy.injected.get("cut") == 1


def test_probabilistic_cuts_respect_budget_and_seed():
    with EchoServer() as echo:
        plan = NetFaultPlan(seed=42, cut_rate=1.0, max_faults=2)
        with FaultyProxy(*echo.endpoint, plan=plan).start() as proxy:
            torn = 0
            for _ in range(5):
                try:
                    if _roundtrip(proxy.endpoint) != b"ping":
                        torn += 1
                except OSError:
                    torn += 1
            # cut_rate=1.0 would tear every connection; the budget
            # stops after two injections.
            assert proxy.injected.get("cut") == 2
            assert torn == 2


def test_metrics_and_events_mirroring():
    registry = MetricsRegistry()
    with EchoServer() as echo:
        plan = NetFaultPlan(fail_nth={"connect": 1})
        with FaultyProxy(*echo.endpoint, plan=plan).start() as proxy:
            # First injection happens before attach: attach must
            # backfill the running totals.
            try:
                _roundtrip(proxy.endpoint)
            except OSError:
                pass
            proxy.attach_obs(metrics=registry)
            assert registry.counter("net.fault_injected").value == 1
            assert registry.counter("net.fault_injected.refuse").value == 1

            proxy.partition("both")
            with socket.create_connection(proxy.endpoint, timeout=5.0) as s:
                s.settimeout(0.3)
                s.sendall(b"gone")
                with pytest.raises(socket.timeout):
                    s.recv(65536)
            assert registry.counter("net.fault_injected.blackhole").value >= 1


def test_plan_json_roundtrip():
    plan = NetFaultPlan(
        seed=9,
        refuse_rate=0.1,
        latency_ms=5.0,
        blackhole="s2c",
        fail_nth={"connect": 3},
        max_faults=7,
    )
    text = plan.to_json()
    assert NetFaultPlan.from_json(text) == plan
    # Defaults are elided (seed always kept, for reproducibility).
    data = json.loads(text)
    assert "cut_rate" not in data
    assert data["seed"] == 9
    assert NetFaultPlan().to_json() == '{"seed": 0}'


def test_plan_validation():
    with pytest.raises(ValueError):
        NetFaultPlan(refuse_rate=1.5)
    with pytest.raises(ValueError):
        NetFaultPlan(latency_ms=-1)
    with pytest.raises(ValueError):
        NetFaultPlan(blackhole="sideways")
    with pytest.raises(ValueError):
        NetFaultPlan(fail_nth={"frob": 1})
    with pytest.raises(ValueError):
        NetFaultPlan(fail_nth={"connect": 0})
    with pytest.raises(ValueError):
        NetFaultPlan.from_json("[1, 2]")
