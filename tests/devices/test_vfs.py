"""Tests for the virtual filesystem (Mem/OS/Timed storage)."""

import pytest

from repro.devices import (
    HDD,
    MemStorage,
    OSStorage,
    SSD,
    StorageError,
    TimedStorage,
)


def _roundtrip(storage):
    with storage.create("f1") as f:
        f.append(b"hello ")
        f.append(b"world")
        assert f.tell() == 11
    with storage.open("f1") as r:
        assert r.size() == 11
        assert r.pread(0, 5) == b"hello"
        assert r.pread(6, 5) == b"world"
        assert r.read_all() == b"hello world"


class TestMemStorage:
    def test_roundtrip(self):
        _roundtrip(MemStorage())

    def test_open_missing(self):
        with pytest.raises(StorageError):
            MemStorage().open("nope")

    def test_delete(self):
        s = MemStorage()
        s.create("a").close()
        assert s.exists("a")
        s.delete("a")
        assert not s.exists("a")
        with pytest.raises(StorageError):
            s.delete("a")

    def test_rename(self):
        s = MemStorage()
        with s.create("old") as f:
            f.append(b"data")
        s.rename("old", "new")  # repro: noqa[RA201] - rename semantics, not a commit
        assert not s.exists("old")
        assert s.open("new").read_all() == b"data"

    def test_rename_missing(self):
        with pytest.raises(StorageError):
            MemStorage().rename("x", "y")

    def test_list_sorted(self):
        s = MemStorage()
        for name in ("c", "a", "b"):
            s.create(name).close()
        assert s.list() == ["a", "b", "c"]

    def test_total_bytes(self):
        s = MemStorage()
        with s.create("x") as f:
            f.append(b"12345")
        assert s.total_bytes() == 5

    def test_reader_sees_published_appends(self):
        # WAL pattern: a reader opened mid-write sees flushed data.
        s = MemStorage()
        w = s.create("wal")
        w.append(b"record1")
        assert s.open("wal").read_all() == b"record1"
        w.append(b"record2")
        assert s.open("wal").read_all() == b"record1record2"
        w.close()

    def test_append_after_close_rejected(self):
        s = MemStorage()
        f = s.create("x")
        f.close()
        with pytest.raises(StorageError):
            f.append(b"more")

    def test_pread_past_end_returns_short(self):
        s = MemStorage()
        with s.create("x") as f:
            f.append(b"abc")
        assert s.open("x").pread(2, 100) == b"c"

    def test_pread_negative_rejected(self):
        s = MemStorage()
        s.create("x").close()
        with pytest.raises(ValueError):
            s.open("x").pread(-1, 5)


class TestOSStorage:
    def test_roundtrip(self, tmp_path):
        _roundtrip(OSStorage(str(tmp_path)))

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            OSStorage(str(tmp_path)).open("ghost")

    def test_delete_and_rename(self, tmp_path):
        s = OSStorage(str(tmp_path))
        with s.create("a") as f:
            f.append(b"1")
        s.rename("a", "b")  # repro: noqa[RA201] - rename semantics, not a commit
        assert s.list() == ["b"]
        s.delete("b")
        assert s.list() == []

    def test_delete_missing(self, tmp_path):
        with pytest.raises(StorageError):
            OSStorage(str(tmp_path)).delete("ghost")

    def test_rename_missing(self, tmp_path):
        with pytest.raises(StorageError):
            OSStorage(str(tmp_path)).rename("ghost", "x")

    def test_sync_is_durable_noop_functionally(self, tmp_path):
        s = OSStorage(str(tmp_path))
        with s.create("a") as f:
            f.append(b"xyz")
            f.sync()
        assert s.open("a").read_all() == b"xyz"

    def test_file_size(self, tmp_path):
        s = OSStorage(str(tmp_path))
        with s.create("a") as f:
            f.append(b"12345678")
        assert s.file_size("a") == 8


class TestTimedStorage:
    def test_charges_for_io(self):
        ts = TimedStorage(MemStorage(), SSD())
        with ts.create("f") as f:
            f.append(b"x" * 4096)
        assert ts.io_seconds > 0
        before = ts.io_seconds
        ts.open("f").pread(0, 4096)
        assert ts.io_seconds > before

    def test_functional_passthrough(self):
        ts = TimedStorage(MemStorage(), SSD())
        _roundtrip(ts)
        ts.rename("f1", "f2")
        assert ts.exists("f2") and not ts.exists("f1")
        assert ts.list() == ["f2"]
        ts.delete("f2")
        assert ts.list() == []

    def test_sync_charges_fixed_cost(self):
        ts = TimedStorage(MemStorage(), SSD(), sync_s=0.005)
        with ts.create("f") as f:
            f.append(b"d")
            before = ts.io_seconds
            f.sync()
        assert ts.io_seconds == pytest.approx(before + 0.005)

    def test_sequential_appends_cheaper_on_hdd(self):
        """Back-to-back appends to one file are sequential on disk."""
        hdd = HDD()
        ts = TimedStorage(MemStorage(), hdd)
        with ts.create("log") as f:
            f.append(b"a" * 1024)
            f.append(b"b" * 1024)
        assert hdd.stats.seeks <= 1  # only the first write repositions
