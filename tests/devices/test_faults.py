"""Unit tests for the deterministic fault-injection storage layer.

These exercise :mod:`repro.devices.faults` directly, below the DB:
nth-op and probabilistic error injection, seeded bit flips, the
durability model behind ``frozen_storage``, crash-point semantics, and
the FaultPlan JSON round-trip.  The DB-level crash matrix lives in
``tests/db/test_crash_consistency.py``.
"""

import pytest

from repro.devices import MemStorage, StorageError
from repro.devices.faults import (
    CRASH_POINTS,
    FaultPlan,
    FaultyStorage,
    SimulatedCrash,
    TransientIOError,
    corrupt_file,
    find_faulty,
    fire_crash_point,
)
from repro.devices.vfs import MeteredStorage
from repro.obs import MetricsRegistry


def _write(storage, name, data, sync=True):
    with storage.create(name) as f:
        f.append(data)
        if sync:
            f.sync()


class TestFaultPlan:
    def test_defaults_inject_nothing(self):
        s = FaultyStorage(MemStorage())
        for i in range(50):
            _write(s, f"f{i}", b"x" * 100)
            assert s.open(f"f{i}").read_all() == b"x" * 100
        assert s.injected == {}

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(read_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(bitflip_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(fail_nth={"chmod": 1})
        with pytest.raises(ValueError):
            FaultPlan(fail_nth={"write": 0})
        with pytest.raises(ValueError):
            FaultPlan(crash_at="no.such.point")

    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=7,
            write_error_rate=0.25,
            fail_nth={"sync": 3},
            max_errors=2,
            crash_at="wal.sync",
            torn_tail=True,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        # Defaults are elided (seed always kept for reproducibility).
        assert "read_error_rate" not in FaultPlan(seed=1).to_json()
        with pytest.raises(ValueError):
            FaultPlan.from_json("[1, 2]")


class TestErrorInjection:
    def test_fail_nth_write_fires_exactly_once(self):
        s = FaultyStorage(MemStorage(), FaultPlan(fail_nth={"write": 3}))
        f = s.create("a")
        f.append(b"1")
        f.append(b"2")
        with pytest.raises(TransientIOError):
            f.append(b"3")
        f.append(b"3")  # op #4: plan already consumed
        f.sync()
        f.close()
        assert s.injected == {"write": 1}
        assert s.open("a").read_all() == b"123"

    def test_fail_nth_sync_and_rename(self):
        s = FaultyStorage(MemStorage(), FaultPlan(fail_nth={"sync": 1, "rename": 1}))
        f = s.create("a")
        f.append(b"x")
        with pytest.raises(TransientIOError):
            f.sync()
        f.sync()
        f.close()
        with pytest.raises(TransientIOError):
            s.rename("a", "b")
        s.rename("a", "b")
        assert s.exists("b")

    def test_probabilistic_errors_reproducible(self):
        def run():
            s = FaultyStorage(
                MemStorage(),
                FaultPlan(seed=42, write_error_rate=0.3),
            )
            failures = []
            f = s.create("a")
            for i in range(200):
                try:
                    f.append(b"x")
                except TransientIOError:
                    failures.append(i)
            return failures

        first, second = run(), run()
        assert first == second
        assert len(first) > 0

    def test_max_errors_budget_lets_retries_converge(self):
        s = FaultyStorage(
            MemStorage(),
            FaultPlan(seed=1, sync_error_rate=1.0, max_errors=2),
        )
        f = s.create("a")
        f.append(b"x")
        attempts = 0
        while True:
            try:
                f.sync()
                break
            except TransientIOError:
                attempts += 1
                assert attempts <= 2
        assert attempts == 2
        assert s.injected["sync"] == 2

    def test_read_error_injection(self):
        s = FaultyStorage(MemStorage(), FaultPlan(fail_nth={"read": 1}))
        _write(s, "a", b"hello")
        with pytest.raises(TransientIOError):
            s.open("a").pread(0, 5)
        assert s.open("a").pread(0, 5) == b"hello"


class TestBitFlips:
    def test_bitflips_deterministic_and_counted(self):
        def run():
            s = FaultyStorage(MemStorage(), FaultPlan(seed=9, bitflip_rate=0.5))
            _write(s, "a", bytes(range(256)))
            return [s.open("a").pread(0, 256) for _ in range(20)], dict(s.injected)

        (reads1, counts1), (reads2, counts2) = run(), run()
        assert reads1 == reads2
        assert counts1 == counts2
        flipped = [r for r in reads1 if r != bytes(range(256))]
        assert flipped, "0.5 flip rate over 20 reads should hit at least once"
        assert counts1["bitflip"] == len(flipped)
        for r in flipped:  # exactly one bit differs
            diff = [a ^ b for a, b in zip(r, bytes(range(256))) if a != b]
            assert len(diff) == 1 and bin(diff[0]).count("1") == 1


class TestFrozenImage:
    def test_synced_bytes_survive_unsynced_dropped(self):
        s = FaultyStorage(MemStorage())
        f = s.create("a")
        f.append(b"durable")
        f.sync()
        f.append(b"-volatile")
        # no sync, no crash needed: freeze models a power cut now
        frozen = s.frozen_storage()
        assert frozen.open("a").read_all() == b"durable"

    def test_created_never_synced_file_vanishes(self):
        s = FaultyStorage(MemStorage())
        f = s.create("ghost")
        f.append(b"never synced")
        frozen = s.frozen_storage()
        assert not frozen.exists("ghost")

    def test_preexisting_files_taken_whole(self):
        inner = MemStorage()
        _write(inner, "old", b"from before the wrapper")
        s = FaultyStorage(inner)
        assert s.frozen_storage().open("old").read_all() == b"from before the wrapper"

    def test_torn_tail_keeps_seeded_prefix(self):
        def run(seed):
            s = FaultyStorage(MemStorage(), FaultPlan(seed=seed, torn_tail=True))
            f = s.create("a")
            f.append(b"D" * 10)
            f.sync()
            f.append(b"V" * 100)
            return s.frozen_storage().open("a").read_all()

        datas = {seed: run(seed) for seed in range(8)}
        for data in datas.values():
            assert data[:10] == b"D" * 10
            assert 10 <= len(data) <= 110
            assert data[10:] == b"V" * (len(data) - 10)
        assert run(3) == datas[3]  # same seed, same tear
        assert len({len(d) for d in datas.values()}) > 1  # seeds differ

    def test_rename_carries_durability(self):
        s = FaultyStorage(MemStorage())
        f = s.create("a.tmp")
        f.append(b"synced")
        f.sync()
        f.append(b"tail")
        f.close()
        s.rename("a.tmp", "a")
        frozen = s.frozen_storage()
        assert not frozen.exists("a.tmp")
        assert frozen.open("a").read_all() == b"synced"


class TestCrashPoints:
    def test_crash_point_freezes_storage(self):
        s = FaultyStorage(MemStorage(), FaultPlan(crash_at="wal.sync"))
        _write(s, "a", b"before")
        s.crash_point("wal.append")  # not armed: records only
        with pytest.raises(SimulatedCrash):
            s.crash_point("wal.sync")
        assert s.crashed
        assert s.points_seen == ["wal.append", "wal.sync"]
        assert s.injected["crash"] == 1
        for op in (
            lambda: s.create("b"),
            lambda: s.open("a"),
            lambda: s.delete("a"),
            lambda: s.rename("a", "b"),
        ):
            with pytest.raises(StorageError):
                op()
        # The frozen image is still obtainable after the crash.
        assert s.frozen_storage().open("a").read_all() == b"before"

    def test_crash_skip_delays_the_cut(self):
        s = FaultyStorage(
            MemStorage(), FaultPlan(crash_at="manifest.append", crash_skip=2)
        )
        s.crash_point("manifest.append")
        s.crash_point("manifest.append")
        with pytest.raises(SimulatedCrash):
            s.crash_point("manifest.append")

    def test_fire_crash_point_walks_wrapper_chain(self):
        faulty = FaultyStorage(MemStorage(), FaultPlan(crash_at="current.renamed"))
        stacked = MeteredStorage(faulty, MetricsRegistry())
        assert find_faulty(stacked) is faulty
        with pytest.raises(SimulatedCrash):
            fire_crash_point(stacked, "current.renamed")
        # Plain storage: a silent no-op.
        fire_crash_point(MemStorage(), "current.renamed")
        assert find_faulty(MemStorage()) is None

    def test_all_registered_points_are_armable(self):
        for point in CRASH_POINTS:
            s = FaultyStorage(MemStorage(), FaultPlan(crash_at=point))
            with pytest.raises(SimulatedCrash):
                s.crash_point(point)


class TestArmDisarm:
    def test_disarm_stops_faults_keeps_durability(self):
        s = FaultyStorage(MemStorage(), FaultPlan(write_error_rate=1.0))
        with pytest.raises(TransientIOError):
            s.create("a").append(b"x")
        s.disarm()
        f = s.create("b")
        f.append(b"ok")
        f.sync()
        f.append(b"tail")
        assert s.frozen_storage().open("b").read_all() == b"ok"

    def test_arm_resets_op_counters(self):
        s = FaultyStorage(MemStorage(), FaultPlan(fail_nth={"write": 1}))
        with pytest.raises(TransientIOError):
            s.create("a").append(b"x")
        s.arm(FaultPlan(fail_nth={"write": 1}))
        with pytest.raises(TransientIOError):
            s.create("b").append(b"x")


class TestCorruptFile:
    def test_flips_the_requested_byte(self):
        s = MemStorage()
        _write(s, "a", b"\x00" * 10)
        corrupt_file(s, "a", 4, 0x0F)
        data = s.open("a").read_all()
        assert data[4] == 0x0F
        assert data[:4] == b"\x00" * 4 and data[5:] == b"\x00" * 5

    def test_offset_wraps_and_empty_rejected(self):
        s = MemStorage()
        _write(s, "a", b"ab")
        corrupt_file(s, "a", 5)  # 5 % 2 == 1
        assert s.open("a").read_all()[0:1] == b"a"
        _write(s, "empty", b"")
        with pytest.raises(ValueError):
            corrupt_file(s, "empty", 0)
