"""Tests for HDD/SSD/RAID service-time models and their calibration."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.devices import (
    HDD,
    PAPER_HDD,
    RAID0,
    SSD,
    DiskArray,
    HDDSpec,
    SSDSpec,
    make_device,
)

MB = 1 << 20


class TestHDD:
    def test_random_read_pays_positioning(self):
        hdd = HDD()
        t_random = hdd.read_time(MB, stream="a", offset=0)
        t_seq = hdd.read_time(MB, stream="a", offset=MB)
        assert t_random > t_seq
        assert t_random - t_seq == pytest.approx(hdd.spec.positioning_s(0))

    def test_stream_switch_breaks_sequentiality(self):
        hdd = HDD()
        hdd.read_time(MB, stream="a", offset=0)
        t_other = hdd.read_time(MB, stream="b", offset=0)
        assert t_other > MB / hdd.spec.read_bandwidth

    def test_kind_switch_breaks_sequentiality(self):
        hdd = HDD()
        hdd.read_time(MB, stream="a", offset=0)
        hdd.write_time(MB, stream="out", offset=0)
        t = hdd.read_time(MB, stream="a", offset=MB)
        assert t > MB / hdd.spec.read_bandwidth  # seek again after the write

    def test_write_uses_buffer_no_seek(self):
        hdd = HDD()
        t1 = hdd.write_time(MB, stream="o", offset=0)
        hdd.read_time(MB, stream="i", offset=0)
        t2 = hdd.write_time(MB, stream="o", offset=MB)
        assert t1 == pytest.approx(t2)

    def test_write_faster_than_random_read(self):
        # Paper: "the write bandwidth is better than step read".
        hdd = HDD()
        r = hdd.read_time(MB, stream="i")
        w = hdd.write_time(MB, stream="o")
        assert w < r

    def test_fill_level_inflates_seek(self):
        spec = HDDSpec(seek_scale_per_gb=0.1)
        a, b = HDD(spec), HDD(spec)
        b.set_fill_bytes(10 * 10**9)
        assert b.read_time(MB) > a.read_time(MB)

    def test_stats_accumulate(self):
        hdd = HDD()
        hdd.read_time(100, stream="x")
        hdd.read_time(50, stream="x")
        hdd.write_time(30, stream="y")
        assert hdd.stats.bytes_read == 150
        assert hdd.stats.bytes_written == 30
        assert hdd.stats.reads == 2 and hdd.stats.writes == 1
        assert hdd.stats.total_time() > 0

    def test_reset(self):
        hdd = HDD()
        hdd.read_time(MB, stream="x", offset=0)
        hdd.reset()
        assert hdd.stats.reads == 0
        # After reset the first access is random again.
        assert hdd.read_time(MB, stream="x", offset=MB) > MB / hdd.spec.read_bandwidth

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            HDD().read_time(-1)

    def test_negative_fill_rejected(self):
        with pytest.raises(ValueError):
            HDD().set_fill_bytes(-1)


class TestSSD:
    def test_no_positioning_cost(self):
        ssd = SSD()
        t_random = ssd.read_time(MB, stream="a", offset=0)
        ssd.write_time(MB, stream="b", offset=0)
        t_after_switch = ssd.read_time(MB, stream="c", offset=5 * MB)
        assert t_random == pytest.approx(t_after_switch)

    def test_write_slower_than_read(self):
        # Paper: write-after-erase makes SSD writes slower than reads.
        ssd = SSD()
        assert ssd.write_time(MB) > ssd.read_time(MB)

    def test_internal_parallelism_large_io_cheaper_per_byte(self):
        ssd = SSD()
        t_small = ssd.read_time(64 * 1024)
        t_large = ssd.read_time(MB)
        assert t_large / MB < t_small / (64 * 1024)

    def test_bandwidth_saturates_at_channel_count(self):
        spec = SSDSpec()
        full = spec.channels * spec.channel_chunk
        assert spec.channels_engaged(full) == spec.channels
        assert spec.channels_engaged(full * 4) == spec.channels

    def test_channels_engaged_tiny_io(self):
        assert SSDSpec().channels_engaged(1) == 1
        assert SSDSpec().channels_engaged(0) == 1

    @given(st.integers(min_value=1, max_value=64 * MB))
    def test_read_time_monotone_in_size(self, size):
        ssd = SSD()
        assert ssd.read_time(size + 4096) >= ssd.read_time(size) - 1e-12


class TestCalibration:
    """The preset devices must land in the paper's Fig 5 regimes.

    Compute time at the default config is ~25.6 ms/MB (see
    repro.core.costmodel); the device presets are calibrated so that on
    HDD read >40 % and I/O >60 % of a sub-task, and on SSD compute >60 %
    with write > read.
    """

    COMPUTE_S_PER_MB = 0.0256

    def test_hdd_breakdown_matches_fig5a(self):
        hdd = make_device("hdd")
        read = hdd.read_time(MB, stream="in")  # random: compaction interleaves
        write = hdd.write_time(MB, stream="out")
        total = read + write + self.COMPUTE_S_PER_MB
        assert read / total > 0.40
        assert (read + write) / total > 0.60
        assert write / total < 0.20

    def test_ssd_breakdown_matches_fig5b(self):
        ssd = make_device("ssd")
        read = ssd.read_time(MB, stream="in")
        write = ssd.write_time(MB, stream="out")
        total = read + write + self.COMPUTE_S_PER_MB
        assert self.COMPUTE_S_PER_MB / total > 0.60
        assert write > read
        assert (read + write) / total < 0.40

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            make_device("nvme")


class TestDiskArray:
    def test_round_robin_assignment(self):
        arr = DiskArray([HDD(name=f"d{i}") for i in range(3)])
        assert arr.device_for(0).name == "d0"
        assert arr.device_for(4).name == "d1"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DiskArray([])

    def test_total_stats(self):
        arr = DiskArray([SSD(name="s0"), SSD(name="s1")])
        arr.device_for(0).read_time(100)
        arr.device_for(1).write_time(200)
        br, bw, rt, wt = arr.total_stats()
        assert (br, bw) == (100, 200)
        assert rt > 0 and wt > 0

    def test_reset(self):
        arr = DiskArray([SSD(), SSD()])
        arr.device_for(0).read_time(100)
        arr.reset()
        assert arr.total_stats() == (0, 0, 0.0, 0.0)


class TestRAID0:
    def test_striping_speeds_up_large_io(self):
        single = HDD(PAPER_HDD)
        raid4 = RAID0(lambda i: HDD(PAPER_HDD, name=f"m{i}"), k=4)
        assert raid4.read_time(4 * MB) < single.read_time(4 * MB)

    def test_seek_floor_not_divided(self):
        # Positioning cost does not shrink with more members.
        raid2 = RAID0(lambda i: HDD(PAPER_HDD), k=2)
        raid8 = RAID0(lambda i: HDD(PAPER_HDD), k=8)
        floor = PAPER_HDD.positioning_s(0)
        assert raid2.read_time(4 * MB) > floor
        assert raid8.read_time(4 * MB) > floor

    def test_small_io_engages_one_member(self):
        raid = RAID0(lambda i: HDD(PAPER_HDD), k=4, stripe_unit=64 * 1024)
        single = HDD(PAPER_HDD)
        assert raid.read_time(1024) == pytest.approx(single.read_time(1024))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RAID0(lambda i: HDD(), k=0)
        with pytest.raises(ValueError):
            RAID0(lambda i: HDD(), k=2, stripe_unit=0)
