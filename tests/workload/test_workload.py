"""Tests for key distributions, insert streams, and YCSB mixes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    InsertWorkload,
    ValueGenerator,
    YCSBWorkload,
    ZipfGenerator,
    format_key,
    sequential_keys,
    uniform_keys,
    zipfian_keys,
)


class TestKeys:
    def test_format_key_fixed_width(self):
        assert format_key(42) == b"0000000000000042"
        assert len(format_key(0)) == 16

    def test_format_key_overflow(self):
        with pytest.raises(ValueError):
            format_key(10**20, width=16)

    def test_format_key_sorts_numerically(self):
        keys = [format_key(i) for i in (5, 50, 500, 5000)]
        assert keys == sorted(keys)

    def test_sequential(self):
        keys = list(sequential_keys(5))
        assert keys == sorted(keys)
        assert len(set(keys)) == 5

    def test_uniform_deterministic(self):
        a = list(uniform_keys(100, seed=3))
        b = list(uniform_keys(100, seed=3))
        c = list(uniform_keys(100, seed=4))
        assert a == b
        assert a != c

    def test_uniform_within_keyspace(self):
        keys = list(uniform_keys(200, keyspace=50, seed=1))
        assert all(int(k) < 50 for k in keys)

    def test_zipfian_is_skewed(self):
        from collections import Counter

        keys = list(zipfian_keys(5000, keyspace=1000, seed=2))
        counts = Counter(keys)
        top = counts.most_common(10)
        # The hottest 10 of 1000 keys get far more than 1% of traffic.
        assert sum(c for _, c in top) > 0.25 * 5000

    def test_zipfian_deterministic(self):
        assert list(zipfian_keys(100, seed=5)) == list(zipfian_keys(100, seed=5))


class TestZipfGenerator:
    def test_range(self):
        gen = ZipfGenerator(100, seed=1)
        for _ in range(1000):
            assert 0 <= gen.next() < 100 + 1  # YCSB formula may emit `items`

    def test_rank_zero_most_frequent(self):
        gen = ZipfGenerator(1000, seed=1)
        draws = [gen.next() for _ in range(5000)]
        assert draws.count(0) > draws.count(500)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)
        with pytest.raises(ValueError):
            ZipfGenerator(10, theta=1.5)


class TestValueGenerator:
    def test_fixed_size(self):
        gen = ValueGenerator(value_bytes=100)
        assert all(len(gen.value_for(i)) == 100 for i in range(50))

    def test_deterministic(self):
        assert ValueGenerator(64, seed=1).value_for(7) == ValueGenerator(
            64, seed=1
        ).value_for(7)

    def test_redundancy_controls_compressibility(self):
        from repro.codec.compress import lz77_compress

        def payload(red):
            gen = ValueGenerator(100, redundancy=red, seed=3)
            return b"".join(gen.value_for(i) for i in range(200))

        compressible = len(lz77_compress(payload(0.9)))
        incompressible = len(lz77_compress(payload(0.0)))
        assert compressible < incompressible * 0.7

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ValueGenerator(-1)
        with pytest.raises(ValueError):
            ValueGenerator(10, redundancy=1.0)


class TestInsertWorkload:
    @pytest.mark.parametrize("dist", ["sequential", "uniform", "zipfian"])
    def test_lengths_and_sizes(self, dist):
        wl = InsertWorkload(n=100, distribution=dist, value_bytes=50)
        pairs = list(wl)
        assert len(pairs) == 100
        assert all(len(k) == 16 and len(v) == 50 for k, v in pairs)
        assert wl.entry_bytes == 66
        assert wl.total_bytes == 6600

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            list(InsertWorkload(n=1, distribution="gaussian"))

    def test_apply_to_db(self):
        from repro.db import DB
        from repro.devices import MemStorage
        from repro.lsm import Options

        wl = InsertWorkload(n=200, distribution="sequential")
        with DB(MemStorage(), Options(memtable_bytes=1 << 20)) as db:
            assert wl.apply_to(db) == 200
            assert db.get(format_key(150)) is not None

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=20)
    def test_deterministic_stream(self, n):
        a = list(InsertWorkload(n=n, seed=9))
        b = list(InsertWorkload(n=n, seed=9))
        assert a == b


class TestYCSB:
    def test_mix_validation(self):
        with pytest.raises(ValueError):
            YCSBWorkload("z", 10, 10)
        with pytest.raises(ValueError):
            YCSBWorkload("a", 10, 0)

    def test_load_phase(self):
        wl = YCSBWorkload("a", n_ops=10, record_count=25)
        loaded = list(wl.load_phase())
        assert len(loaded) == 25
        assert [k for k, _ in loaded] == sorted(k for k, _ in loaded)

    def test_mix_ratios_roughly_hold(self):
        wl = YCSBWorkload("b", n_ops=4000, record_count=100, seed=3)
        kinds = [op.kind for op in wl]
        reads = kinds.count("read")
        assert 0.92 < reads / 4000 < 0.98  # nominal 95%

    def test_workload_c_read_only(self):
        wl = YCSBWorkload("c", n_ops=500, record_count=100)
        assert all(op.kind == "read" for op in wl)

    def test_workload_d_inserts_fresh_keys(self):
        wl = YCSBWorkload("d", n_ops=2000, record_count=100, seed=1)
        inserts = [op for op in wl if op.kind == "insert"]
        assert inserts
        assert all(int(op.key) >= 100 for op in inserts)

    def test_apply_to_db_counts(self):
        from repro.db import DB
        from repro.devices import MemStorage
        from repro.lsm import Options

        wl = YCSBWorkload("a", n_ops=300, record_count=50, seed=2)
        with DB(MemStorage(), Options(memtable_bytes=1 << 20)) as db:
            for key, value in wl.load_phase():
                db.put(key, value)
            counts = wl.apply_to(db)
            assert sum(counts.values()) == 300
            assert set(counts) <= {"read", "update", "insert", "rmw"}
