"""Tests for trace record/replay."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db import DB
from repro.devices import MemStorage
from repro.lsm import Options
from repro.workload import (
    InsertWorkload,
    TraceError,
    TraceWriter,
    read_trace,
    record_workload,
    replay_trace,
)


class TestFormat:
    def test_writer_roundtrip(self):
        buf = io.StringIO()
        w = TraceWriter(buf)
        w.comment("header")
        w.put(b"key\x00", b"value\xff")
        w.delete(b"gone")
        w.get(b"probe")
        assert w.ops == 3
        ops = list(read_trace(buf.getvalue().splitlines()))
        assert ops == [
            ("put", b"key\x00", b"value\xff"),
            ("del", b"gone", b""),
            ("get", b"probe", b""),
        ]

    def test_blank_lines_and_comments_skipped(self):
        text = "# hi\n\nput 61 62\n   \n"
        assert list(read_trace(text.splitlines())) == [("put", b"a", b"b")]

    @pytest.mark.parametrize(
        "line",
        ["put 61", "del 61 62", "get", "frob 61", "put zz 61", "get q"],
    )
    def test_malformed_rejected(self, line):
        with pytest.raises(TraceError):
            list(read_trace([line]))

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "del", "get"]),
                st.binary(min_size=1, max_size=16),
                st.binary(max_size=24),
            ),
            max_size=40,
        )
    )
    def test_roundtrip_property(self, ops):
        buf = io.StringIO()
        w = TraceWriter(buf)
        for op, key, value in ops:
            if op == "put":
                w.put(key, value)
            elif op == "del":
                w.delete(key)
            else:
                w.get(key)
        parsed = list(read_trace(buf.getvalue().splitlines()))
        expected = [
            (op, key, value if op == "put" else b"") for op, key, value in ops
        ]
        assert parsed == expected


class TestReplay:
    def _options(self):
        return Options(memtable_bytes=8 * 1024, sstable_bytes=8 * 1024,
                       level1_bytes=32 * 1024, level_multiplier=4)

    def test_record_then_replay_identical_state(self):
        buf = io.StringIO()
        workload = InsertWorkload(n=300, distribution="uniform", seed=5)
        with DB(MemStorage(), self._options()) as db1:
            n = record_workload(workload, db1, TraceWriter(buf))
            assert n == 300
            state1 = dict(db1.items())

        with DB(MemStorage(), self._options()) as db2:
            counts = replay_trace(buf.getvalue().splitlines(), db2)
            assert counts["put"] == 300
            assert dict(db2.items()) == state1

    def test_replay_with_deletes_and_gets(self):
        buf = io.StringIO()
        w = TraceWriter(buf)
        w.put(b"a", b"1")
        w.put(b"b", b"2")
        w.delete(b"a")
        w.get(b"b")
        with DB(MemStorage(), self._options()) as db:
            counts = replay_trace(buf.getvalue().splitlines(), db)
            assert counts == {"put": 2, "del": 1, "get": 1}
            assert dict(db.items()) == {b"b": b"2"}

    def test_replay_limit(self):
        buf = io.StringIO()
        w = TraceWriter(buf)
        for i in range(10):
            w.put(b"k%d" % i, b"v")
        with DB(MemStorage(), self._options()) as db:
            counts = replay_trace(buf.getvalue().splitlines(), db, limit=4)
            assert counts["put"] == 4
