"""Tests for Resource (FIFO server pools) and utilisation accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Resource, SimulationError, Simulator


def _job(sim, res, service, log=None, tag=""):
    yield from res.acquire(service, tag)
    if log is not None:
        log.append((sim.now, tag))


class TestResourceSerialization:
    def test_capacity_one_serialises(self):
        sim = Simulator()
        res = Resource(sim, capacity=1, name="disk")
        log = []
        for i in range(3):
            sim.process(_job(sim, res, 2.0, log, f"j{i}"))
        sim.run()
        assert log == [(2.0, "j0"), (4.0, "j1"), (6.0, "j2")]

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        log = []
        for i in range(4):
            sim.process(_job(sim, res, 3.0, log, f"j{i}"))
        sim.run()
        assert [t for t, _ in log] == [3.0, 3.0, 6.0, 6.0]

    def test_fifo_grant_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []
        for i in range(5):
            sim.process(_job(sim, res, 1.0, log, str(i)))
        sim.run()
        assert [tag for _, tag in log] == ["0", "1", "2", "3", "4"]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)

    def test_negative_service_time(self):
        sim = Simulator()
        res = Resource(sim)

        def bad(sim):
            yield from res.acquire(-1.0)

        sim.process(bad(sim))
        with pytest.raises(ValueError):
            sim.run()


class TestReleaseSemantics:
    def test_release_unheld_raises(self):
        sim = Simulator()
        res = Resource(sim)

        def proc(sim):
            req = res.request()
            yield req
            res.release(req)
            res.release(req)  # double release

        sim.process(proc(sim))
        with pytest.raises(SimulationError):
            sim.run()

    def test_release_on_exception_via_acquire(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def failing(sim):
            req = res.request()
            yield req
            try:
                yield sim.timeout(1.0)
                raise RuntimeError("mid-hold failure")
            finally:
                res.release(req)

        def waiter(sim):
            yield from res.acquire(1.0)
            return sim.now

        sim.process(failing(sim))
        w = sim.process(waiter(sim))
        with pytest.raises(RuntimeError):
            sim.run()
        sim.run()  # resume past the surfaced failure
        # The slot was still freed, so the waiter completed at t=2.
        assert w.value == 2.0

    def test_queue_length_and_in_use(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        observed = []

        def holder(sim):
            yield from res.acquire(5.0)

        def prober(sim):
            yield sim.timeout(1.0)
            observed.append((res.in_use, res.queue_length))

        sim.process(holder(sim))
        sim.process(holder(sim))
        sim.process(prober(sim))
        sim.run()
        assert observed == [(1, 1)]


class TestUtilization:
    def test_busy_time_sums_service(self):
        sim = Simulator()
        res = Resource(sim, capacity=1, name="cpu")
        for _ in range(4):
            sim.process(_job(sim, res, 2.5))
        span = sim.run()
        assert res.stats.busy_time() == pytest.approx(10.0)
        assert res.stats.utilization(span) == pytest.approx(1.0)

    def test_idle_resource_zero_utilization(self):
        res = Resource(Simulator(), capacity=3)
        assert res.stats.utilization(100.0) == 0.0
        assert res.stats.utilization(0.0) == 0.0

    def test_capacity_scales_utilization(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        sim.process(_job(sim, res, 4.0))
        span = sim.run()
        # One of two slots busy the whole span.
        assert res.stats.utilization(span) == pytest.approx(0.5)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=1, max_size=20),
        st.integers(min_value=1, max_value=4),
    )
    def test_makespan_bounds(self, services, capacity):
        """Makespan is bounded by work conservation on a FIFO pool."""
        sim = Simulator()
        res = Resource(sim, capacity=capacity)
        for s in services:
            sim.process(_job(sim, res, s))
        makespan = sim.run()
        total = sum(services)
        assert makespan >= max(services) - 1e-9
        assert makespan >= total / capacity - 1e-9
        assert makespan <= total + 1e-9
