"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Simulator, SimulationError


class TestTimeouts:
    def test_single_timeout_advances_clock(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(5.0)

        sim.process(proc(sim))
        assert sim.run() == 5.0

    def test_zero_delay(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(0.0)
            return "ok"

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == "ok"
        assert sim.now == 0.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()
        times = []

        def proc(sim):
            for d in (1.0, 2.0, 3.5):
                yield sim.timeout(d)
                times.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert times == [1.0, 3.0, 6.5]

    def test_run_until_stops_early(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(100.0)

        sim.process(proc(sim))
        assert sim.run(until=10.0) == 10.0
        assert sim.peek() == 100.0

    def test_run_until_past_raises(self):
        sim = Simulator()
        sim.process(iter([]) and _ticker(sim, 5))
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=sim.now - 1)


def _ticker(sim, n):
    for _ in range(n):
        yield sim.timeout(1.0)


class TestProcesses:
    def test_process_return_value(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(1)
            return 42

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 42

    def test_two_processes_interleave(self):
        sim = Simulator()
        trace = []

        def worker(sim, name, delay):
            yield sim.timeout(delay)
            trace.append((sim.now, name))
            yield sim.timeout(delay)
            trace.append((sim.now, name))

        sim.process(worker(sim, "a", 2.0))
        sim.process(worker(sim, "b", 3.0))
        sim.run()
        assert trace == [(2.0, "a"), (3.0, "b"), (4.0, "a"), (6.0, "b")]

    def test_process_waits_on_process(self):
        sim = Simulator()

        def child(sim):
            yield sim.timeout(7.0)
            return "payload"

        def parent(sim):
            value = yield sim.process(child(sim))
            return (sim.now, value)

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == (7.0, "payload")

    def test_exception_propagates_to_waiter(self):
        sim = Simulator()

        def failing(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("boom")

        def parent(sim):
            try:
                yield sim.process(failing(sim))
            except RuntimeError as exc:
                return f"caught {exc}"

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == "caught boom"

    def test_unhandled_failure_surfaces(self):
        sim = Simulator()

        def failing(sim):
            yield sim.timeout(1.0)
            raise ValueError("unobserved")

        sim.process(failing(sim))
        with pytest.raises(ValueError, match="unobserved"):
            sim.run()

    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_yield_non_event_rejected(self):
        sim = Simulator()

        def bad(sim):
            yield 42

        sim.process(bad(sim))
        with pytest.raises(SimulationError):
            sim.run()


class TestEvents:
    def test_manual_event_wakes_waiter(self):
        sim = Simulator()
        gate = sim.event("gate")
        log = []

        def waiter(sim):
            value = yield gate
            log.append((sim.now, value))

        def opener(sim):
            yield sim.timeout(4.0)
            gate.succeed("open!")

        sim.process(waiter(sim))
        sim.process(opener(sim))
        sim.run()
        assert log == [(4.0, "open!")]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_multiple_waiters_on_one_event(self):
        sim = Simulator()
        gate = sim.event()
        woken = []

        def waiter(sim, i):
            yield gate
            woken.append(i)

        for i in range(3):
            sim.process(waiter(sim, i))
        gate.succeed()
        sim.run()
        assert woken == [0, 1, 2]


class TestAllOf:
    def test_waits_for_slowest(self):
        sim = Simulator()

        def parent(sim):
            procs = [sim.process(_sleeper(sim, d)) for d in (1.0, 5.0, 3.0)]
            values = yield sim.all_of(procs)
            return (sim.now, values)

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == (5.0, [1.0, 5.0, 3.0])

    def test_empty_set_fires_immediately(self):
        sim = Simulator()

        def parent(sim):
            yield sim.all_of([])
            return sim.now

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == 0.0


def _sleeper(sim, delay):
    yield sim.timeout(delay)
    return delay


class TestDeterminism:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
    def test_makespan_is_max_delay(self, delays):
        sim = Simulator()
        for d in delays:
            sim.process(_sleeper(sim, d))
        assert sim.run() == pytest.approx(max(delays))

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.floats(min_value=0.0, max_value=10.0)),
            max_size=20,
        )
    )
    def test_same_input_same_trace(self, jobs):
        def run_once():
            sim = Simulator()
            trace = []

            def worker(sim, wid, delay):
                yield sim.timeout(delay)
                trace.append((sim.now, wid))

            for wid, delay in jobs:
                sim.process(worker(sim, wid, delay))
            sim.run()
            return trace

        assert run_once() == run_once()

    def test_fifo_tie_breaking(self):
        sim = Simulator()
        order = []

        def worker(sim, i):
            yield sim.timeout(1.0)
            order.append(i)

        for i in range(10):
            sim.process(worker(sim, i))
        sim.run()
        assert order == list(range(10))


class TestAnyOf:
    def test_first_completion_wins(self):
        sim = Simulator()

        def parent(sim):
            procs = [sim.process(_sleeper(sim, d)) for d in (5.0, 2.0, 8.0)]
            index, value = yield sim.any_of(procs)
            return (sim.now, index, value)

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == (2.0, 1, 2.0)

    def test_already_completed_event(self):
        sim = Simulator()
        done = sim.event()
        done.succeed("early")

        def parent(sim):
            # Drain the calendar so `done` is processed first.
            yield sim.timeout(0)
            index, value = yield sim.any_of([done, sim.event()])
            return (index, value)

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == (0, "early")

    def test_failure_propagates(self):
        sim = Simulator()

        def failing(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("boom")

        def parent(sim):
            try:
                yield sim.any_of(
                    [sim.process(failing(sim)), sim.process(_sleeper(sim, 9))]
                )
            except RuntimeError:
                return "caught"

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == "caught"

    def test_empty_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.any_of([])

    def test_later_completions_ignored(self):
        sim = Simulator()
        results = []

        def parent(sim):
            procs = [sim.process(_sleeper(sim, d)) for d in (1.0, 2.0)]
            results.append((yield sim.any_of(procs)))
            # Let the slower one finish too; nothing should break.
            yield sim.all_of(procs)
            return sim.now

        p = sim.process(parent(sim))
        sim.run()
        assert results == [(0, 1.0)]
        assert p.value == 2.0
