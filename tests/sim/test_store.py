"""Tests for the bounded FIFO Store (pipeline inter-stage queue)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Simulator, Store, StoreClosed


def _producer(sim, store, items, delay=0.0):
    for item in items:
        if delay:
            yield sim.timeout(delay)
        yield store.put(item)
    store.close()


def _consumer(sim, store, out, delay=0.0):
    while True:
        try:
            item = yield store.get()
        except StoreClosed:
            return
        if delay:
            yield sim.timeout(delay)
        out.append(item)


class TestFIFO:
    def test_order_preserved(self):
        sim = Simulator()
        store = Store(sim, capacity=2)
        out = []
        sim.process(_producer(sim, store, list(range(10))))
        sim.process(_consumer(sim, store, out))
        sim.run()
        assert out == list(range(10))

    def test_bounded_put_blocks(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        trace = []

        def producer(sim):
            for i in range(3):
                yield store.put(i)
                trace.append(("put", sim.now, i))
            store.close()

        def consumer(sim):
            while True:
                try:
                    item = yield store.get()
                except StoreClosed:
                    return
                yield sim.timeout(2.0)
                trace.append(("got", sim.now, item))

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        # put(0) and put(1) go through at t=0 (one handed to the
        # consumer, one buffered); put(2) must wait for a get at t=2.
        assert ("put", 0.0, 0) in trace
        assert ("put", 0.0, 1) in trace
        assert ("put", 2.0, 2) in trace

    def test_unbounded_never_blocks(self):
        sim = Simulator()
        store = Store(sim, capacity=None)

        def producer(sim):
            for i in range(1000):
                yield store.put(i)
            return sim.now

        p = sim.process(producer(sim))
        sim.run()
        assert p.value == 0.0
        assert len(store) == 1000

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        out = []

        def slow_producer(sim):
            yield sim.timeout(5.0)
            yield store.put("x")
            store.close()

        sim.process(_consumer(sim, store, out))
        sim.process(slow_producer(sim))
        sim.run()
        assert out == ["x"]
        assert sim.now == 5.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Store(Simulator(), capacity=0)


class TestClose:
    def test_close_drains_remaining_items(self):
        sim = Simulator()
        store = Store(sim, capacity=None)
        out = []

        def producer(sim):
            for i in range(3):
                yield store.put(i)
            store.close()

        sim.process(producer(sim))
        sim.process(_consumer(sim, store, out))
        sim.run()
        assert out == [0, 1, 2]

    def test_put_after_close_raises(self):
        sim = Simulator()
        store = Store(sim)
        store.close()
        with pytest.raises(StoreClosed):
            store.put(1)

    def test_waiting_getter_fails_on_close(self):
        sim = Simulator()
        store = Store(sim)
        result = []

        def consumer(sim):
            try:
                yield store.get()
            except StoreClosed:
                result.append("closed")

        def closer(sim):
            yield sim.timeout(1.0)
            store.close()

        sim.process(consumer(sim))
        sim.process(closer(sim))
        sim.run()
        assert result == ["closed"]

    def test_double_close_is_noop(self):
        store = Store(Simulator())
        store.close()
        store.close()
        assert store.closed


class TestOccupancy:
    def test_max_occupancy_tracked(self):
        sim = Simulator()
        store = Store(sim, capacity=5)

        def producer(sim):
            for i in range(5):
                yield store.put(i)
            store.close()

        out = []

        def lazy_consumer(sim):
            yield sim.timeout(10.0)
            while True:
                try:
                    out.append((yield store.get()))
                except StoreClosed:
                    return

        sim.process(producer(sim))
        sim.process(lazy_consumer(sim))
        sim.run()
        assert store.max_occupancy == 5
        assert out == list(range(5))


@given(
    items=st.lists(st.integers(), max_size=50),
    capacity=st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    prod_delay=st.floats(min_value=0.0, max_value=2.0),
    cons_delay=st.floats(min_value=0.0, max_value=2.0),
)
def test_store_property_all_items_delivered_in_order(
    items, capacity, prod_delay, cons_delay
):
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    out = []
    sim.process(_producer(sim, store, items, prod_delay))
    sim.process(_consumer(sim, store, out, cons_delay))
    sim.run()
    assert out == items
    if capacity is not None:
        assert store.max_occupancy <= capacity
