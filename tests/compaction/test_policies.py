"""Unit tests for the compaction-policy subsystem: spec strings, the
registry, per-policy trigger/pick behaviour, the sorted-run metadata on
:class:`Version`, and the manifest's run/policy tags."""

import pytest

from repro.compaction import (
    CompactionTask,
    LazyLeveledPolicy,
    LeveledPolicy,
    TieredPolicy,
    available_policies,
    canonical_spec,
    make_policy,
    parse_spec,
)
from repro.db.manifest import VersionEdit
from repro.lsm.ikey import KIND_VALUE, encode_internal_key
from repro.lsm.options import Options
from repro.lsm.version import FileMetaData, Version


def _ik(user: bytes, seq: int = 1) -> bytes:
    return encode_internal_key(user, seq, KIND_VALUE)


def _meta(number, lo, hi, size=1024, run=0):
    return FileMetaData(number, size, _ik(lo), _ik(hi), run=run)


def _options(**kw):
    defaults = dict(level1_bytes=10 * 1024, level_multiplier=10)
    defaults.update(kw)
    return Options(**defaults)


class TestSpecs:
    def test_parse_plain_name(self):
        assert parse_spec("leveled") == ("leveled", {})

    def test_parse_params(self):
        assert parse_spec("tiered:runs=4") == ("tiered", {"runs": "4"})
        assert parse_spec(" tiered : runs = 4 ")[1] == {"runs": "4"}

    def test_parse_rejects_garbage(self):
        for bad in ("", "   ", "tiered:runs", "tiered:=4", "tiered:runs="):
            with pytest.raises(ValueError):
                parse_spec(bad)

    def test_registry_lists_builtins(self):
        names = available_policies()
        assert {"leveled", "tiered", "lazy-leveled"} <= set(names)

    def test_make_policy_unknown_name(self):
        with pytest.raises(ValueError, match="unknown compaction policy"):
            make_policy("rocket", _options())

    def test_unknown_params_rejected(self):
        with pytest.raises(ValueError):
            make_policy("leveled:runs=4", _options())
        with pytest.raises(ValueError):
            make_policy("tiered:bogus=1", _options())

    def test_canonical_spec_resolves_defaults(self):
        opts = _options(l0_compaction_trigger=4)
        assert canonical_spec(None, opts) == "leveled"
        assert canonical_spec("leveled", opts) == "leveled"
        # Bare "tiered" picks up the trigger as its run count.
        assert canonical_spec("tiered", opts) == "tiered:runs=4"
        assert canonical_spec("tiered:runs=3", opts) == "tiered:runs=3"
        assert (
            canonical_spec("lazy-leveled:runs=3", opts) == "lazy-leveled:runs=3"
        )

    def test_tiered_run_trigger_bounds(self):
        with pytest.raises(ValueError):
            make_policy("tiered:runs=1", _options())
        # A run trigger above the stall threshold would stall writes
        # forever before a merge is ever due.
        opts = _options(l0_compaction_trigger=2, l0_stop_writes_trigger=4)
        with pytest.raises(ValueError, match="stall"):
            make_policy("tiered:runs=5", opts)
        with pytest.raises(ValueError, match="stall"):
            make_policy("lazy-leveled:runs=5", opts)


class TestVersionRuns:
    def test_l0_files_are_their_own_runs(self):
        v = Version(_options())
        v.add_file(0, _meta(5, b"a", b"z"))
        v.add_file(0, _meta(6, b"a", b"z"))
        assert v.num_runs(0) == 2
        assert [run for run, _ in v.runs(0)] == [5, 6]

    def test_runs_grouped_and_ordered(self):
        v = Version(_options())
        v.add_file(1, _meta(3, b"m", b"z", run=1))
        v.add_file(1, _meta(1, b"a", b"m", run=0))
        v.add_file(1, _meta(2, b"n", b"z", run=0))
        v.add_file(1, _meta(4, b"a", b"l", run=1))
        assert v.num_runs(1) == 2
        assert v.max_run_id(1) == 1
        runs = v.runs(1)
        assert [run for run, _ in runs] == [0, 1]
        # Files within each run stay key-sorted.
        assert [m.number for m in runs[0][1]] == [1, 2]
        assert [m.number for m in runs[1][1]] == [4, 3]
        v.check_invariants()

    def test_invariants_allow_overlap_across_runs_only(self):
        v = Version(_options())
        v.add_file(1, _meta(1, b"a", b"m", run=0))
        v.add_file(1, _meta(2, b"a", b"m", run=1))  # overlaps run 0: fine
        v.check_invariants()
        v.add_file(1, _meta(3, b"a", b"m", run=1))  # overlap *within* run 1
        with pytest.raises(AssertionError):
            v.check_invariants()

    def test_files_for_get_newest_run_first(self):
        v = Version(_options())
        v.add_file(1, _meta(1, b"a", b"z", run=0))
        v.add_file(1, _meta(2, b"a", b"z", run=1))
        hits = v.files_for_get(b"k")
        assert [m.number for _, m in hits] == [2, 1]

    def test_describe_reports_runs(self):
        v = Version(_options())
        v.add_file(1, _meta(1, b"a", b"m", run=0))
        v.add_file(1, _meta(2, b"a", b"m", run=1))
        assert "2 runs" in v.describe()


class TestManifestRoundTrip:
    def test_run_and_policy_survive_encode_decode(self):
        edit = VersionEdit(policy_spec="tiered:runs=3")
        edit.add_file(1, _meta(7, b"a", b"m", run=2))
        edit.add_file(2, _meta(8, b"n", b"z", run=0))
        got = VersionEdit.decode(edit.encode())
        assert got.policy_spec == "tiered:runs=3"
        (lvl1, m1), (lvl2, m2) = got.new_files
        assert (lvl1, m1.number, m1.run) == (1, 7, 2)
        assert (lvl2, m2.number, m2.run) == (2, 8, 0)

    def test_run_zero_files_keep_legacy_encoding(self):
        """run-0 files must encode byte-identically to the pre-run
        format so old stores replay under new code and vice versa."""
        with_run = VersionEdit()
        with_run.add_file(1, _meta(7, b"a", b"m", run=0))
        legacy = VersionEdit()
        legacy.add_file(1, FileMetaData(7, 1024, _ik(b"a"), _ik(b"m")))
        assert with_run.encode() == legacy.encode()

    def test_apply_sets_policy_on_version(self):
        v = Version(_options())
        edit = VersionEdit(policy_spec="lazy-leveled:runs=4")
        edit.apply(v)
        assert v.policy_spec == "lazy-leveled:runs=4"


class TestCompactionTask:
    def test_output_level_defaults_to_next(self):
        task = CompactionTask(1, [_meta(1, b"a", b"m")], [])
        assert task.output_level == 2

    def test_in_place_merge_is_never_a_trivial_move(self):
        task = CompactionTask(
            3, [_meta(1, b"a", b"m")], [], output_level=3, output_run=0
        )
        assert not task.is_trivial_move()
        down = CompactionTask(3, [_meta(1, b"a", b"m")], [])
        assert down.is_trivial_move()


class TestLeveledPolicy:
    def test_spec_and_default(self):
        opts = _options()
        policy = make_policy(None, opts)
        assert isinstance(policy, LeveledPolicy)
        assert policy.spec() == "leveled"

    def test_l0_trigger_by_file_count(self):
        opts = _options(l0_compaction_trigger=2)
        policy = LeveledPolicy(opts)
        v = Version(opts)
        v.add_file(0, _meta(1, b"a", b"z"))
        assert not policy.needs_compaction(v)
        v.add_file(0, _meta(2, b"a", b"z"))
        assert policy.needs_compaction(v)
        task = policy.pick(v)
        assert task.level == 0 and task.output_level == 1
        assert task.output_run == 0

    def test_leveled_outputs_always_run_zero(self):
        opts = _options(level1_bytes=1024)
        policy = LeveledPolicy(opts)
        v = Version(opts)
        v.add_file(1, _meta(1, b"a", b"m", size=4096))
        task = policy.pick(v)
        assert task is not None and task.output_run == 0


class TestTieredPolicy:
    def test_trigger_counts_runs_not_bytes(self):
        opts = _options(l0_compaction_trigger=2)
        policy = TieredPolicy(opts)
        v = Version(opts)
        # Two huge runs on L1: leveling would compact on bytes; tiering
        # waits for the run count.
        v.add_file(1, _meta(1, b"a", b"z", size=10**9, run=0))
        assert not policy.needs_compaction(v)
        v.add_file(1, _meta(2, b"a", b"z", size=10**9, run=1))
        assert policy.needs_compaction(v)

    def test_pick_merges_whole_level_to_fresh_run(self):
        opts = _options(l0_compaction_trigger=2)
        policy = TieredPolicy(opts)
        v = Version(opts)
        v.add_file(1, _meta(1, b"a", b"m", run=0))
        v.add_file(1, _meta(2, b"n", b"z", run=0))
        v.add_file(1, _meta(3, b"a", b"z", run=1))
        v.add_file(2, _meta(4, b"a", b"z", run=5))
        task = policy.pick(v)
        assert task.level == 1 and task.output_level == 2
        assert sorted(m.number for m in task.inputs_upper) == [1, 2, 3]
        assert task.inputs_lower == []  # no rewrite at the target
        assert task.output_run == 6  # fresh run above the existing one

    def test_last_level_merges_in_place(self):
        opts = _options(l0_compaction_trigger=2, num_levels=3)
        policy = TieredPolicy(opts)
        v = Version(opts)
        v.add_file(2, _meta(1, b"a", b"z", run=0))
        v.add_file(2, _meta(2, b"a", b"z", run=1))
        task = policy.pick(v)
        assert task.level == 2 and task.output_level == 2
        assert task.output_run == 0
        # A single collapsed run must not re-trigger (no merge loop).
        v2 = Version(opts)
        v2.add_file(2, _meta(1, b"a", b"z", run=0))
        v2.add_file(2, _meta(2, b"m", b"z", run=0))
        assert policy._merge_level(v2, 2) is None

    def test_write_stall_counts_runs(self):
        opts = _options(l0_compaction_trigger=2, l0_stop_writes_trigger=3)
        policy = TieredPolicy(opts)
        v = Version(opts)
        for n in range(3):
            v.add_file(0, _meta(n + 1, b"a", b"z"))
        assert policy.write_stall(v)


class TestLazyLeveledPolicy:
    def test_sink_level_never_scores(self):
        opts = _options(l0_compaction_trigger=2, num_levels=3)
        policy = LazyLeveledPolicy(opts)
        v = Version(opts)
        v.add_file(2, _meta(1, b"a", b"z", run=0))
        v.add_file(2, _meta(2, b"a", b"z", run=1))
        assert not policy.needs_compaction(v)
        assert policy.pick(v) is None

    def test_penultimate_level_does_a_leveled_merge(self):
        opts = _options(l0_compaction_trigger=2, num_levels=3)
        policy = LazyLeveledPolicy(opts)
        v = Version(opts)
        v.add_file(1, _meta(1, b"a", b"m", run=0))
        v.add_file(1, _meta(2, b"a", b"m", run=1))
        v.add_file(2, _meta(3, b"a", b"f", run=0))
        v.add_file(2, _meta(4, b"x", b"z", run=0))  # outside the range
        task = policy.pick(v)
        assert task.level == 1 and task.output_level == 2
        assert task.output_run == 0
        assert [m.number for m in task.inputs_lower] == [3]

    def test_upper_levels_tier(self):
        opts = _options(l0_compaction_trigger=2, num_levels=4)
        policy = LazyLeveledPolicy(opts)
        v = Version(opts)
        v.add_file(1, _meta(1, b"a", b"z", run=0))
        v.add_file(1, _meta(2, b"a", b"z", run=1))
        task = policy.pick(v)
        assert task.output_level == 2 and task.inputs_lower == []
        assert task.output_run == 0  # L2 empty -> first run id
