"""DB- and cluster-level behaviour of compaction policies: persistence
in the manifest, reopen adoption, mismatch errors, stalls on run count,
properties, repair, and the dbtool surface over tiered layouts."""

import random

import pytest

from repro.cluster import ShardedDB
from repro.compaction import PolicyMismatchError
from repro.db import DB
from repro.db.verify import repair_db, verify_db
from repro.devices import MemStorage, OSStorage
from repro.lsm import Options
from repro.tools.dbtool import main as dbtool_main

POLICIES = ["leveled", "tiered:runs=2", "lazy-leveled:runs=2"]


def tiny_options(**kw):
    defaults = dict(
        memtable_bytes=4096,
        sstable_bytes=4096,
        block_bytes=1024,
        level1_bytes=16384,
        level_multiplier=4,
        l0_compaction_trigger=2,
    )
    defaults.update(kw)
    return Options(**defaults)


def fill(db, n=400, seed=0):
    """Shuffled overwrite-heavy workload so compactions actually merge."""
    expected = {}
    order = list(range(n)) * 2
    random.Random(seed).shuffle(order)
    for i, key_id in enumerate(order):
        k = b"key-%04d" % key_id
        v = b"v-%d-%d" % (key_id, i)
        db.put(k, v)
        expected[k] = v
    for key_id in range(0, n, 7):
        db.delete(b"key-%04d" % key_id)
        del expected[b"key-%04d" % key_id]
    return expected


class TestPersistence:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_reopen_adopts_persisted_policy(self, policy):
        storage = MemStorage()
        db = DB(storage, tiny_options(compaction_policy=policy))
        spec = db.policy.spec()
        expected = fill(db)
        db.close()

        # compaction_policy=None means "whatever the store says".
        db = DB(storage, tiny_options())
        assert db.policy.spec() == spec
        for k, v in expected.items():
            assert db.get(k) == v
        db.close()

    def test_mismatched_reopen_raises(self):
        storage = MemStorage()
        DB(storage, tiny_options(compaction_policy="tiered:runs=2")).close()
        with pytest.raises(PolicyMismatchError) as exc:
            DB(storage, tiny_options(compaction_policy="leveled"))
        assert "tiered:runs=2" in str(exc.value)
        assert "leveled" in str(exc.value)

    def test_equivalent_spec_reopen_is_fine(self):
        storage = MemStorage()
        # Bare "tiered" canonicalizes via l0_compaction_trigger.
        DB(storage, tiny_options(compaction_policy="tiered")).close()
        db = DB(storage, tiny_options(compaction_policy="tiered:runs=2"))
        assert db.policy.spec() == "tiered:runs=2"
        db.close()

    def test_legacy_store_defaults_to_leveled(self):
        storage = MemStorage()
        DB(storage, tiny_options()).close()
        db = DB(storage, tiny_options())
        assert db.policy.spec() == "leveled"
        db.close()

    @pytest.mark.parametrize("policy", ["tiered:runs=2", "lazy-leveled:runs=2"])
    def test_repair_carries_policy_forward(self, policy):
        storage = MemStorage()
        db = DB(storage, tiny_options(compaction_policy=policy))
        expected = fill(db, n=200)
        db.close()

        result = repair_db(storage, tiny_options())
        assert result["salvaged"]
        db = DB(storage, tiny_options())
        assert db.policy.spec() == policy
        for k, v in expected.items():
            assert db.get(k) == v
        db.close()


class TestTieredReads:
    @pytest.mark.parametrize("policy", ["tiered:runs=2", "lazy-leveled:runs=2"])
    def test_point_reads_and_scans_over_stacked_runs(self, policy):
        storage = MemStorage()
        db = DB(storage, tiny_options(compaction_policy=policy))
        expected = fill(db)
        db.flush()
        # Mid-shape: multiple runs alive at once.
        assert db.get(b"key-0001") == expected[b"key-0001"]
        assert list(db.scan()) == sorted(expected.items())
        db.compact_all()
        assert list(db.scan()) == sorted(expected.items())
        assert list(db.scan_reverse()) == sorted(expected.items(), reverse=True)
        db.close()
        report = verify_db(storage, tiny_options())
        assert report.ok, report.render()

    def test_tiered_write_stall_fires_on_run_count_and_recovers(self):
        storage = MemStorage()
        db = DB(
            storage,
            tiny_options(
                compaction_policy="tiered:runs=2", l0_stop_writes_trigger=3
            ),
        )
        # Hold the compactor back so L0 runs pile up to the stop
        # trigger (the stall predicate counts sorted runs, and at L0
        # every flushed file is one run).
        real_pick = db.policy.pick
        db.policy.pick = lambda version: None
        i = 0
        while db.version.num_runs(0) < 3:
            db.put(b"key-%06d" % i, b"x" * 64)
            i += 1
        db.policy.pick = real_pick
        assert db.policy.write_stall(db.version)

        db.put(b"key-final", b"v")  # must stall, drain, then complete
        assert db.stats.write_stalls >= 1
        assert not db.policy.write_stall(db.version)
        assert db.get(b"key-final") == b"v"
        for j in range(i):
            assert db.get(b"key-%06d" % j) == b"x" * 64
        db.close()


class TestProperties:
    def test_compaction_policy_property(self):
        db = DB(MemStorage(), tiny_options(compaction_policy="tiered:runs=2"))
        assert db.get_property("compaction-policy") == "tiered:runs=2"
        db.close()

    def test_compaction_log_reports_policy_and_runs(self):
        db = DB(MemStorage(), tiny_options(compaction_policy="tiered:runs=2"))
        assert db.get_property("compaction-log") == "(no compactions yet)"
        fill(db)
        db.flush()
        db.compact_all()
        log = db.get_property("compaction-log")
        assert log.startswith("policy=tiered:runs=2 runs[L0=")
        assert "policy=tiered:runs=2" in log.splitlines()[1]
        db.close()

    def test_describe_leads_with_policy(self):
        db = DB(MemStorage(), tiny_options(compaction_policy="lazy-leveled:runs=2"))
        fill(db, n=100)
        db.flush()
        desc = db.describe()
        assert desc.splitlines()[0] == "policy=lazy-leveled:runs=2"
        assert "run" in desc  # per-level run counts from Version.describe
        db.close()


class TestShardedDB:
    def test_policy_passthrough_and_properties(self):
        cluster = ShardedDB.in_memory(
            3, options=tiny_options(compaction_policy="tiered:runs=2")
        )
        try:
            assert cluster.policy.spec() == "tiered:runs=2"
            assert cluster.get_property("compaction-policy") == "tiered:runs=2"
            assert "policy=tiered:runs=2" in cluster.get_property("cluster")
            for i in range(200):
                cluster.put(b"key-%04d" % i, b"v-%d" % i)
            assert cluster.get(b"key-0042") == b"v-42"
        finally:
            cluster.close()

    def test_policy_persists_across_cluster_reopen(self, tmp_path):
        path = str(tmp_path / "cluster")
        cluster = ShardedDB.open_path(
            path, 2, options=tiny_options(compaction_policy="tiered:runs=2")
        )
        for i in range(100):
            cluster.put(b"key-%04d" % i, b"v-%d" % i)
        cluster.close()

        reopened = ShardedDB.open_path(path, options=tiny_options())
        try:
            assert reopened.policy.spec() == "tiered:runs=2"
            assert reopened.get(b"key-0001") == b"v-1"
        finally:
            reopened.close()

        with pytest.raises(PolicyMismatchError):
            ShardedDB.open_path(
                path, options=tiny_options(compaction_policy="leveled")
            )


class TestDbtool:
    @pytest.fixture()
    def tiered_dir(self, tmp_path):
        path = str(tmp_path / "db")
        db = DB(
            OSStorage(path), tiny_options(compaction_policy="tiered:runs=2")
        )
        fill(db, n=300)
        db.flush()
        db.close()
        return path

    def test_fsck_understands_tiered_layout(self, tiered_dir, capsys):
        assert dbtool_main(["fsck", tiered_dir]) == 0
        assert "OK" in capsys.readouterr().out

    def test_stats_reports_policy_and_runs(self, tiered_dir, capsys):
        assert dbtool_main(["stats", tiered_dir]) == 0
        out = capsys.readouterr().out
        assert "policy: tiered:runs=2" in out
        assert "runs per level:" in out

    def test_stats_policy_flag_mismatch_fails_loudly(self, tiered_dir):
        with pytest.raises(PolicyMismatchError):
            dbtool_main(
                ["stats", tiered_dir, "--compaction-policy", "leveled"]
            )

    def test_compact_honours_persisted_policy(self, tiered_dir, capsys):
        assert dbtool_main(["compact", tiered_dir]) == 0
        assert "tiered:runs=2" in capsys.readouterr().out
        assert dbtool_main(["fsck", tiered_dir]) == 0
