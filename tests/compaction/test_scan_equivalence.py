"""Policy equivalence: the compaction policy decides *where bytes
live*, never *what the store contains*.  One workload — inserts,
overwrites, deletes, re-inserts — applied identically to a store under
each policy must produce byte-identical full scans, forward and
reverse, both mid-shape (runs still stacked) and after a full manual
compaction, and identical point lookups for every key ever touched."""

import random

import pytest

from repro.db import DB
from repro.devices import MemStorage
from repro.lsm import Options

POLICIES = ["leveled", "tiered:runs=2", "lazy-leveled:runs=2"]


def tiny_options(policy):
    return Options(
        memtable_bytes=4096,
        sstable_bytes=4096,
        block_bytes=1024,
        level1_bytes=16384,
        level_multiplier=4,
        l0_compaction_trigger=2,
        compaction_policy=policy,
    )


def apply_workload(db, n_keys=350, n_ops=1400, seed=7):
    """Deterministic mixed mutation stream; returns the model dict."""
    rng = random.Random(seed)
    model = {}
    for i in range(n_ops):
        key = b"key-%04d" % rng.randrange(n_keys)
        roll = rng.random()
        if roll < 0.15:
            db.delete(key)
            model.pop(key, None)
        else:
            value = b"v-%d-%d" % (i, rng.randrange(1000))
            db.put(key, value)
            model[key] = value
    return model


@pytest.fixture(scope="module")
def stores():
    """The same workload into one store per policy (module-scoped: the
    fill is the expensive part and every test reads the same state)."""
    out = {}
    for policy in POLICIES:
        db = DB(MemStorage(), tiny_options(policy))
        model = apply_workload(db)
        db.flush()
        out[policy] = (db, model)
    yield out
    for db, _ in out.values():
        db.close()


class TestScanEquivalence:
    def test_models_agree(self, stores):
        models = [model for _, model in stores.values()]
        assert models[0] == models[1] == models[2]

    def test_forward_scans_identical_mid_shape(self, stores):
        scans = {p: list(db.scan()) for p, (db, _) in stores.items()}
        _, model = stores["leveled"]
        assert scans["leveled"] == sorted(model.items())
        assert scans["leveled"] == scans["tiered:runs=2"]
        assert scans["leveled"] == scans["lazy-leveled:runs=2"]

    def test_reverse_scans_identical_mid_shape(self, stores):
        scans = {p: list(db.scan_reverse()) for p, (db, _) in stores.items()}
        _, model = stores["leveled"]
        assert scans["leveled"] == sorted(model.items(), reverse=True)
        assert len(set(map(tuple, scans.values()))) == 1

    def test_range_scans_identical(self, stores):
        lo, hi = b"key-0050", b"key-0200"
        scans = [
            list(db.scan(lo, hi)) for db, _ in stores.values()
        ]
        assert scans[0] and scans[0] == scans[1] == scans[2]

    def test_point_lookups_identical(self, stores):
        (_, model) = stores["leveled"]
        for key_id in range(350):
            key = b"key-%04d" % key_id
            want = model.get(key)
            for policy, (db, _) in stores.items():
                assert db.get(key) == want, (policy, key)

    def test_scans_identical_after_full_compaction(self, stores):
        for db, _ in stores.values():
            db.compact_all()
        _, model = stores["leveled"]
        for policy, (db, _) in stores.items():
            assert list(db.scan()) == sorted(model.items()), policy
            assert list(db.scan_reverse()) == sorted(
                model.items(), reverse=True
            ), policy

    def test_layouts_actually_differed(self, stores):
        """Guard against vacuous equivalence: the tiered store must
        have stacked multiple runs on some level at some point (the
        compaction log proves whole-tier merges ran)."""
        db, _ = stores["tiered:runs=2"]
        log = db.get_property("compaction-log")
        assert "policy=tiered:runs=2" in log
