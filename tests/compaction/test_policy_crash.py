"""Crash-consistency matrix under the non-default compaction policies.

Same two-phase harness as :mod:`tests.db.test_crash_consistency` —
seed a baseline, arm one crash point, write a shuffled acknowledged
workload until the power cut, reopen from the frozen disk image — but
the store runs tiered / lazy-leveled, so flushes stack sorted runs and
compactions are whole-tier merges.  The contract is identical: with
``sync_every=1`` every acked write survives every crash point, and
``verify_db`` comes back clean over the stacked-run layout.

The reopen passes ``compaction_policy=None`` on purpose: recovery must
*adopt* the persisted spec, exactly as a crashed production store
would be reopened.
"""

import random

import pytest

from repro.db import DB
from repro.db.verify import verify_db
from repro.devices import MemStorage
from repro.devices.faults import (
    CRASH_POINTS,
    FaultPlan,
    FaultyStorage,
    SimulatedCrash,
)
from repro.lsm import Options

POLICIES = ["tiered:runs=2", "lazy-leveled:runs=2"]

#: Points a flush-heavy single-threaded workload always reaches (the
#: CURRENT swap only happens during the phase-2 reopen).
ALWAYS_REACHED = set(CRASH_POINTS) - {"current.tmp_written", "current.renamed"}


def crash_options(policy=None, **kw):
    """Tiny engine so a few hundred writes flush and merge tiers."""
    defaults = dict(
        memtable_bytes=4096,
        sstable_bytes=4096,
        block_bytes=1024,
        level1_bytes=16384,
        level_multiplier=4,
        l0_compaction_trigger=2,
        compaction_policy=policy,
    )
    defaults.update(kw)
    return Options(**defaults)


def run_until_crash(policy, point, seed=0, baseline=100, workload=600):
    """Two-phase harness; returns (acked dict, frozen image, crashed?)."""
    storage = FaultyStorage(MemStorage(), FaultPlan())
    acked = {}

    db = DB(storage, crash_options(policy), sync_every=1)
    assert db.policy.spec() == policy
    for i in range(baseline):
        k, v = b"base-%04d" % i, b"b-%d" % i
        db.put(k, v)
        acked[k] = v
    db.close()

    storage.arm(FaultPlan(seed=seed, crash_at=point))
    crashed = False
    try:
        db = DB(storage, crash_options(policy), sync_every=1)
        order = list(range(workload))
        random.Random(seed).shuffle(order)
        for i in order:
            k, v = b"key-%04d" % i, b"v-%d-%d" % (seed, i)
            db.put(k, v)
            acked[k] = v
        db.flush()
        db.close()
    except SimulatedCrash:
        crashed = True

    return acked, storage.frozen_storage(), crashed


class TestPolicyCrashMatrix:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_no_acked_write_lost(self, policy, point):
        acked, frozen, crashed = run_until_crash(policy, point)
        if point in ALWAYS_REACHED:
            assert crashed, f"workload never reached crash point {point}"

        db = DB(frozen, crash_options(), sync_every=1)
        try:
            # Recovery adopted the spec the crashed store persisted.
            assert db.policy.spec() == policy
            for k, v in acked.items():
                assert db.get(k) == v, f"{policy}/{point}: lost {k!r}"
        finally:
            db.close()
        report = verify_db(frozen, crash_options())
        assert report.ok, f"{policy}/{point}: verify failed:\n{report.render()}"

    @pytest.mark.parametrize("policy", POLICIES)
    def test_compaction_crash_points_reached(self, policy):
        """Tier merges genuinely run under the crash plan — the matrix
        would be vacuous if whole-level merges never happened."""
        storage = FaultyStorage(MemStorage(), FaultPlan())
        db = DB(storage, crash_options(policy), sync_every=1)
        order = list(range(600))
        random.Random(0).shuffle(order)
        for i in order:
            db.put(b"key-%04d" % i, b"v-%d" % i)
        db.flush()
        db.close()
        seen = set(storage.points_seen)
        assert {"compaction.outputs_written", "compaction.installed"} <= seen
        assert len(seen) >= 8, sorted(seen)
