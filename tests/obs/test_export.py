"""Exposition formats: Prometheus text, JSON, merged Chrome traces."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    merge_chrome_traces,
    parse_prometheus,
    render_json,
    render_prometheus,
    write_merged_chrome_trace,
)
from repro.obs.export import prometheus_metric_name


def _snapshot():
    registry = MetricsRegistry()
    registry.counter("db.flushes").inc(3)
    registry.gauge("repl.lag_records").set(7)
    registry.histogram("compaction.seconds").record(0.5)
    registry.latency_histogram("server.op.PUT.latency").record(0.002)
    return registry.snapshot()


class TestMetricNames:
    def test_dots_become_underscores(self):
        assert prometheus_metric_name("db.flush_bytes") == (
            "repro_db_flush_bytes"
        )

    def test_invalid_chars_sanitised(self):
        name = prometheus_metric_name("server.op.GET.latency")
        assert name == "repro_server_op_GET_latency"


class TestRenderPrometheus:
    def test_counter_gets_total_suffix_and_type(self):
        text = render_prometheus(_snapshot())
        assert "# TYPE repro_db_flushes_total counter" in text
        assert "repro_db_flushes_total 3" in text

    def test_gauge(self):
        text = render_prometheus(_snapshot())
        assert "# TYPE repro_repl_lag_records gauge" in text
        assert "repro_repl_lag_records 7" in text

    def test_histogram_has_buckets_count_sum(self):
        text = render_prometheus(_snapshot())
        assert "# TYPE repro_compaction_seconds histogram" in text
        assert 'repro_compaction_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_compaction_seconds_count 1" in text
        assert "repro_compaction_seconds_sum 0.5" in text

    def test_latency_histogram_rendered_in_seconds(self):
        # _ms snapshots convert to base units with a _seconds family.
        text = render_prometheus(_snapshot())
        assert "repro_server_op_PUT_latency_seconds_count 1" in text
        sum_line = next(
            line for line in text.splitlines()
            if line.startswith("repro_server_op_PUT_latency_seconds_sum")
        )
        assert float(sum_line.split()[1]) == pytest.approx(0.002, rel=0.01)

    def test_shard_prefix_becomes_label(self):
        registry = MetricsRegistry()
        registry.counter("cluster.shard0.db.flushes").inc(1)
        registry.counter("cluster.shard1.db.flushes").inc(2)
        registry.counter("db.flushes").inc(3)  # the rollup
        text = render_prometheus(registry.snapshot())
        assert 'repro_db_flushes_total{shard="0"} 1' in text
        assert 'repro_db_flushes_total{shard="1"} 2' in text
        # One family, one TYPE line, rollup unlabelled.
        assert text.count("# TYPE repro_db_flushes_total counter") == 1
        assert "\nrepro_db_flushes_total 3" in text

    def test_empty_histogram_renders_zero_family(self):
        registry = MetricsRegistry()
        registry.histogram("quiet")
        text = render_prometheus(registry.snapshot())
        assert 'repro_quiet_bucket{le="+Inf"} 0' in text
        assert "repro_quiet_count 0" in text
        parse_prometheus(text)  # still well-formed


class TestParsePrometheus:
    def test_roundtrip_own_output(self):
        text = render_prometheus(_snapshot())
        series = parse_prometheus(text)
        assert series["repro_db_flushes_total"] == [({}, 3.0)]
        assert series["repro_repl_lag_records"] == [({}, 7.0)]
        buckets = series["repro_compaction_seconds_bucket"]
        assert ({"le": "+Inf"}, 1.0) in buckets

    def test_labels_parsed(self):
        series = parse_prometheus('m_total{shard="3",x="y"} 5\n')
        assert series["m_total"] == [({"shard": "3", "x": "y"}, 5.0)]

    def test_malformed_sample_rejected(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not a metric\n")

    def test_malformed_type_rejected(self):
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE m banana\nm 1\n")

    def test_duplicate_type_rejected(self):
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE m counter\n# TYPE m counter\nm 1\n")


class TestRenderJson:
    def test_envelope(self):
        payload = json.loads(render_json(_snapshot()))
        assert payload["version"] == 1
        assert payload["metrics"]["counters"]["db.flushes"] == 3


class TestMergedChromeTrace:
    def _trace(self, name):
        return {
            "traceEvents": [
                {
                    "name": name, "cat": "x", "ph": "X",
                    "ts": 1, "dur": 2, "pid": 1, "tid": 1, "args": {},
                },
            ],
            "displayTimeUnit": "ms",
        }

    def test_merge_assigns_process_lanes(self):
        merged = merge_chrome_traces(
            [("client", self._trace("a")), ("server", self._trace("b"))]
        )
        events = merged["traceEvents"]
        lanes = {
            e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        assert lanes == {"client", "server"}
        pids = {e["pid"] for e in events if e.get("ph") == "X"}
        assert len(pids) == 2

    def test_write_merged(self, tmp_path):
        out = tmp_path / "merged.json"
        n = write_merged_chrome_trace(
            str(out), [("only", self._trace("a"))]
        )
        assert n == 1
        payload = json.loads(out.read_text())
        assert any(e.get("ph") == "X" for e in payload["traceEvents"])
