"""Unit tests for the shared metrics registry (repro.obs)."""

import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    LatencyHistogram,
    MetricsRegistry,
    merge_histogram_snapshots,
    merge_shard_snapshots,
)


class TestCounterGauge:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(3.5)
        gauge.add(-1.5)
        assert gauge.value == 2.0


class TestHistogram:
    def test_empty(self):
        histogram = Histogram()
        assert histogram.percentile(50) == 0.0
        assert histogram.mean() == 0.0
        assert histogram.snapshot() == {"count": 0}

    def test_percentiles_bracketed(self):
        histogram = Histogram()
        for i in range(1, 101):
            histogram.record(i / 1000.0)
        p50, p99 = histogram.percentile(50), histogram.percentile(99)
        assert 0.001 <= p50 <= p99 <= 0.100
        assert abs(p50 - 0.050) / 0.050 < 0.15  # bucket tolerance

    def test_custom_grid(self):
        # Byte-size histogram: 1 B .. 1 GiB-ish.
        histogram = Histogram(lo=1.0, hi=1e9, buckets_per_decade=8)
        histogram.record(4096)
        snap = histogram.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == snap["max"] == 4096

    def test_latency_histogram_ms_snapshot(self):
        histogram = LatencyHistogram()
        histogram.record(0.002)
        snap = histogram.snapshot()
        assert snap["count"] == 1
        assert snap["min_ms"] == pytest.approx(2.0)
        assert histogram.min_s == histogram.max_s == 0.002
        assert histogram.sum_s == pytest.approx(0.002)


class TestMetricsRegistry:
    def test_same_name_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")

    def test_latency_histogram_is_histogram_subkind(self):
        registry = MetricsRegistry()
        registry.latency_histogram("lat")
        # A plain-histogram request for the same name must not silently
        # hand back the ms-keyed variant.
        with pytest.raises(ValueError):
            registry.counter("lat")

    def test_snapshot_groups_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.gauge("g").set(1.5)
        registry.histogram("h").record(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 7}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_items_with_prefix(self):
        registry = MetricsRegistry()
        registry.counter("io.mem.read.ops").inc()
        registry.counter("io.mem.write.ops").inc()
        registry.counter("wal.records").inc()
        names = [name for name, _ in registry.items_with_prefix("io.")]
        assert names == ["io.mem.read.ops", "io.mem.write.ops"]

    def test_render_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h")
        text = registry.render()
        assert "c" in text and "h" in text and "(empty)" in text

    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        n_threads, n_incs = 8, 5000

        def work():
            counter = registry.counter("hot")
            histogram = registry.histogram("lat")
            for _ in range(n_incs):
                counter.inc()
                histogram.record(0.001)

        threads = [
            threading.Thread(target=work, name=f"metrics-worker-{i}")
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("hot").value == n_threads * n_incs
        assert registry.histogram("lat").count == n_threads * n_incs


class TestHistogramSnapshotBuckets:
    """PR 7: snapshots carry cumulative buckets + sum (Prometheus)."""

    def test_empty_snapshot_shape_unchanged(self):
        assert Histogram().snapshot() == {"count": 0}

    def test_sum_and_cumulative_buckets(self):
        h = Histogram()
        for v in (0.001, 0.01, 0.01, 0.1):
            h.record(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(0.121)
        buckets = snap["buckets"]
        # Bucket uppers ascend, cumulative counts are monotone, and
        # the last cumulative count equals the total.
        uppers = [le for le, _ in buckets]
        cums = [c for _, c in buckets]
        assert uppers == sorted(uppers)
        assert cums == sorted(cums)
        assert cums[-1] == 4

    def test_latency_snapshot_buckets_in_ms(self):
        h = LatencyHistogram()
        h.record(0.002)
        snap = h.snapshot()
        assert snap["sum_ms"] == pytest.approx(2.0, rel=0.01)
        (bucket,) = snap["buckets_ms"]
        le_ms, cum = bucket
        assert cum == 1 and 1.0 < le_ms < 4.0


class TestMergeHistogramSnapshots:
    def test_merge_two(self):
        a, b = Histogram(), Histogram()
        for v in (0.001, 0.002):
            a.record(v)
        for v in (0.1, 0.2, 0.4):
            b.record(v)
        merged = merge_histogram_snapshots([a.snapshot(), b.snapshot()])
        assert merged["count"] == 5
        assert merged["sum"] == pytest.approx(0.703)
        assert merged["min"] == pytest.approx(0.001)
        assert merged["max"] == pytest.approx(0.4)
        # p50 of {1ms,2ms,100ms,200ms,400ms} lies in the upper group.
        assert 0.05 < merged["p50"] <= 0.4

    def test_merge_empties(self):
        assert merge_histogram_snapshots([]) == {"count": 0}
        assert merge_histogram_snapshots(
            [{"count": 0}, {"count": 0}]
        ) == {"count": 0}

    def test_merge_ms_variant(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(0.001)
        b.record(0.003)
        merged = merge_histogram_snapshots([a.snapshot(), b.snapshot()])
        assert merged["count"] == 2
        assert merged["sum_ms"] == pytest.approx(4.0, rel=0.01)
        assert merged["buckets_ms"][-1][1] == 2

    def test_merge_percentiles_close_to_pooled(self):
        import random

        rng = random.Random(7)
        values = [rng.uniform(0.001, 1.0) for _ in range(2000)]
        parts = [Histogram(), Histogram(), Histogram()]
        for i, v in enumerate(values):
            parts[i % 3].record(v)
        pooled = Histogram()
        for v in values:
            pooled.record(v)
        merged = merge_histogram_snapshots([p.snapshot() for p in parts])
        for p in ("p50", "p95", "p99"):
            assert merged[p] == pytest.approx(
                pooled.snapshot()[p], rel=0.15
            )


class TestMergeShardSnapshotsHistograms:
    def test_histograms_rolled_up(self):
        shard0, shard1 = MetricsRegistry(), MetricsRegistry()
        shard0.histogram("db.flush_seconds").record(0.01)
        shard1.histogram("db.flush_seconds").record(0.04)
        cluster = MetricsRegistry()
        cluster.counter("cluster.pool.jobs").inc(3)
        merged = merge_shard_snapshots(
            cluster.snapshot(), [shard0.snapshot(), shard1.snapshot()]
        )
        # The cluster's own registry rides along unprefixed.
        assert merged["counters"]["cluster.pool.jobs"] == 3
        # Per-shard series keep their prefix...
        assert (
            merged["histograms"]["cluster.shard0.db.flush_seconds"]["count"]
            == 1
        )
        # ...and the bare name is the cross-shard rollup.
        rollup = merged["histograms"]["db.flush_seconds"]
        assert rollup["count"] == 2
        assert rollup["sum"] == pytest.approx(0.05)
