"""Unit tests for the shared metrics registry (repro.obs)."""

import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    LatencyHistogram,
    MetricsRegistry,
)


class TestCounterGauge:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(3.5)
        gauge.add(-1.5)
        assert gauge.value == 2.0


class TestHistogram:
    def test_empty(self):
        histogram = Histogram()
        assert histogram.percentile(50) == 0.0
        assert histogram.mean() == 0.0
        assert histogram.snapshot() == {"count": 0}

    def test_percentiles_bracketed(self):
        histogram = Histogram()
        for i in range(1, 101):
            histogram.record(i / 1000.0)
        p50, p99 = histogram.percentile(50), histogram.percentile(99)
        assert 0.001 <= p50 <= p99 <= 0.100
        assert abs(p50 - 0.050) / 0.050 < 0.15  # bucket tolerance

    def test_custom_grid(self):
        # Byte-size histogram: 1 B .. 1 GiB-ish.
        histogram = Histogram(lo=1.0, hi=1e9, buckets_per_decade=8)
        histogram.record(4096)
        snap = histogram.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == snap["max"] == 4096

    def test_latency_histogram_ms_snapshot(self):
        histogram = LatencyHistogram()
        histogram.record(0.002)
        snap = histogram.snapshot()
        assert snap["count"] == 1
        assert snap["min_ms"] == pytest.approx(2.0)
        assert histogram.min_s == histogram.max_s == 0.002
        assert histogram.sum_s == pytest.approx(0.002)


class TestMetricsRegistry:
    def test_same_name_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")

    def test_latency_histogram_is_histogram_subkind(self):
        registry = MetricsRegistry()
        registry.latency_histogram("lat")
        # A plain-histogram request for the same name must not silently
        # hand back the ms-keyed variant.
        with pytest.raises(ValueError):
            registry.counter("lat")

    def test_snapshot_groups_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.gauge("g").set(1.5)
        registry.histogram("h").record(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 7}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_items_with_prefix(self):
        registry = MetricsRegistry()
        registry.counter("io.mem.read.ops").inc()
        registry.counter("io.mem.write.ops").inc()
        registry.counter("wal.records").inc()
        names = [name for name, _ in registry.items_with_prefix("io.")]
        assert names == ["io.mem.read.ops", "io.mem.write.ops"]

    def test_render_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h")
        text = registry.render()
        assert "c" in text and "h" in text and "(empty)" in text

    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        n_threads, n_incs = 8, 5000

        def work():
            counter = registry.counter("hot")
            histogram = registry.histogram("lat")
            for _ in range(n_incs):
                counter.inc()
                histogram.record(0.001)

        threads = [
            threading.Thread(target=work, name=f"metrics-worker-{i}")
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("hot").value == n_threads * n_incs
        assert registry.histogram("lat").count == n_threads * n_incs
