"""End-to-end: a traced DB emits S1–S7 spans and engine metrics."""

import json

import pytest

from repro.core.procedures import ProcedureSpec
from repro.db.db import DB
from repro.devices.vfs import MemStorage
from repro.lsm.options import Options
from repro.obs import Observability, Tracer, pipeline_overlap
from repro.server.server import KVServer


def small_options() -> Options:
    return Options(
        memtable_bytes=16 * 1024,
        sstable_bytes=8 * 1024,
        block_bytes=1024,
        level1_bytes=32 * 1024,
        level_multiplier=4,
        block_cache_entries=32,
    )


def traced_db() -> DB:
    obs = Observability(tracer=Tracer(enabled=True))
    spec = ProcedureSpec.pcp(subtask_bytes=4 * 1024)
    return DB(MemStorage(), small_options(), compaction_spec=spec, obs=obs)


def load(db: DB, n: int = 800, value_bytes: int = 120) -> None:
    # Interleave keys (7919 is coprime to n) so successive memtable
    # flushes cover overlapping key ranges: compactions then really
    # merge instead of trivially moving files down.
    value = b"v" * value_bytes
    for i in range(n):
        db.put(f"key{(i * 7919) % n:08d}".encode(), value)


class TestTracedCompaction:
    def test_forced_compaction_emits_all_pipeline_steps(self):
        db = traced_db()
        try:
            load(db)
            db.compact_range()
            names = {span.name for span in db.obs.tracer.spans()}
        finally:
            db.close()
        for step in (
            "S1:read", "S2:checksum", "S3:decompress", "S4:merge",
            "S5:compress", "S6:rechecksum", "S7:write",
        ):
            assert step in names, f"missing {step} span"
        assert "flush" in names
        assert "compaction" in names

    def test_pcp_read_overlaps_compute_of_other_subtask(self):
        # Needs enough sub-tasks per compaction that the reader can run
        # ahead of the compute stage; a bigger load guarantees that.
        db = traced_db()
        try:
            load(db, n=2000, value_bytes=200)
            db.compact_range()
            pair = pipeline_overlap(db.obs.tracer.spans())
        finally:
            db.close()
        assert pair is not None, "PCP trace shows no read/compute overlap"
        read, compute = pair
        assert read.cat == "read" and compute.cat == "compute"
        assert read.args["subtask"] != compute.args["subtask"]

    def test_default_db_traces_nothing(self):
        db = DB(MemStorage(), small_options())
        try:
            load(db, n=200)
            db.compact_range()
            assert len(db.obs.tracer) == 0
        finally:
            db.close()


class TestMetricsProperties:
    def test_metrics_property_is_json(self):
        db = traced_db()
        try:
            load(db)
            db.compact_range()
            db.get(b"key00000001")
            snap = json.loads(db.get_property("metrics"))
            counters = snap["counters"]
            assert counters["wal.records"] > 0
            assert counters["wal.bytes"] > 0
            assert counters["db.flushes"] > 0
            assert counters["compaction.count"] > 0
            assert counters["io.mem.write.bytes"] > 0
            assert counters["io.mem.read.ops"] > 0
            assert snap["histograms"]["compaction.seconds"]["count"] > 0
            assert db.get_property("io-stats") is not None
            assert "hit_rate" in db.get_property("cache-stats")
        finally:
            db.close()

    def test_cache_stats_reflect_lookups(self):
        db = DB(MemStorage(), small_options())
        try:
            load(db, n=300)
            db.compact_range()
            for _ in range(3):
                db.get(b"key00000007")
            snap = json.loads(db.get_property("metrics"))
            cache_hits = snap["counters"].get("cache.hits", 0)
            assert cache_hits == db._cache.stats.hits
            assert cache_hits > 0
        finally:
            db.close()

    def test_get_property_on_closed_db_raises(self):
        db = DB(MemStorage(), small_options())
        db.close()
        with pytest.raises(RuntimeError):
            db.get_property("metrics")

    def test_stats_payload_has_engine_section(self):
        db = DB(MemStorage(), small_options())
        server = KVServer(db)
        try:
            db.put(b"k", b"v")
            stats = server._stats_dict()
            assert set(stats) == {"server", "db", "engine"}
            assert stats["engine"]["counters"]["wal.records"] >= 1
            json.dumps(stats)  # whole payload stays JSON-serialisable
        finally:
            db.close()
