"""The structured JSONL event log and slow-op log."""

import json
import threading

from repro.obs import NULL_EVENTS, EventLog


class TestEventLog:
    def test_disabled_by_default(self):
        log = EventLog()
        assert not log.enabled
        log.emit("flush", bytes=1)  # no sink: must be a no-op
        assert log.emitted == 0

    def test_callable_sink(self):
        seen = []
        log = EventLog(seen.append)
        log.emit("flush", bytes=10, seconds=0.5)
        assert log.enabled and log.emitted == 1
        (record,) = seen
        assert record["event"] == "flush"
        assert record["bytes"] == 10
        assert record["thread"] == threading.current_thread().name
        assert isinstance(record["ts"], float)

    def test_path_sink_writes_json_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path))
        log.emit("stall.enter", l0_files=5)
        log.emit("stall.exit", seconds=0.1)
        log.close()
        lines = path.read_text().splitlines()
        assert [json.loads(l)["event"] for l in lines] == [
            "stall.enter", "stall.exit",
        ]

    def test_file_sink_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        EventLog(str(path)).emit("a")
        EventLog(str(path)).emit("b")
        assert len(path.read_text().splitlines()) == 2

    def test_close_disables(self, tmp_path):
        log = EventLog(str(tmp_path / "e.jsonl"))
        log.close()
        assert not log.enabled
        log.emit("after")  # must not raise
        log.close()  # idempotent

    def test_custom_clock(self):
        seen = []
        log = EventLog(seen.append, clock=lambda: 123.456)
        log.emit("x")
        assert seen[0]["ts"] == 123.456

    def test_concurrent_emits_all_land(self):
        seen = []
        log = EventLog(seen.append)

        def work():
            for _ in range(500):
                log.emit("tick")

        threads = [
            threading.Thread(target=work, name=f"event-worker-{i}")
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert log.emitted == 2000 and len(seen) == 2000


class TestSlowOpLog:
    def test_disabled_without_threshold(self):
        seen = []
        log = EventLog(seen.append)
        log.slow_op("PUT", 10.0)
        assert seen == []

    def test_threshold_gates(self):
        seen = []
        log = EventLog(seen.append, slow_op_threshold_s=0.1)
        log.slow_op("GET", 0.05)
        log.slow_op("PUT", 0.25, status="OK")
        (record,) = seen
        assert record["event"] == "slow_op"
        assert record["op"] == "PUT"
        assert record["seconds"] == 0.25
        assert record["threshold_s"] == 0.1
        assert record["status"] == "OK"

    def test_threshold_without_sink_is_noop(self):
        log = EventLog(slow_op_threshold_s=0.0)
        log.slow_op("GET", 1.0)
        assert log.emitted == 0


def test_null_events_is_disabled():
    assert not NULL_EVENTS.enabled
