"""Unit tests for the span tracer and Chrome trace export."""

import json
import time

from repro.obs import (
    NULL_TRACER,
    Span,
    Tracer,
    current_trace_context,
    new_span_id,
    new_trace_id,
    pipeline_overlap,
    trace_context,
)


def make_span(name, cat, start, end, subtask=None, thread="t", tid=1):
    args = {} if subtask is None else {"subtask": subtask}
    return Span(name=name, cat=cat, start=start, end=end,
                thread=thread, tid=tid, args=args)


class TestTracer:
    def test_span_records_interval(self):
        tracer = Tracer()
        with tracer.span("work", cat="compute", subtask=3):
            time.sleep(0.001)
        (span,) = tracer.spans()
        assert span.name == "work"
        assert span.cat == "compute"
        assert span.args == {"subtask": 3}
        assert span.duration >= 0.001
        assert span.tid != 0

    def test_nested_spans_are_contained(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()  # inner exits (and records) first
        assert inner.name == "inner" and outer.name == "outer"
        assert outer.start <= inner.start <= inner.end <= outer.end

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        first = tracer.span("a", cat="x", k=1)
        second = tracer.span("b")
        assert first is second  # shared null span: no allocation
        with first:
            pass
        assert len(tracer) == 0
        tracer.add_complete("c", 0.0, 1.0)
        assert len(tracer) == 0
        assert len(NULL_TRACER) == 0

    def test_disabled_span_overhead_is_small(self):
        # Loose sanity bound: 100k no-op spans should be near-free.
        tracer = Tracer(enabled=False)
        t0 = time.perf_counter()
        for _ in range(100_000):
            with tracer.span("hot", cat="x", subtask=1):
                pass
        assert time.perf_counter() - t0 < 1.0
        assert len(tracer) == 0

    def test_add_complete_attribution(self):
        tracer = Tracer()
        tracer.add_complete(
            "remote", 1.0, 2.5, cat="compute", thread="mp-pool", tid=99,
            subtask=4,
        )
        (span,) = tracer.spans()
        assert (span.thread, span.tid) == ("mp-pool", 99)
        assert span.duration == 1.5

    def test_max_spans_keeps_oldest(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            tracer.add_complete(f"s{i}", i, i + 1)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [s.name for s in tracer.spans()] == ["s0", "s1", "s2"]
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0

    def test_spans_filter_by_category(self):
        tracer = Tracer()
        tracer.add_complete("a", 0, 1, cat="read")
        tracer.add_complete("b", 1, 2, cat="write")
        assert [s.name for s in tracer.spans(cat="read")] == ["a"]


class TestChromeTraceExport:
    def test_round_trip_is_valid_chrome_trace(self, tmp_path):
        tracer = Tracer()
        with tracer.span("S1:read", cat="read", subtask=0):
            pass
        tracer.add_complete("S4:merge", 0.001, 0.002, cat="compute",
                            thread="worker", tid=7, subtask=1)
        path = tmp_path / "out.json"
        n = tracer.write_chrome_trace(str(path))
        assert n == 2

        trace = json.loads(path.read_text())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        x_events = [e for e in events if e["ph"] == "X"]
        m_events = [e for e in events if e["ph"] == "M"]
        assert len(x_events) == 2
        for event in x_events:
            for key in ("name", "cat", "pid", "tid", "ts", "dur", "args"):
                assert key in event
            assert event["dur"] >= 0
        # One thread_name metadata record per distinct tid.
        assert {e["tid"] for e in m_events} == {e["tid"] for e in x_events}
        named = {e["tid"]: e["args"]["name"] for e in m_events}
        assert named[7] == "worker"

    def test_gantt_render(self):
        tracer = Tracer()
        tracer.add_complete("S1:read", 0.0, 1.0, cat="read", subtask=0)
        tracer.add_complete("S4:merge", 1.0, 2.0, cat="compute", subtask=0)
        tracer.add_complete("S7:write", 2.0, 3.0, cat="write", subtask=0)
        text = tracer.render_gantt(width=30)
        assert "read" in text and "compute" in text and "write" in text
        assert "busy:" in text


class TestTraceContext:
    """PR 7: thread-local trace contexts link spans across processes."""

    def test_ids_fresh_and_nonzero(self):
        assert new_trace_id() != 0
        assert new_trace_id() != new_trace_id()  # 48-bit: no collision
        assert new_span_id() != new_span_id()

    def test_no_context_by_default(self):
        assert current_trace_context() is None
        tracer = Tracer()
        with tracer.span("plain"):
            pass
        (span,) = tracer.spans()
        assert "trace_id" not in span.args  # no stamping without context

    def test_context_binds_and_restores(self):
        with trace_context(42, 7):
            assert current_trace_context() == (42, 7)
            with trace_context(43, 8):
                assert current_trace_context() == (43, 8)
            assert current_trace_context() == (42, 7)
        assert current_trace_context() is None

    def test_spans_stamped_with_context(self):
        tracer = Tracer()
        with trace_context(42, 7):
            with tracer.span("op"):
                pass
        (span,) = tracer.spans()
        assert span.args["trace_id"] == 42
        assert span.args["parent_span_id"] == 7
        assert span.args["span_id"] not in (0, 7)

    def test_nested_spans_chain_parent_ids(self):
        tracer = Tracer()
        with trace_context(42, 7):
            with tracer.span("outer"):
                outer_ctx = current_trace_context()
                with tracer.span("inner"):
                    pass
        inner, outer = tracer.spans()  # inner recorded first
        assert outer.args["parent_span_id"] == 7
        assert inner.args["parent_span_id"] == outer.args["span_id"]
        assert outer_ctx == (42, outer.args["span_id"])
        # Exiting the outer span restored the original parent.
        assert inner.args["trace_id"] == outer.args["trace_id"] == 42

    def test_context_restored_after_span_exit(self):
        tracer = Tracer()
        with trace_context(1, 2):
            with tracer.span("a"):
                pass
            assert current_trace_context() == (1, 2)


class TestPipelineOverlap:
    def test_detects_cross_subtask_overlap(self):
        spans = [
            make_span("S1:read", "read", 0.0, 1.0, subtask=0),
            make_span("S4:merge", "compute", 0.5, 1.5, subtask=0),
            make_span("S1:read", "read", 1.2, 2.0, subtask=1),
        ]
        # read(1) overlaps compute(0): different sub-tasks.
        pair = pipeline_overlap(spans)
        assert pair is not None
        read, compute = pair
        assert read.args["subtask"] == 1
        assert compute.args["subtask"] == 0

    def test_same_subtask_overlap_does_not_count(self):
        spans = [
            make_span("S1:read", "read", 0.0, 1.0, subtask=0),
            make_span("S4:merge", "compute", 0.5, 1.5, subtask=0),
        ]
        assert pipeline_overlap(spans) is None

    def test_sequential_schedule_has_no_overlap(self):
        spans = [
            make_span("S1:read", "read", 0.0, 1.0, subtask=0),
            make_span("S4:merge", "compute", 1.0, 2.0, subtask=0),
            make_span("S1:read", "read", 2.0, 3.0, subtask=1),
            make_span("S4:merge", "compute", 3.0, 4.0, subtask=1),
        ]
        assert pipeline_overlap(spans) is None
