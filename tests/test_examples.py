"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests keep them from
rotting.  The slow full-evaluation script is exercised by the
benchmark suite instead.
"""

import runpy
import sys

import pytest

EXAMPLES = [
    "examples/quickstart.py",
    "examples/crash_recovery.py",
    "examples/bottleneck_analysis.py",
    "examples/pipeline_visualizer.py",
    "examples/server_quickstart.py",
    "examples/cluster_quickstart.py",
]


@pytest.mark.parametrize("path", EXAMPLES)
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example prints something


def test_quickstart_reports_ok(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/quickstart.py"])
    runpy.run_path("examples/quickstart.py", run_name="__main__")
    assert "quickstart OK" in capsys.readouterr().out


def test_crash_recovery_reports_ok(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/crash_recovery.py"])
    runpy.run_path("examples/crash_recovery.py", run_name="__main__")
    assert "crash-recovery demo OK" in capsys.readouterr().out
