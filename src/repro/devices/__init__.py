"""Storage-device service-time models and the virtual filesystem."""

from .base import AccessKind, Device, DeviceStats
from .faults import (
    CRASH_POINTS,
    FaultPlan,
    FaultyStorage,
    SimulatedCrash,
    TransientIOError,
    corrupt_file,
    fire_crash_point,
)
from .hdd import HDD, HDDSpec
from .netfaults import FaultyProxy, NetFaultPlan
from .presets import DEVICE_PRESETS, PAPER_HDD, PAPER_SSD, make_device
from .raid import RAID0, DiskArray
from .ssd import SSD, SSDSpec
from .vfs import (
    MemStorage,
    MeteredStorage,
    OSStorage,
    ReadableFile,
    Storage,
    StorageError,
    TimedStorage,
    WritableFile,
)

__all__ = [
    "AccessKind",
    "CRASH_POINTS",
    "DEVICE_PRESETS",
    "Device",
    "DeviceStats",
    "DiskArray",
    "FaultPlan",
    "FaultyProxy",
    "FaultyStorage",
    "NetFaultPlan",
    "HDD",
    "HDDSpec",
    "MemStorage",
    "SimulatedCrash",
    "TransientIOError",
    "corrupt_file",
    "fire_crash_point",
    "MeteredStorage",
    "OSStorage",
    "PAPER_HDD",
    "PAPER_SSD",
    "RAID0",
    "ReadableFile",
    "SSD",
    "SSDSpec",
    "Storage",
    "StorageError",
    "TimedStorage",
    "WritableFile",
    "make_device",
]
