"""Deterministic fault injection for :class:`repro.devices.vfs.Storage`.

The paper's S2/S6 checksum stages exist to catch storage corruption in
the middle of a compaction; this module supplies the *other half* of
that robustness story — a way to deterministically create the damage
and the power cuts those stages (and the WAL/MANIFEST commit protocol)
must survive.

:class:`FaultyStorage` wraps any inner :class:`Storage` and is driven
by a declarative, seed-deterministic :class:`FaultPlan`:

* probabilistic or nth-op ``EIO`` (:class:`TransientIOError`) on
  read / write / sync / rename;
* seeded single-bit flips on read (silent corruption the checksum
  stages must catch);
* named **crash points** — the engine calls
  :func:`fire_crash_point` at protocol boundaries (WAL append/sync,
  flush install, compaction install, manifest commit, CURRENT swap);
  when the plan arms that point the storage raises
  :class:`SimulatedCrash` and freezes.

Durability is modelled explicitly: appends become durable only at
``sync()``.  After a crash, :meth:`FaultyStorage.frozen_storage`
returns a fresh :class:`MemStorage` holding exactly the synced image
(unsynced appends dropped, or — with ``torn_tail`` — torn to a seeded
prefix), so a test can "power-cut" a live DB and reopen from the disk
state a real machine would have rebooted to.

Everything is deterministic given ``FaultPlan.seed``: the same plan
over the same operation sequence injects the same faults and freezes
the same bytes.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field, replace
from typing import Optional

from .vfs import (
    MemStorage,
    ReadableFile,
    Storage,
    StorageError,
    WritableFile,
)

__all__ = [
    "TransientIOError",
    "SimulatedCrash",
    "FaultPlan",
    "FaultyStorage",
    "CRASH_POINTS",
    "fire_crash_point",
    "find_faulty",
    "corrupt_file",
]


class TransientIOError(StorageError):
    """A retryable I/O failure (the injected-``EIO`` class).

    The write path treats this as *transient*: bounded retries with
    backoff are appropriate.  Contrast with
    :class:`repro.lsm.TableCorruption` / ``LogCorruption``, which are
    permanent data damage and must never be retried blindly.
    """


class SimulatedCrash(BaseException):
    """Raised at an armed crash point: the process "loses power".

    Deliberately a ``BaseException`` so that generic ``except
    Exception`` recovery code cannot accidentally swallow the power
    cut — exactly like ``KeyboardInterrupt``.
    """


#: Canonical crash-point names the engine fires (see repro.db.db and
#: repro.db.manifest).  The crash-consistency harness iterates this
#: list; every entry must reopen with zero acknowledged-write loss.
CRASH_POINTS = (
    "wal.append",              # before the WAL record is appended
    "wal.sync",                # after append, before the durability barrier
    "flush.table_written",     # L0 table synced, manifest not yet updated
    "flush.installed",         # manifest edit durable, old WAL not deleted
    "compaction.outputs_written",  # outputs synced, version edit not applied
    "compaction.installed",    # version edit durable, inputs not deleted
    "manifest.append",         # before a version edit reaches the MANIFEST
    "current.tmp_written",     # CURRENT.tmp synced, not yet renamed
    "current.renamed",         # CURRENT atomically swapped
)


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults to inject.

    All randomness derives from ``seed``; two storages driven by the
    same plan over the same operation sequence fail identically.

    ``fail_nth`` maps an op kind (``read``/``write``/``sync``/
    ``rename``) to a 1-based op index that raises exactly once —
    deterministic aiming for "the Nth write of this run fails".
    ``max_errors`` bounds the total injected errors (so bounded
    retries eventually succeed); ``None`` means unbounded.
    ``crash_at`` names a crash point; ``crash_skip`` skips its first N
    hits.  ``torn_tail`` keeps a seeded prefix of the unsynced bytes
    at crash time instead of dropping them all (a torn write).
    """

    seed: int = 0
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    sync_error_rate: float = 0.0
    rename_error_rate: float = 0.0
    bitflip_rate: float = 0.0
    fail_nth: dict = field(default_factory=dict)
    max_errors: Optional[int] = None
    crash_at: Optional[str] = None
    crash_skip: int = 0
    torn_tail: bool = False

    def __post_init__(self) -> None:
        for name in ("read", "write", "sync", "rename"):
            rate = getattr(self, f"{name}_error_rate")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name}_error_rate out of [0, 1]: {rate}")
        if not 0.0 <= self.bitflip_rate <= 1.0:
            raise ValueError(f"bitflip_rate out of [0, 1]: {self.bitflip_rate}")
        for kind, nth in self.fail_nth.items():
            if kind not in ("read", "write", "sync", "rename"):
                raise ValueError(f"fail_nth: unknown op kind {kind!r}")
            if nth < 1:
                raise ValueError(f"fail_nth[{kind!r}] must be >= 1, got {nth}")
        if self.crash_at is not None and self.crash_at not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {self.crash_at!r}; one of {CRASH_POINTS}"
            )

    def to_json(self) -> str:
        defaults = FaultPlan()
        data = {
            name: getattr(self, name)
            for name in defaults.__dataclass_fields__
            if name == "seed" or getattr(self, name) != getattr(defaults, name)
        }
        return json.dumps(data, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("fault plan JSON must be an object")
        return cls(**data)


class _DeterministicRNG:
    """A tiny seeded PRNG (xorshift64*) — stable across Python versions.

    ``random.Random`` would work, but pinning the generator keeps
    "byte-for-byte reproducible given the same seed" independent of
    stdlib implementation details.
    """

    def __init__(self, seed: int) -> None:
        self._state = (seed * 2654435769 + 0x9E3779B97F4A7C15) & (2**64 - 1) or 1

    def next_u64(self) -> int:
        x = self._state
        x ^= (x >> 12) & (2**64 - 1)
        x = (x ^ (x << 25)) & (2**64 - 1)
        x ^= (x >> 27) & (2**64 - 1)
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & (2**64 - 1)

    def uniform(self) -> float:
        return self.next_u64() / 2**64

    def randrange(self, n: int) -> int:
        return self.next_u64() % n if n > 0 else 0


class _FaultyWritable(WritableFile):
    def __init__(self, inner: WritableFile, storage: "FaultyStorage", name: str):
        self._inner = inner
        self._storage = storage
        self._name = name

    def append(self, data: bytes) -> None:
        self._storage._before_op("write", self._name)
        self._inner.append(data)

    def flush(self) -> None:
        self._inner.flush()

    def sync(self) -> None:
        self._storage._before_op("sync", self._name)
        self._inner.sync()
        self._storage._mark_durable(self._name, self._inner.tell())

    def tell(self) -> int:
        return self._inner.tell()

    def close(self) -> None:
        # Close never raises: it runs while exceptions unwind.  A
        # close without sync leaves the unsynced tail volatile.
        self._inner.close()


class _FaultyReadable(ReadableFile):
    def __init__(self, inner: ReadableFile, storage: "FaultyStorage", name: str):
        self._inner = inner
        self._storage = storage
        self._name = name

    def pread(self, offset: int, length: int) -> bytes:
        self._storage._before_op("read", self._name)
        data = self._inner.pread(offset, length)
        return self._storage._maybe_bitflip(data)

    def size(self) -> int:
        return self._inner.size()

    def close(self) -> None:
        self._inner.close()


class FaultyStorage(Storage):
    """Wrap ``inner``, injecting the faults a :class:`FaultPlan` asks for.

    Thread-safe: fault decisions and durability bookkeeping happen
    under one lock, so the background compactor and foreground writer
    draw from a single deterministic fault sequence.

    ``injected`` counts injections by kind (``read``/``write``/
    ``sync``/``rename``/``bitflip``/``crash``); mirrored into
    ``faults.injected.*`` counters once :meth:`attach_metrics` is
    called (the DB does this on open).
    """

    def __init__(self, inner: Storage, plan: Optional[FaultPlan] = None) -> None:
        from ..analysis.locksan import make_lock

        self.inner = inner
        self._lock = make_lock("devices.faults")
        self.injected: dict[str, int] = {}
        self.points_seen: list[str] = []
        self.crashed = False
        self._metrics = None
        #: durable byte length per file *written through this wrapper*;
        #: files never written through us are durable at full length.
        self._durable: dict[str, int] = {}
        self._created: set[str] = set()
        self._op_counts = {"read": 0, "write": 0, "sync": 0, "rename": 0}
        self._errors_injected = 0
        self.arm(plan or FaultPlan())

    # ------------------------------------------------------------- plan
    def arm(self, plan: FaultPlan) -> None:
        """Install ``plan`` (resets RNG, op counters, crash skip)."""
        with self._lock:
            self.plan = plan
            self._rng = _DeterministicRNG(plan.seed)
            self._op_counts = {k: 0 for k in self._op_counts}
            self._errors_injected = 0
            self._crash_skip_left = plan.crash_skip

    def disarm(self) -> None:
        """Stop injecting (durability tracking continues)."""
        self.arm(replace(self.plan, read_error_rate=0.0, write_error_rate=0.0,
                         sync_error_rate=0.0, rename_error_rate=0.0,
                         bitflip_rate=0.0, fail_nth={}, crash_at=None))

    def attach_metrics(self, metrics) -> None:
        """Mirror injection counts into ``faults.injected.*`` counters."""
        with self._lock:
            self._metrics = metrics
            for kind, n in self.injected.items():
                metrics.counter(f"faults.injected.{kind}").inc(n)

    # ------------------------------------------------------ fault engine
    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if self._metrics is not None:
            self._metrics.counter(f"faults.injected.{kind}").inc()

    def _before_op(self, kind: str, name: str) -> None:
        with self._lock:
            if self.crashed:
                raise StorageError(
                    f"storage frozen after simulated crash ({kind} {name!r})"
                )
            self._op_counts[kind] += 1
            n = self._op_counts[kind]
            plan = self.plan
            budget = (
                plan.max_errors is None
                or self._errors_injected < plan.max_errors
            )
            hit = plan.fail_nth.get(kind) == n
            if not hit and budget:
                rate = getattr(plan, f"{kind}_error_rate")
                hit = rate > 0.0 and self._rng.uniform() < rate
            elif hit and not budget:
                hit = False
            if hit:
                self._errors_injected += 1
                self._count(kind)
                raise TransientIOError(
                    f"injected {kind} error (op #{n}) on {name!r}"
                )

    def _maybe_bitflip(self, data: bytes) -> bytes:
        with self._lock:
            plan = self.plan
            if (
                not data
                or plan.bitflip_rate <= 0.0
                or self._rng.uniform() >= plan.bitflip_rate
            ):
                return data
            pos = self._rng.randrange(len(data))
            bit = self._rng.randrange(8)
            self._count("bitflip")
        flipped = bytearray(data)
        flipped[pos] ^= 1 << bit
        return bytes(flipped)

    def _mark_durable(self, name: str, length: int) -> None:
        with self._lock:
            self._durable[name] = length

    # ------------------------------------------------------ crash points
    def crash_point(self, name: str) -> None:
        """Record a crash-point hit; raise if the plan arms this point."""
        with self._lock:
            self.points_seen.append(name)
            if self.crashed or self.plan.crash_at != name:
                return
            if self._crash_skip_left > 0:
                self._crash_skip_left -= 1
                return
            self.crashed = True
            self._count("crash")
        raise SimulatedCrash(name)

    def frozen_storage(self) -> MemStorage:
        """The synced disk image, as a fresh :class:`MemStorage`.

        Files written through this wrapper are truncated to their last
        synced length (plus a seeded torn prefix of the unsynced tail
        when the plan says ``torn_tail``); files created but never
        synced are dropped entirely — a journalled filesystem gives no
        guarantee they survive.  Files never written through us are
        taken whole.
        """
        with self._lock:
            image = MemStorage()
            for name in self.inner.list():
                data = self.inner.open(name).read_all()
                if name in self._durable:
                    dlen = self._durable[name]
                    if self.plan.torn_tail and len(data) > dlen:
                        dlen += self._rng.randrange(len(data) - dlen + 1)
                    if dlen == 0 and name in self._created:
                        continue
                    data = data[:dlen]
                with image.create(name) as f:
                    if data:
                        f.append(data)
                    f.sync()
            return image

    # ------------------------------------------------------- storage API
    def create(self, name: str) -> WritableFile:
        with self._lock:
            if self.crashed:
                raise StorageError("storage frozen after simulated crash")
            self._durable[name] = 0
            self._created.add(name)
        return _FaultyWritable(self.inner.create(name), self, name)

    def open(self, name: str) -> ReadableFile:
        with self._lock:
            if self.crashed:
                raise StorageError("storage frozen after simulated crash")
        return _FaultyReadable(self.inner.open(name), self, name)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def delete(self, name: str) -> None:
        with self._lock:
            if self.crashed:
                raise StorageError("storage frozen after simulated crash")
            self._durable.pop(name, None)
            self._created.discard(name)
        self.inner.delete(name)

    def rename(self, old: str, new: str) -> None:
        self._before_op("rename", old)
        self.inner.rename(old, new)
        with self._lock:
            # The rename itself is atomic+durable (journalled metadata);
            # the *content* keeps whatever durability it had.
            if old in self._durable:
                self._durable[new] = self._durable.pop(old)
            else:
                self._durable.pop(new, None)
            if old in self._created:
                self._created.discard(old)
                self._created.add(new)

    def list(self) -> list[str]:
        return self.inner.list()


def find_faulty(storage) -> Optional[FaultyStorage]:
    """The :class:`FaultyStorage` in a wrapper chain, if any.

    Walks ``.inner`` links (Metered/Timed/Faulty wrappers all expose
    one), so the engine finds its fault injector no matter how the
    storage stack is composed.
    """
    seen = 0
    while storage is not None and seen < 16:
        if isinstance(storage, FaultyStorage):
            return storage
        storage = getattr(storage, "inner", None)
        seen += 1
    return None


def fire_crash_point(storage, name: str) -> None:
    """Fire crash point ``name`` if ``storage`` wraps a fault injector.

    A no-op on plain storage, so engine code sprinkles these freely;
    ``name`` should be one of :data:`CRASH_POINTS`.
    """
    faulty = find_faulty(storage)
    if faulty is not None:
        faulty.crash_point(name)


def corrupt_file(storage, name: str, offset: int, mask: int = 0xFF) -> None:
    """Flip bits at ``offset % size`` of ``name`` in place.

    The canonical corruption seeder for tests (previously duplicated as
    ``_corrupt`` helpers): XORs one byte with ``mask`` and rewrites the
    file through the storage API.
    """
    data = bytearray(storage.open(name).read_all())
    if not data:
        raise ValueError(f"cannot corrupt empty file {name!r}")
    data[offset % len(data)] ^= mask
    storage.delete(name)
    with storage.create(name) as f:
        f.append(bytes(data))
        f.sync()
