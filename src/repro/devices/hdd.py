"""Rotating-disk service-time model.

Calibrated to the paper's testbed class (1 TB 7200 RPM SATA III).  The
model captures the three HDD effects the paper leans on:

* **positioning cost** — a random access pays average seek plus half a
  rotation; compaction interleaves reads of two input SSTables with
  writes of the output, so in practice nearly every sub-task I/O pays
  it ("the disk arm may suffer seeks due to that there are multiple
  sub-tasks in one compaction").
* **write-back buffering** — "the write request is considered completed
  after the data has been written into the disk write buffer rather
  than the disk", so writes skip the full positioning cost and see a
  higher effective bandwidth than reads.
* **aging** — seek distance grows with the occupied data span, which is
  why compaction bandwidth on HDD sags slightly as the working set
  grows (Fig 10(b)).  ``seek_scale_per_gb`` linearly inflates the seek
  with the device's logical fill level (see :meth:`set_fill_bytes`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import AccessKind, Device

__all__ = ["HDDSpec", "HDD"]


@dataclass(frozen=True)
class HDDSpec:
    """Parameters of the rotating-disk model."""

    seek_s: float = 0.012  # average seek
    rotation_s: float = 0.00417  # half-rotation at 7200 RPM
    read_bandwidth: float = 100e6  # sustained media rate, bytes/s
    write_bandwidth: float = 85e6  # effective rate into the write-back buffer
    write_overhead_s: float = 0.0  # fixed per-write cost (cache admission)
    seek_scale_per_gb: float = 0.004  # fractional seek inflation per GB resident

    def positioning_s(self, fill_bytes: int) -> float:
        """Seek + rotational latency, inflated by device fill level."""
        scale = 1.0 + self.seek_scale_per_gb * (fill_bytes / 1e9)
        return self.seek_s * scale + self.rotation_s


class HDD(Device):
    """7200 RPM SATA-class rotating disk."""

    def __init__(self, spec: HDDSpec | None = None, name: str = "hdd") -> None:
        super().__init__(name)
        self.spec = spec or HDDSpec()
        self._fill_bytes = 0

    def set_fill_bytes(self, nbytes: int) -> None:
        """Tell the model how much data the device currently holds."""
        if nbytes < 0:
            raise ValueError(f"negative fill: {nbytes}")
        self._fill_bytes = nbytes

    @property
    def fill_bytes(self) -> int:
        return self._fill_bytes

    def _service_time(self, kind: str, size: int, sequential: bool) -> float:
        if kind == AccessKind.READ:
            t = size / self.spec.read_bandwidth
            if not sequential:
                t += self.spec.positioning_s(self._fill_bytes)
            return t
        # Writes land in the drive's write-back buffer: no positioning
        # cost, but a fixed admission overhead and a lower effective
        # bandwidth (the buffer drains to media in the background and
        # back-pressures sustained streams).
        return self.spec.write_overhead_s + size / self.spec.write_bandwidth
