"""Seed-deterministic network fault injection: a TCP chaos proxy.

:mod:`repro.devices.faults` injects the *storage* failures the engine
must survive; this module is its network twin.  A served replica set
sees a class of failures no storage plan can model — refused
connections, latency spikes, asymmetric partitions, connections cut in
the middle of a frame — and the replication layer's failover story is
only trustworthy if those failures are injectable on demand, in tests,
deterministically.

:class:`FaultyProxy` is a threaded TCP proxy that forwards one
listening endpoint to one upstream server, driven by a declarative
:class:`NetFaultPlan` (same idiom as :class:`~repro.devices.faults.
FaultPlan`: probabilistic *and* nth-op triggers, one seed, JSON
round-trip for the ``dbtool chaos-proxy`` CLI):

* **refuse** — accept then immediately close the Nth (or a seeded
  fraction of) inbound connections;
* **cut** — drop a live connection on a chosen relayed chunk, with
  ``cut_mid_frame`` forwarding a seeded prefix first so the peer sees
  a torn frame (the CRC layer must catch it);
* **latency** — per-chunk fixed + seeded-jitter delay;
* **black hole** — swallow bytes in one direction (or both) while the
  socket stays open: the asymmetric partition that makes a primary
  look alive to TCP but dead to its followers.

Runtime controls (:meth:`FaultyProxy.partition` / :meth:`~FaultyProxy.
heal` / :meth:`~FaultyProxy.drop_connections`) drive kill/partition/
heal schedules from a test harness; injections are mirrored into
``net.fault_injected`` counters and event-log records once
:meth:`FaultyProxy.attach_obs` is called.

Determinism: all randomness derives from ``NetFaultPlan.seed`` through
one shared PRNG, so a fixed plan over a fixed *operation sequence*
(connections accepted, chunks relayed per direction) injects the same
faults.  Chunk boundaries depend on the OS, so tests that need exact
aiming use the ``fail_nth`` connection trigger, partitions, and the
runtime controls — none of which depend on how TCP slices the stream.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from .faults import _DeterministicRNG

__all__ = ["NetFaultPlan", "FaultyProxy"]

#: Op kinds a plan may aim ``fail_nth`` at: inbound connections and
#: relayed chunks per direction (client→server / server→client).
_NET_OP_KINDS = ("connect", "c2s", "s2c")

_BLACKHOLE_MODES = ("c2s", "s2c", "both")


@dataclass(frozen=True)
class NetFaultPlan:
    """Declarative description of the network faults to inject.

    ``refuse_rate`` closes a seeded fraction of inbound connections
    right after accept; ``cut_rate`` drops a live connection on a
    seeded fraction of relayed chunks (either direction).
    ``fail_nth`` maps an op kind (``connect``/``c2s``/``s2c``) to a
    1-based global op index that faults exactly once — deterministic
    aiming for "the 3rd connection is refused".  ``latency_ms`` (+
    seeded ``latency_jitter_ms``) delays every relayed chunk.
    ``blackhole`` swallows bytes in one direction (``c2s``/``s2c``) or
    ``both`` while connections stay open — an asymmetric partition.
    ``cut_mid_frame`` makes cuts tear the chunk: a seeded prefix is
    forwarded before the close.  ``max_faults`` bounds refuse+cut
    injections (black-holing and latency are continuous conditions,
    not budgeted events); ``None`` means unbounded.
    """

    seed: int = 0
    refuse_rate: float = 0.0
    cut_rate: float = 0.0
    latency_ms: float = 0.0
    latency_jitter_ms: float = 0.0
    blackhole: Optional[str] = None
    cut_mid_frame: bool = False
    fail_nth: dict = field(default_factory=dict)
    max_faults: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("refuse_rate", "cut_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} out of [0, 1]: {rate}")
        for name in ("latency_ms", "latency_jitter_ms"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.blackhole is not None and self.blackhole not in _BLACKHOLE_MODES:
            raise ValueError(
                f"blackhole must be one of {_BLACKHOLE_MODES}, "
                f"got {self.blackhole!r}"
            )
        for kind, nth in self.fail_nth.items():
            if kind not in _NET_OP_KINDS:
                raise ValueError(f"fail_nth: unknown op kind {kind!r}")
            if nth < 1:
                raise ValueError(f"fail_nth[{kind!r}] must be >= 1, got {nth}")

    def to_json(self) -> str:
        defaults = NetFaultPlan()
        data = {
            name: getattr(self, name)
            for name in defaults.__dataclass_fields__
            if name == "seed" or getattr(self, name) != getattr(defaults, name)
        }
        return json.dumps(data, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "NetFaultPlan":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("net fault plan JSON must be an object")
        return cls(**data)


class _ConnPair:
    """One proxied connection: client socket, upstream socket, pumps."""

    __slots__ = ("client", "upstream", "closed")

    def __init__(self, client: socket.socket, upstream: socket.socket) -> None:
        self.client = client
        self.upstream = upstream
        self.closed = False

    def close(self) -> None:
        # Idempotent, never raises: both pumps and the proxy's own
        # close path race to tear a pair down.
        self.closed = True
        for sock in (self.client, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class FaultyProxy:
    """Fault-injecting TCP proxy in front of ``upstream_host:port``.

    Thread-safe: fault decisions for every connection draw from one
    seeded RNG under one lock, runtime controls (:meth:`partition`,
    :meth:`set_plan`, :meth:`drop_connections`) may be called from any
    thread.  ``injected`` counts injections by kind (``refuse`` /
    ``cut`` / ``blackhole`` / ``latency``).
    """

    #: Socket timeout on both pump directions; bounds how fast close()
    #: and partition changes are noticed.
    _TICK_S = 0.25

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: Optional[NetFaultPlan] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        from ..analysis.locksan import make_lock

        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.host = host
        self._lock = make_lock("devices.netfaults")
        self._stop = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._pairs: set[_ConnPair] = set()
        self._conn_seq = 0
        self.injected: dict[str, int] = {}
        self._metrics = None
        self._events = None
        #: runtime partition overlay (OR-ed with the plan's blackhole).
        self._partition: Optional[str] = None
        self._requested_port = port
        self.set_plan(plan or NetFaultPlan())

    # --------------------------------------------------------- lifecycle
    def start(self) -> "FaultyProxy":
        if self._listener is not None:
            raise RuntimeError("proxy already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(64)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"netfault-accept-{self.port}",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    @property
    def port(self) -> int:
        if self._listener is None:
            raise RuntimeError("proxy not started")
        return self._listener.getsockname()[1]

    @property
    def endpoint(self) -> tuple[str, int]:
        return (self.host, self.port)

    def close(self) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        self.drop_connections(count=False)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)

    def __enter__(self) -> "FaultyProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ---------------------------------------------------------- controls
    def set_plan(self, plan: NetFaultPlan) -> None:
        """Install ``plan`` (resets the RNG and the op counters)."""
        with self._lock:
            self.plan = plan
            self._rng = _DeterministicRNG(plan.seed)
            self._op_counts = {k: 0 for k in _NET_OP_KINDS}
            self._faults_injected = 0

    def partition(self, direction: str = "both") -> None:
        """Black-hole live *and* future connections in ``direction``.

        The sockets stay open — peers see silence, not a reset — which
        is exactly the failure heartbeat deadlines exist to catch.
        """
        if direction not in _BLACKHOLE_MODES:
            raise ValueError(
                f"direction must be one of {_BLACKHOLE_MODES}, "
                f"got {direction!r}"
            )
        with self._lock:
            self._partition = direction

    def heal(self) -> None:
        """Lift a :meth:`partition` (the plan's own blackhole stays)."""
        with self._lock:
            self._partition = None

    @property
    def partitioned(self) -> Optional[str]:
        with self._lock:
            return self._partition

    def drop_connections(self, count: bool = True) -> int:
        """Hard-close every live proxied connection (both sides)."""
        with self._lock:
            pairs = list(self._pairs)
            self._pairs.clear()
        for pair in pairs:
            pair.close()
        if pairs and count:
            self._note("cut", "drop_connections", n=len(pairs))
        return len(pairs)

    @property
    def n_connections(self) -> int:
        with self._lock:
            return len(self._pairs)

    def attach_obs(self, metrics=None, events=None) -> None:
        """Mirror injections into ``net.fault_injected`` counters and
        (optionally) event-log records."""
        with self._lock:
            self._metrics = metrics
            self._events = events
            if metrics is not None:
                total = sum(self.injected.values())
                if total:
                    metrics.counter("net.fault_injected").inc(total)
                for kind, n in self.injected.items():
                    metrics.counter(f"net.fault_injected.{kind}").inc(n)

    # ------------------------------------------------------ fault engine
    def _note(self, kind: str, detail: str, n: int = 1) -> None:
        """Record ``n`` injections of ``kind`` (outside self._lock)."""
        with self._lock:
            self.injected[kind] = self.injected.get(kind, 0) + n
            metrics, events = self._metrics, self._events
        if metrics is not None:
            metrics.counter("net.fault_injected").inc(n)
            metrics.counter(f"net.fault_injected.{kind}").inc(n)
        if events is not None and events.enabled:
            events.emit("net.fault_injected", kind=kind, detail=detail, n=n)

    def _decide(self, kind: str) -> bool:
        """Should op ``kind`` fault?  (connect→refuse, chunk→cut)"""
        with self._lock:
            self._op_counts[kind] += 1
            n = self._op_counts[kind]
            plan = self.plan
            budget = (
                plan.max_faults is None
                or self._faults_injected < plan.max_faults
            )
            hit = plan.fail_nth.get(kind) == n
            if not hit and budget:
                rate = plan.refuse_rate if kind == "connect" else plan.cut_rate
                hit = rate > 0.0 and self._rng.uniform() < rate
            elif hit and not budget:
                hit = False
            if hit:
                self._faults_injected += 1
            return hit

    def _latency_s(self) -> float:
        with self._lock:
            plan = self.plan
            if plan.latency_ms <= 0 and plan.latency_jitter_ms <= 0:
                return 0.0
            jitter = (
                plan.latency_jitter_ms * self._rng.uniform()
                if plan.latency_jitter_ms > 0
                else 0.0
            )
            return (plan.latency_ms + jitter) / 1e3

    def _blackholed(self, direction: str) -> bool:
        with self._lock:
            for mode in (self._partition, self.plan.blackhole):
                if mode is not None and mode in (direction, "both"):
                    return True
            return False

    def _torn_prefix(self, chunk: bytes) -> bytes:
        with self._lock:
            if not self.plan.cut_mid_frame or len(chunk) < 2:
                return b""
            return chunk[: 1 + self._rng.randrange(len(chunk) - 1)]

    # ----------------------------------------------------------- pumping
    def _accept_loop(self) -> None:
        assert self._listener is not None
        self._listener.settimeout(self._TICK_S)
        while not self._stop.is_set():
            try:
                client, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            if self._decide("connect"):
                self._note("refuse", "connect refused")
                try:
                    client.close()
                except OSError:
                    pass
                continue
            try:
                upstream = socket.create_connection(
                    (self.upstream_host, self.upstream_port), timeout=5.0
                )
            except OSError:
                # Upstream genuinely down: behave like it (refuse), but
                # do not count it as an injection.
                try:
                    client.close()
                except OSError:
                    pass
                continue
            for sock in (client, upstream):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                sock.settimeout(self._TICK_S)
            pair = _ConnPair(client, upstream)
            with self._lock:
                if self._stop.is_set():
                    pair.close()
                    return
                self._pairs.add(pair)
                self._conn_seq += 1
                conn_id = self._conn_seq
            for direction, src, dst in (
                ("c2s", client, upstream),
                ("s2c", upstream, client),
            ):
                threading.Thread(
                    target=self._pump,
                    args=(pair, src, dst, direction),
                    name=f"netfault-{direction}-{conn_id}",
                    daemon=True,
                ).start()

    def _pump(
        self,
        pair: _ConnPair,
        src: socket.socket,
        dst: socket.socket,
        direction: str,
    ) -> None:
        try:
            while not self._stop.is_set() and not pair.closed:
                try:
                    chunk = src.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    return
                if not chunk:
                    return  # peer closed; tear down both directions
                if self._decide(direction):
                    prefix = self._torn_prefix(chunk)
                    if prefix:
                        try:
                            dst.sendall(prefix)
                        except OSError:
                            pass
                    self._note(
                        "cut",
                        f"{direction} cut"
                        + (f" after {len(prefix)}B torn prefix" if prefix
                           else ""),
                    )
                    return
                delay = self._latency_s()
                if delay > 0:
                    self._note("latency", f"{direction} +{delay * 1e3:.1f}ms")
                    time.sleep(delay)
                if self._blackholed(direction):
                    self._note("blackhole", f"{direction} swallowed")
                    continue
                try:
                    dst.sendall(chunk)
                except OSError:
                    return
        finally:
            pair.close()
            with self._lock:
                self._pairs.discard(pair)
