"""Virtual filesystem abstraction for the LSM engine.

The engine never touches ``open()`` directly; it goes through a
:class:`Storage`, so the same code runs against real files
(:class:`OSStorage`), an in-memory store (:class:`MemStorage`, used by
tests and by the simulated experiments), or a timing-charging wrapper
(:class:`TimedStorage`, which forwards to an inner storage and charges
a device model for every I/O — how the Fig 10 system-level experiments
account virtual time).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Optional

from ..analysis.locksan import make_lock
from .base import Device

__all__ = [
    "StorageError",
    "WritableFile",
    "ReadableFile",
    "Storage",
    "MemStorage",
    "OSStorage",
    "TimedStorage",
    "MeteredStorage",
]


class StorageError(OSError):
    """Raised for missing files and other storage-level failures."""


class WritableFile(ABC):
    """Append-only output file."""

    @abstractmethod
    def append(self, data: bytes) -> None: ...

    @abstractmethod
    def flush(self) -> None: ...

    @abstractmethod
    def sync(self) -> None:
        """Durability barrier (fsync equivalent)."""

    @abstractmethod
    def close(self) -> None: ...

    @abstractmethod
    def tell(self) -> int:
        """Bytes appended so far."""

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ReadableFile(ABC):
    """Random-access input file."""

    @abstractmethod
    def pread(self, offset: int, length: int) -> bytes:
        """Read exactly up to ``length`` bytes at ``offset``."""

    @abstractmethod
    def size(self) -> int: ...

    @abstractmethod
    def close(self) -> None: ...

    def read_all(self) -> bytes:
        return self.pread(0, self.size())

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Storage(ABC):
    """A namespace of files."""

    @abstractmethod
    def create(self, name: str) -> WritableFile: ...

    @abstractmethod
    def open(self, name: str) -> ReadableFile: ...

    @abstractmethod
    def exists(self, name: str) -> bool: ...

    @abstractmethod
    def delete(self, name: str) -> None: ...

    @abstractmethod
    def rename(self, old: str, new: str) -> None: ...

    @abstractmethod
    def list(self) -> list[str]: ...

    def file_size(self, name: str) -> int:
        with self.open(name) as f:
            return f.size()


# ----------------------------------------------------------------- mem
class _MemWritable(WritableFile):
    def __init__(self, store: "MemStorage", name: str) -> None:
        self._store = store
        self._name = name
        self._buf = bytearray()
        self._closed = False

    def append(self, data: bytes) -> None:
        if self._closed:
            raise StorageError(f"append to closed file {self._name!r}")
        self._buf += data
        # Publish eagerly so readers opened mid-write (the WAL case)
        # observe appended data, like a page-cache read would.
        self._store._files[self._name] = bytes(self._buf)

    def flush(self) -> None:
        pass

    def sync(self) -> None:
        pass

    def tell(self) -> int:
        return len(self._buf)

    def close(self) -> None:
        if not self._closed:
            self._store._files[self._name] = bytes(self._buf)
            self._closed = True


class _MemReadable(ReadableFile):
    def __init__(self, data: bytes, name: str) -> None:
        self._data = data
        self._name = name

    def pread(self, offset: int, length: int) -> bytes:
        if offset < 0 or length < 0:
            raise ValueError("negative offset/length")
        return self._data[offset : offset + length]

    def size(self) -> int:
        return len(self._data)

    def close(self) -> None:
        pass


class MemStorage(Storage):
    """In-memory storage; thread-safe for the engine's usage pattern."""

    def __init__(self) -> None:
        self._files: dict[str, bytes] = {}
        self._lock = make_lock("vfs.memstorage")

    def create(self, name: str) -> WritableFile:
        with self._lock:
            self._files[name] = b""
        return _MemWritable(self, name)

    def open(self, name: str) -> ReadableFile:
        with self._lock:
            try:
                data = self._files[name]
            except KeyError:
                raise StorageError(f"no such file: {name!r}") from None
        return _MemReadable(data, name)

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._files

    def delete(self, name: str) -> None:
        with self._lock:
            if name not in self._files:
                raise StorageError(f"no such file: {name!r}")
            del self._files[name]

    def rename(self, old: str, new: str) -> None:
        with self._lock:
            if old not in self._files:
                raise StorageError(f"no such file: {old!r}")
            self._files[new] = self._files.pop(old)

    def list(self) -> list[str]:
        with self._lock:
            return sorted(self._files)

    def total_bytes(self) -> int:
        """Sum of all file sizes (the device 'fill level')."""
        with self._lock:
            return sum(len(v) for v in self._files.values())


# ------------------------------------------------------------------ os
class _OSWritable(WritableFile):
    def __init__(self, path: str) -> None:
        self._f = open(path, "wb")  # noqa: SIM115 - closed in close()
        self._offset = 0

    def append(self, data: bytes) -> None:
        self._f.write(data)
        self._offset += len(data)

    def flush(self) -> None:
        self._f.flush()

    def sync(self) -> None:
        self._f.flush()
        os.fsync(self._f.fileno())

    def tell(self) -> int:
        return self._offset

    def close(self) -> None:
        if not self._f.closed:
            self._f.close()


class _OSReadable(ReadableFile):
    def __init__(self, path: str) -> None:
        # ``_closed`` must exist before os.open so that __del__ of a
        # half-constructed instance (open() raised) stays silent.
        self._closed = True
        self._fd = os.open(path, os.O_RDONLY)
        self._size = os.fstat(self._fd).st_size
        self._closed = False

    def pread(self, offset: int, length: int) -> bytes:
        return os.pread(self._fd, length, offset)

    def size(self) -> int:
        return self._size

    def close(self) -> None:
        if not self._closed:
            os.close(self._fd)
            self._closed = True

    def __del__(self) -> None:  # release the fd when the last reader drops
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass


class OSStorage(Storage):
    """Real files under a root directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, name: str) -> str:
        return os.path.join(self.root, name)

    def create(self, name: str) -> WritableFile:
        return _OSWritable(self._path(name))

    def open(self, name: str) -> ReadableFile:
        try:
            return _OSReadable(self._path(name))
        except FileNotFoundError:
            raise StorageError(f"no such file: {name!r}") from None

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def delete(self, name: str) -> None:
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            raise StorageError(f"no such file: {name!r}") from None

    def rename(self, old: str, new: str) -> None:
        try:
            os.replace(self._path(old), self._path(new))
        except FileNotFoundError:
            raise StorageError(f"no such file: {old!r}") from None

    def list(self) -> list[str]:
        return sorted(os.listdir(self.root))


# --------------------------------------------------------------- timed
class _TimedWritable(WritableFile):
    def __init__(self, inner: WritableFile, storage: "TimedStorage", name: str):
        self._inner = inner
        self._storage = storage
        self._name = name
        self._offset = 0

    def append(self, data: bytes) -> None:
        self._inner.append(data)
        self._storage._charge_write(len(data), self._name, self._offset)
        self._offset += len(data)

    def flush(self) -> None:
        self._inner.flush()

    def sync(self) -> None:
        self._inner.sync()
        self._storage._charge_sync()

    def tell(self) -> int:
        return self._inner.tell()

    def close(self) -> None:
        self._inner.close()


class _TimedReadable(ReadableFile):
    def __init__(self, inner: ReadableFile, storage: "TimedStorage", name: str):
        self._inner = inner
        self._storage = storage
        self._name = name

    def pread(self, offset: int, length: int) -> bytes:
        data = self._inner.pread(offset, length)
        self._storage._charge_read(len(data), self._name, offset)
        return data

    def size(self) -> int:
        return self._inner.size()

    def close(self) -> None:
        self._inner.close()


class TimedStorage(Storage):
    """Forward to an inner storage while charging a device model.

    Charged seconds accumulate in :attr:`io_seconds`; experiments fold
    them into a virtual-time ledger.  ``sync_s`` is a fixed durability
    cost per :meth:`WritableFile.sync`.
    """

    def __init__(self, inner: Storage, device: Device, sync_s: float = 0.0) -> None:
        self.inner = inner
        self.device = device
        self.sync_s = sync_s
        self.io_seconds = 0.0

    def _charge_read(self, size: int, name: str, offset: int) -> None:
        self.io_seconds += self.device.read_time(size, stream=name, offset=offset)

    def _charge_write(self, size: int, name: str, offset: int) -> None:
        self.io_seconds += self.device.write_time(size, stream=name, offset=offset)

    def _charge_sync(self) -> None:
        self.io_seconds += self.sync_s

    def create(self, name: str) -> WritableFile:
        return _TimedWritable(self.inner.create(name), self, name)

    def open(self, name: str) -> ReadableFile:
        return _TimedReadable(self.inner.open(name), self, name)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def delete(self, name: str) -> None:
        self.inner.delete(name)

    def rename(self, old: str, new: str) -> None:
        self.inner.rename(old, new)

    def list(self) -> list[str]:
        return self.inner.list()


# ------------------------------------------------------------- metered
class _MeteredWritable(WritableFile):
    def __init__(self, inner: WritableFile, storage: "MeteredStorage"):
        self._inner = inner
        self._storage = storage

    def append(self, data: bytes) -> None:
        self._inner.append(data)
        self._storage._m_write_ops.inc()
        self._storage._m_write_bytes.inc(len(data))

    def flush(self) -> None:
        self._inner.flush()

    def sync(self) -> None:
        self._inner.sync()
        self._storage._m_sync_ops.inc()

    def tell(self) -> int:
        return self._inner.tell()

    def close(self) -> None:
        self._inner.close()


class _MeteredReadable(ReadableFile):
    def __init__(self, inner: ReadableFile, storage: "MeteredStorage"):
        self._inner = inner
        self._storage = storage

    def pread(self, offset: int, length: int) -> bytes:
        data = self._inner.pread(offset, length)
        self._storage._m_read_ops.inc()
        self._storage._m_read_bytes.inc(len(data))
        return data

    def size(self) -> int:
        return self._inner.size()

    def close(self) -> None:
        self._inner.close()


class MeteredStorage(Storage):
    """Forward to an inner storage while counting I/O into a registry.

    The accounting sibling of :class:`TimedStorage`: every pread /
    append / sync increments ``io.<device>.{read,write}.{ops,bytes}``
    and ``io.<device>.sync.ops`` counters in a
    :class:`repro.obs.MetricsRegistry`.  ``device`` defaults to the
    inner storage's class name (``mem``, ``os``, ``timed``), so two
    devices metered into one registry stay distinguishable.
    """

    def __init__(self, inner: Storage, metrics, device: Optional[str] = None):
        self.inner = inner
        self.device = device or type(inner).__name__.removesuffix(
            "Storage"
        ).lower()
        prefix = f"io.{self.device}"
        self._m_read_ops = metrics.counter(f"{prefix}.read.ops")
        self._m_read_bytes = metrics.counter(f"{prefix}.read.bytes")
        self._m_write_ops = metrics.counter(f"{prefix}.write.ops")
        self._m_write_bytes = metrics.counter(f"{prefix}.write.bytes")
        self._m_sync_ops = metrics.counter(f"{prefix}.sync.ops")

    def create(self, name: str) -> WritableFile:
        return _MeteredWritable(self.inner.create(name), self)

    def open(self, name: str) -> ReadableFile:
        return _MeteredReadable(self.inner.open(name), self)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def delete(self, name: str) -> None:
        self.inner.delete(name)

    def rename(self, old: str, new: str) -> None:
        self.inner.rename(old, new)

    def list(self) -> list[str]:
        return self.inner.list()
