"""Multi-device aggregates.

Two different shapes of "k disks" appear in the paper:

* :class:`DiskArray` — the S-PPCP resource pool: k independent devices,
  and *different sub-tasks'* I/Os are scheduled on *different* disks
  ("Step 1 of sub-task 1 is scheduled on disk 1 and Step 1 of sub-task
  2 is scheduled on disk 2").  The array is not itself a service-time
  oracle; the pipeline backend owns one simulated resource per member
  and assigns sub-tasks round-robin.
* :class:`RAID0` — md-style striping of a *single* I/O across k
  members, as the paper's testbed used for file layout.  A request of
  ``size`` bytes splits into per-member shares; the service time is the
  slowest member's share.  Positioning costs do **not** divide by k
  (every spindle still seeks once), which is the realistic imperfection
  that makes striped scaling sub-linear.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .base import AccessKind, Device

__all__ = ["DiskArray", "RAID0"]


class DiskArray:
    """A pool of k independent devices for S-PPCP scheduling."""

    def __init__(self, devices: Sequence[Device], name: str = "array") -> None:
        if not devices:
            raise ValueError("DiskArray needs at least one device")
        self.devices = list(devices)
        self.name = name

    def __len__(self) -> int:
        return len(self.devices)

    def device_for(self, index: int) -> Device:
        """Round-robin member selection for sub-task ``index``."""
        return self.devices[index % len(self.devices)]

    def reset(self) -> None:
        for dev in self.devices:
            dev.reset()

    def total_stats(self):
        """Aggregate (bytes_read, bytes_written, read_time, write_time)."""
        br = sum(d.stats.bytes_read for d in self.devices)
        bw = sum(d.stats.bytes_written for d in self.devices)
        rt = sum(d.stats.read_time for d in self.devices)
        wt = sum(d.stats.write_time for d in self.devices)
        return br, bw, rt, wt


class RAID0(Device):
    """Stripe a single I/O across k member devices.

    Members are constructed by ``member_factory`` so each has private
    positioning state.  ``stripe_unit`` is the md chunk size; an I/O
    engages ``min(k, ceil(size / stripe_unit))`` members.
    """

    def __init__(
        self,
        member_factory: Callable[[int], Device],
        k: int,
        stripe_unit: int = 64 * 1024,
        name: str = "raid0",
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if stripe_unit < 1:
            raise ValueError(f"stripe_unit must be >= 1, got {stripe_unit}")
        super().__init__(name)
        self.members = [member_factory(i) for i in range(k)]
        self.stripe_unit = stripe_unit

    @property
    def k(self) -> int:
        return len(self.members)

    def _service_time(self, kind: str, size: int, sequential: bool) -> float:
        stripes = max(1, -(-size // self.stripe_unit))
        engaged = min(self.k, stripes)
        share = -(-size // engaged)  # ceil: the busiest member's bytes
        times = []
        for member in self.members[:engaged]:
            # Reproduce the caller's sequentiality on each member: a
            # random array access is a random access on every spindle.
            if kind == AccessKind.READ:
                t = member._service_time(AccessKind.READ, share, sequential)
            else:
                t = member._service_time(AccessKind.WRITE, share, sequential)
            times.append(t)
        return max(times)
