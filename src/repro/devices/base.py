"""Storage-device service-time models.

A :class:`Device` answers one question: *how long does this I/O take?*
Devices are deterministic oracles — given the same sequence of
accesses they return the same times — so every experiment is exactly
reproducible.  They also keep byte/op counters and remember the last
access (stream id, kind, end offset) so models can distinguish
sequential from random access, which is what makes the HDD's
compaction profile seek-dominated (paper §IV-B: SSTables are
dynamically allocated and read/write requests interleave, so the disk
arm seeks between sub-tasks).

Times are in **seconds**, sizes in **bytes**.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

__all__ = ["AccessKind", "DeviceStats", "Device"]


class AccessKind:
    READ = "read"
    WRITE = "write"


@dataclass
class DeviceStats:
    """Cumulative counters for one device."""

    bytes_read: int = 0
    bytes_written: int = 0
    reads: int = 0
    writes: int = 0
    read_time: float = 0.0
    write_time: float = 0.0
    seeks: int = 0

    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def total_time(self) -> float:
        return self.read_time + self.write_time


@dataclass
class _LastAccess:
    kind: Optional[str] = None
    stream: Optional[object] = None
    end_offset: Optional[int] = None


class Device(ABC):
    """Base class for service-time models.

    ``stream`` identifies a logically contiguous access sequence (an
    open file / SSTable being scanned).  An access is *sequential* when
    it continues the previous access on this device: same stream, same
    kind, and — when offsets are given — picking up exactly where the
    last one ended.  Anything else counts as random and pays the
    model's positioning cost.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = DeviceStats()
        self._last = _LastAccess()

    # -- model hooks -------------------------------------------------
    @abstractmethod
    def _service_time(self, kind: str, size: int, sequential: bool) -> float:
        """Service time for one access; implemented by models."""

    # -- public API --------------------------------------------------
    def read_time(
        self,
        size: int,
        stream: Optional[object] = None,
        offset: Optional[int] = None,
    ) -> float:
        """Charge a read of ``size`` bytes and return its service time."""
        return self._access(AccessKind.READ, size, stream, offset)

    def write_time(
        self,
        size: int,
        stream: Optional[object] = None,
        offset: Optional[int] = None,
    ) -> float:
        """Charge a write of ``size`` bytes and return its service time."""
        return self._access(AccessKind.WRITE, size, stream, offset)

    def estimate(self, kind: str, size: int, sequential: bool = False) -> float:
        """Stateless service-time estimate (no counters, no positioning).

        Used by cost models that need a deterministic per-sub-task time
        independent of access history.
        """
        if size < 0:
            raise ValueError(f"negative I/O size: {size}")
        if kind not in (AccessKind.READ, AccessKind.WRITE):
            raise ValueError(f"bad access kind: {kind!r}")
        return self._service_time(kind, size, sequential)

    def _access(
        self, kind: str, size: int, stream: Optional[object], offset: Optional[int]
    ) -> float:
        if size < 0:
            raise ValueError(f"negative I/O size: {size}")
        sequential = self._is_sequential(kind, stream, offset)
        t = self._service_time(kind, size, sequential)
        if not sequential:
            self.stats.seeks += 1
        if kind == AccessKind.READ:
            self.stats.bytes_read += size
            self.stats.reads += 1
            self.stats.read_time += t
        else:
            self.stats.bytes_written += size
            self.stats.writes += 1
            self.stats.write_time += t
        last = self._last
        last.kind = kind
        last.stream = stream
        last.end_offset = None if offset is None else offset + size
        return t

    def _is_sequential(
        self, kind: str, stream: Optional[object], offset: Optional[int]
    ) -> bool:
        last = self._last
        if last.kind is None:
            return False
        if last.kind != kind or last.stream != stream or stream is None:
            return False
        if offset is None or last.end_offset is None:
            return True  # same stream+kind, no offsets given: assume continuation
        return offset == last.end_offset

    def reset(self) -> None:
        """Clear counters and positioning state."""
        self.stats = DeviceStats()
        self._last = _LastAccess()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
