"""Flash SSD service-time model.

Calibrated to the paper's testbed class (Intel X25-M SATA).  Two
effects drive the paper's SSD-side observations:

* **internal channel parallelism** — an I/O engages roughly one flash
  channel per ``channel_chunk`` bytes, so small I/Os see a fraction of
  the device bandwidth and "larger I/O size can exploit the internal
  parallelism of SSD" (Figs 9(b), 11(a)).
* **write-after-erase asymmetry** — program/erase makes writes slower
  than reads ("the step write takes more time than step read, which is
  due to the write-after-erase feature"), the opposite of the HDD's
  buffered writes.

There is no positioning cost; random and sequential accesses cost the
same, which is why SSD compaction bandwidth stays flat as the working
set grows (Fig 10(e)).
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import AccessKind, Device

__all__ = ["SSDSpec", "SSD"]


@dataclass(frozen=True)
class SSDSpec:
    """Parameters of the flash model."""

    channels: int = 8
    channel_chunk: int = 128 * 1024  # bytes of an I/O that busy one channel
    read_bandwidth: float = 250e6  # all channels engaged, bytes/s
    write_bandwidth: float = 90e6  # all channels engaged, bytes/s
    read_latency_s: float = 0.0001  # fixed per-op cost
    write_latency_s: float = 0.0002

    def channels_engaged(self, size: int) -> int:
        """How many channels an I/O of ``size`` bytes stripes across."""
        if size <= 0:
            return 1
        used = -(-size // self.channel_chunk)  # ceil division
        return max(1, min(self.channels, used))

    def busiest_channel_bytes(self, size: int) -> int:
        """Bytes handled by the most-loaded channel.

        Chunks of ``channel_chunk`` bytes are distributed round-robin
        over the channels; the transfer completes when the busiest
        channel finishes.  This keeps service time monotone in size
        (no cliff when one extra byte engages a new channel).
        """
        if size <= 0:
            return 0
        nchunks = -(-size // self.channel_chunk)
        chunks_on_busiest = -(-nchunks // self.channels)
        return min(size, chunks_on_busiest * self.channel_chunk)


class SSD(Device):
    """SATA flash SSD with channel-level internal parallelism."""

    def __init__(self, spec: SSDSpec | None = None, name: str = "ssd") -> None:
        super().__init__(name)
        self.spec = spec or SSDSpec()

    def _service_time(self, kind: str, size: int, sequential: bool) -> float:
        spec = self.spec
        busiest = spec.busiest_channel_bytes(size)
        if kind == AccessKind.READ:
            per_channel = spec.read_bandwidth / spec.channels
            return spec.read_latency_s + busiest / per_channel
        per_channel = spec.write_bandwidth / spec.channels
        return spec.write_latency_s + busiest / per_channel
