"""Named device presets calibrated against the paper's profiles.

The calibration targets are the Fig 5 breakdown shapes at the default
configuration (1 MB sub-tasks, 116 B key-value entries, lz77-class
compression costs):

* ``hdd``: read >40 % of sub-task time, read+write >60 %, compute ≈40 %
  (7200 RPM SATA III data disk).
* ``ssd``: compute >60 %, write time > read time, I/O <40 % total
  (Intel X25-M-class SATA flash).

See :mod:`repro.core.costmodel` for the matching compute-side numbers.
"""

from __future__ import annotations

from typing import Callable

from .base import Device
from .hdd import HDD, HDDSpec
from .ssd import SSD, SSDSpec

__all__ = ["make_device", "DEVICE_PRESETS", "PAPER_HDD", "PAPER_SSD"]

PAPER_HDD = HDDSpec(
    seek_s=0.012,
    rotation_s=0.00417,
    read_bandwidth=100e6,
    write_bandwidth=85e6,
    write_overhead_s=0.0,
    seek_scale_per_gb=0.004,
)

PAPER_SSD = SSDSpec(
    channels=8,
    channel_chunk=128 * 1024,
    read_bandwidth=250e6,
    write_bandwidth=90e6,
    read_latency_s=0.0001,
    write_latency_s=0.0002,
)

DEVICE_PRESETS: dict[str, Callable[[str], Device]] = {
    "hdd": lambda name: HDD(PAPER_HDD, name=name),
    "ssd": lambda name: SSD(PAPER_SSD, name=name),
}


def make_device(kind: str, name: str | None = None) -> Device:
    """Build a preset device: ``hdd`` or ``ssd``."""
    try:
        factory = DEVICE_PRESETS[kind]
    except KeyError:
        raise KeyError(
            f"unknown device preset {kind!r}; available: {sorted(DEVICE_PRESETS)}"
        ) from None
    return factory(name or kind)
