"""``python -m repro.tools`` — forwards to the dbtool CLI.

The canonical invocations are equivalent::

    python -m repro.tools <command> ...
    python -m repro.tools.dbtool <command> ...
    dbtool <command> ...        (console script, after pip install)
"""

from .dbtool import main

if __name__ == "__main__":
    raise SystemExit(main())
