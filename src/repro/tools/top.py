"""``dbtool top`` — a live terminal dashboard for a served database.

Polls the server's telemetry (the v2.1 METRICS opcode for the merged
registry snapshot, STATS for the per-follower replication detail) and
renders one compact refresh per interval: op rates, tail latency,
stall state, compaction backlog, and replication lag.

The renderer is a pure function of two consecutive samples —
:func:`render_top` — so the display logic is unit-testable without a
server or a terminal; :func:`top_loop` owns the polling and screen
clearing.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["render_top", "sample", "top_loop"]

#: Ops shown in the rate line, in display order.
_RATE_OPS = ("GET", "PUT", "DELETE", "BATCH", "SCAN")


def sample(client) -> dict:
    """One telemetry sample: merged metrics + the STATS dict."""
    return {"metrics": client.metrics("json"), "stats": client.stats()}


def _counter(snapshot: dict, name: str) -> float:
    return snapshot.get("counters", {}).get(name, 0)


def _gauge(snapshot: dict, name: str) -> Optional[float]:
    return snapshot.get("gauges", {}).get(name)


def _rate(prev: dict, cur: dict, name: str, dt: float) -> float:
    return max(0.0, _counter(cur, name) - _counter(prev, name)) / dt


def _latency_cell(metrics: dict, op: str) -> str:
    hist = metrics.get("histograms", {}).get(f"server.op.{op}.latency")
    if not hist or not hist.get("count"):
        return f"{op} -"
    return f"{op} p50={hist['p50_ms']:.2f}ms p99={hist['p99_ms']:.2f}ms"


def render_top(prev: dict, cur: dict, dt: float, endpoint: str = "") -> str:
    """Render one dashboard frame from two consecutive samples.

    ``prev``/``cur`` are :func:`sample` dicts taken ``dt`` seconds
    apart.  Counters are shown as rates over the window, gauges and
    histograms as their current values (the latency percentiles are
    cumulative since server start — tails, not a moving window).
    """
    pm, cm = prev["metrics"], cur["metrics"]
    stats = cur.get("stats", {})
    dt = max(dt, 1e-9)

    rates = [
        f"{op} {_rate(pm, cm, f'server.op.{op}.requests', dt):,.0f}/s"
        for op in _RATE_OPS
        if _counter(cm, f"server.op.{op}.requests")
    ]
    total = sum(
        _rate(pm, cm, f"server.op.{op}.requests", dt) for op in _RATE_OPS
    )
    lines = [
        f"repro top — {endpoint}  interval {dt:.1f}s",
        f"  ops/s   {' '.join(rates) or '(idle)'}  total {total:,.0f}/s",
    ]

    lat = [
        _latency_cell(cm, op)
        for op in ("GET", "PUT")
        if _counter(cm, f"server.op.{op}.requests")
    ]
    if lat:
        lines.append(f"  latency {'   '.join(lat)}")

    db = stats.get("db", {})
    stalled = db.get("write_stalled_now", False)
    stall_rej = _rate(pm, cm, "server.stall_rejections", dt)
    l0 = _gauge(cm, "db.l0_files")
    if l0 is None:
        l0 = db.get("l0_files", 0)
    lines.append(
        f"  engine  stalled={'YES' if stalled else 'no'}"
        f"  stall_rejections {stall_rej:,.0f}/s"
        f"  L0 files {l0:.0f}"
        f"  flush {_rate(pm, cm, 'db.flushes', dt):,.1f}/s"
        f"  compactions {_rate(pm, cm, 'compaction.count', dt):,.1f}/s"
    )

    cluster = stats.get("cluster")
    if cluster:
        lines.append(
            f"  cluster {cluster['n_shards']} shards, "
            f"stalled: {cluster.get('stalled_shards', [])}"
        )

    repl = stats.get("repl")
    if repl and repl.get("role") == "primary":
        lines.append(
            f"  repl    epoch {repl.get('epoch')}"
            f"  followers {_gauge(cm, 'repl.followers') or 0:.0f}"
            f"  lag {_gauge(cm, 'repl.lag_records') or 0:.0f} rec"
            f" / {_gauge(cm, 'repl.lag_seconds') or 0:.3f}s"
            f"  ring {_gauge(cm, 'repl.ring_records') or 0:.0f} rec"
        )
        for f in repl.get("followers", []):
            lines.append(
                f"    ↳ {f['id']}: lag {f.get('lag_records', '?')} rec"
                f" / {f.get('lag_seconds', '?')}s"
                f" acked_seq={f.get('acked_seq', '?')}"
            )
    elif repl:  # follower side
        lines.append(
            f"  repl    follower of {repl.get('primary')}"
            f" connected={repl.get('connected')}"
            f" applied_seq={repl.get('applied_seq')}"
        )
    return "\n".join(lines)


def top_loop(
    client,
    endpoint: str,
    interval_s: float = 2.0,
    iterations: Optional[int] = None,
    out=None,
    clear: bool = True,
) -> int:
    """Poll and render until interrupted (or ``iterations`` frames)."""
    import sys

    out = out or sys.stdout
    prev = sample(client)
    prev_t = time.monotonic()
    frames = 0
    try:
        while iterations is None or frames < iterations:
            time.sleep(interval_s)
            cur = sample(client)
            now = time.monotonic()
            frame = render_top(prev, cur, now - prev_t, endpoint)
            if clear:
                out.write("\x1b[2J\x1b[H")
            out.write(frame + "\n")
            out.flush()
            prev, prev_t = cur, now
            frames += 1
    except KeyboardInterrupt:
        pass
    return 0
