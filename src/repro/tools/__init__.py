"""Command-line administration tools.

``dbtool`` is imported lazily so ``python -m repro.tools.dbtool``
does not re-import the module it is about to execute (runpy warns
about that double import).
"""

__all__ = ["dbtool_main"]


def __getattr__(name):
    if name == "dbtool_main":
        from .dbtool import main

        return main
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
