"""Command-line administration tools."""

from .dbtool import main as dbtool_main

__all__ = ["dbtool_main"]
