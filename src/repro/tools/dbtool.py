"""``python -m repro.tools.dbtool`` — database administration CLI.

Commands (all take a database directory):

* ``stats <dir>``    — tree shape, per-level sizes, entry counts,
  plus the engine's I/O and block-cache counters for the session.
* ``verify <dir>``   — full integrity check (exit code 1 on corruption).
* ``repair <dir>``   — rebuild CURRENT/MANIFEST from salvageable tables.
* ``fsck <dir>``     — verify, and with ``--repair`` rebuild on damage
  and re-verify; exit code 1 only if errors remain unrecovered.
* ``dump <dir>``     — print live key/value pairs (optionally a range).
* ``compact <dir>``  — run compactions until the tree is quiescent.
* ``serve <dir>``    — expose the database over TCP (repro.server).
  Plain-DB serves are replication primaries (followers may subscribe;
  ``--repl-acks`` sets the write durability level); ``--replica-of
  HOST:PORT`` serves as a read-only follower instead.
* ``promote <dir>``  — bump a stopped follower's fencing epoch so it
  becomes the primary (manual failover; see docs/REPLICATION.md).
* ``repl-status HOST:PORT...`` — probe replica endpoints, print the
  role map (exit 1 when no primary is reachable).
* ``failover HOST:PORT...`` — watch a replica set and automatically
  promote the most-caught-up follower when the primary misses enough
  probes (``--once`` for a single probe/elect/promote round).
* ``chaos-proxy LISTEN UPSTREAM`` — seed-deterministic fault-injecting
  TCP proxy (``--plan`` takes NetFaultPlan JSON: refused/cut
  connections, latency, asymmetric partitions; see docs/CHAOS.md).
* ``trace <out>``    — run a small in-memory YCSB load with tracing
  enabled and write a Chrome trace-event JSON (Perfetto-loadable)
  showing the S1–S7 compaction pipeline (takes an output path, not a
  database directory).  With ``--distributed``, stand up a live
  1-primary/1-follower cluster instead and write one *merged* trace
  whose client/server/DB/replication spans share trace ids.
* ``scrape HOST:PORT`` — fetch a served database's live metrics
  (Prometheus text or JSON; ``--check`` validates the payload).
* ``top HOST:PORT``  — live terminal dashboard (ops/s, tail latency,
  stall state, compaction backlog, replication lag per follower).
* ``analyze [paths]`` — run the repo's concurrency-invariant static
  rules (``repro.analysis``) over source paths; exit 1 on findings.

``stats``, ``fsck``, ``serve``, and ``trace`` are cluster-aware: pass
``--shards N`` (or let a ``CLUSTER`` manifest in the directory opt in
automatically) to operate on a :mod:`repro.cluster` sharded store —
``fsck`` then checks every ``shard-NN`` subdirectory and exits with
the worst shard's code.

Engine options that affect on-disk interpretation (block checksum kind,
compression) are format-self-describing, so the defaults work for any
database written by this library.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..db.db import DB
from ..db.verify import repair_db, verify_db
from ..devices.vfs import OSStorage
from ..lsm.options import Options

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dbtool",
        description="Administer a repro LSM database directory.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_ in [
        ("stats", "show tree shape and counters"),
        ("verify", "check checksums, ordering, and level invariants"),
        ("repair", "rebuild the manifest from salvageable SSTables"),
        ("dump", "print live key/value pairs"),
        ("compact", "compact until quiescent"),
    ]:
        cmd = sub.add_parser(name, help=help_)
        cmd.add_argument("directory", help="database directory")
        if name in ("stats", "compact"):
            cmd.add_argument(
                "--compaction-policy", default=None, metavar="SPEC",
                help="compaction policy to open under (leveled, "
                     "tiered:runs=N, lazy-leveled:runs=N); default "
                     "adopts the policy persisted in the manifest, and "
                     "a mismatching spec fails loudly",
            )
        if name == "stats":
            cmd.add_argument(
                "--shards", type=int, default=None, metavar="N",
                help="treat the directory as an N-shard cluster "
                     "(auto-detected from a CLUSTER manifest when omitted)",
            )
        if name == "dump":
            cmd.add_argument("--start", type=_bytes_arg, default=None)
            cmd.add_argument("--end", type=_bytes_arg, default=None)
            cmd.add_argument("--limit", type=int, default=None)
            cmd.add_argument(
                "--keys-only", action="store_true", help="omit values"
            )

    fsck = sub.add_parser(
        "fsck",
        help="verify, optionally repair on damage, and re-verify",
    )
    fsck.add_argument("directory", help="database directory")
    fsck.add_argument(
        "--repair", action="store_true",
        help="on damage, rebuild the manifest from salvageable tables "
             "and verify again (exit 0 only if the rebuilt store is clean)",
    )
    fsck.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="fsck every shard-NN subdirectory of an N-shard cluster; "
             "exit code is the worst shard's (auto-detected from a "
             "CLUSTER manifest when omitted)",
    )

    sst = sub.add_parser("sst", help="inspect one SSTable file")
    sst.add_argument("directory", help="database directory")
    sst.add_argument("file", help="table file name, e.g. 000004.sst")

    srv = sub.add_parser("serve", help="expose the database over TCP")
    srv.add_argument("directory", help="database directory")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=7379)
    srv.add_argument(
        "--workers", type=int, default=4, help="DB dispatch thread pool size"
    )
    srv.add_argument(
        "--max-inflight", type=int, default=32,
        help="pipelined requests admitted per connection",
    )
    srv.add_argument(
        "--sync-compaction", action="store_true",
        help="run compactions inline with writes instead of a "
             "background thread (no STALLED backpressure)",
    )
    srv.add_argument(
        "--fault-plan", metavar="JSON", default=None,
        help='inject storage faults, e.g. \'{"seed": 7, '
             '"write_error_rate": 0.01}\' (see repro.devices.FaultPlan)',
    )
    srv.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="serve an N-shard cluster rooted at the directory "
             "(auto-detected from a CLUSTER manifest when omitted)",
    )
    srv.add_argument(
        "--replica-of", metavar="HOST:PORT", default=None,
        help="serve as a read-only follower replicating from this "
             "primary (incompatible with --shards)",
    )
    srv.add_argument(
        "--repl-acks", metavar="N|majority", default="0",
        help="follower acks a write collects before OK when serving "
             "as a primary (default 0; 'majority' = cluster majority)",
    )
    srv.add_argument(
        "--repl-retain-bytes", type=int, default=8 * 1024 * 1024,
        help="retired-WAL bytes retained for follower catch-up when "
             "serving as a primary (default 8 MiB; 0 disables)",
    )
    srv.add_argument(
        "--follower-id", default=None,
        help="stable follower identity for --replica-of "
             "(default: the database directory name)",
    )
    srv.add_argument(
        "--events", metavar="PATH", default=None,
        help="stream JSONL lifecycle events (flush, compaction, stall, "
             "fence, replication) to this file",
    )
    srv.add_argument(
        "--slow-op-ms", type=float, default=None, metavar="MS",
        help="log ops at or above this latency to the event log "
             "(stderr when --events is not given)",
    )
    srv.add_argument(
        "--trace", action="store_true",
        help="enable the span tracer; clients can pull the timeline "
             "with the TRACE opcode (dbtool trace --distributed)",
    )
    srv.add_argument(
        "--compaction-policy", default=None, metavar="SPEC",
        help="compaction policy to open under (leveled, tiered:runs=N, "
             "lazy-leveled:runs=N); default adopts the persisted policy",
    )

    pro = sub.add_parser(
        "promote",
        help="promote a (stopped) follower directory: bump its fencing "
             "epoch so it outranks the old primary",
    )
    pro.add_argument("directory", help="database directory")

    rst = sub.add_parser(
        "repl-status",
        help="probe replica endpoints and print the role map",
    )
    rst.add_argument(
        "endpoints", nargs="+", metavar="HOST:PORT",
        help="servers to probe (primary and followers)",
    )

    fov = sub.add_parser(
        "failover",
        help="watch a replica set and auto-promote the most-caught-up "
             "follower when the primary dies",
    )
    fov.add_argument(
        "endpoints", nargs="+", metavar="HOST:PORT",
        help="the replica set (primary and followers)",
    )
    fov.add_argument(
        "--once", action="store_true",
        help="run one probe/elect/promote round and exit "
             "(exit 0 = healthy or promoted, 1 = primary down and "
             "nothing promotable)",
    )
    fov.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="probe interval (default 0.5)",
    )
    fov.add_argument(
        "--threshold", type=int, default=3, metavar="N",
        help="consecutive missed probes before failover (default 3)",
    )
    fov.add_argument(
        "--probe-timeout", type=float, default=1.0, metavar="SECONDS",
        help="per-endpoint probe timeout (default 1.0)",
    )
    fov.add_argument(
        "--events", metavar="FILE", default=None,
        help="append failover.* lifecycle events (JSONL) to this file",
    )

    cpx = sub.add_parser(
        "chaos-proxy",
        help="fault-injecting TCP proxy: put it between clients (or "
             "followers) and a server to inject partitions, latency, "
             "refused and cut connections",
    )
    cpx.add_argument(
        "listen", metavar="HOST:PORT",
        help="address to listen on (port 0 picks one and prints it)",
    )
    cpx.add_argument(
        "upstream", metavar="HOST:PORT", help="server to forward to"
    )
    cpx.add_argument(
        "--plan", metavar="JSON", default=None,
        help="NetFaultPlan JSON, e.g. "
             '\'{"seed": 7, "cut_rate": 0.05, "latency_ms": 20}\'',
    )
    cpx.add_argument(
        "--events", metavar="FILE", default=None,
        help="append net.fault_injected events (JSONL) to this file",
    )

    trc = sub.add_parser(
        "trace",
        help="run an in-memory YCSB load with span tracing and write "
             "a Chrome trace-event JSON",
    )
    trc.add_argument("output", help="output trace file, e.g. trace.json")
    trc.add_argument("--mix", default="a", help="YCSB mix (a/b/c/d/f)")
    trc.add_argument("--ops", type=int, default=2000, help="ops after load")
    trc.add_argument("--records", type=int, default=2000, help="loaded records")
    trc.add_argument("--value-bytes", type=int, default=256)
    trc.add_argument(
        "--procedure", default="pcp", choices=["scp", "pcp", "sppcp", "cppcp"],
        help="compaction procedure to trace (default pcp)",
    )
    trc.add_argument(
        "--subtask-kb", type=int, default=8,
        help="compaction sub-task granularity in KiB (small values "
             "produce many pipelined sub-tasks per compaction)",
    )
    trc.add_argument(
        "--gantt", action="store_true",
        help="also print an ASCII gantt of the compaction spans",
    )
    trc.add_argument(
        "--fault-plan", metavar="JSON", default=None,
        help="inject storage faults during the traced run "
             "(see repro.devices.FaultPlan)",
    )
    trc.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="trace an N-shard in-memory cluster instead of one DB "
             "(all shards share one timeline)",
    )
    trc.add_argument(
        "--distributed", action="store_true",
        help="instead of an embedded DB, stand up a 1-primary/"
             "1-follower cluster over loopback, drive it with a traced "
             "client, and write one *merged* Chrome trace whose "
             "client/server/DB/replication spans share trace ids",
    )

    scr = sub.add_parser(
        "scrape",
        help="fetch a served database's live metrics (protocol ≥ 2.1)",
    )
    scr.add_argument("endpoint", metavar="HOST:PORT")
    scr.add_argument(
        "--format", choices=["prom", "json"], default="prom",
        help="exposition format (default Prometheus text)",
    )
    scr.add_argument(
        "--check", action="store_true",
        help="validate the payload (strict Prometheus parse / JSON "
             "shape) and report what was scraped on stderr",
    )

    top = sub.add_parser(
        "top",
        help="live terminal dashboard for a served database",
    )
    top.add_argument("endpoint", metavar="HOST:PORT")
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="seconds between refreshes (default 2)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (no screen clearing)",
    )

    ana = sub.add_parser(
        "analyze",
        help="run the RA concurrency + durability static rules "
             "(mirrors `python -m repro.analysis`)",
    )
    ana.add_argument(
        "paths", nargs="*", default=["."],
        help="files or directories to analyze (default: .)",
    )
    ana.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format (default text)",
    )
    ana.add_argument(
        "--select", metavar="CODES", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    ana.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="suppress findings whose fingerprints are in FILE",
    )
    ana.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="adopt the current findings into FILE and exit 0",
    )
    ana.add_argument(
        "--lock-graph", choices=["dot", "json"], default=None,
        help="dump the static lock acquisition-order graph instead",
    )
    ana.add_argument(
        "--no-lock-graph", action="store_true",
        help="skip the interprocedural RA110/RA111 pass",
    )
    return parser


def _bytes_arg(text: str) -> bytes:
    return text.encode()


def _open_db(directory: str, policy: str | None = None) -> DB:
    return DB(OSStorage(directory), Options(compaction_policy=policy))


def _maybe_faulty(storage, plan_json: str | None):
    """Wrap ``storage`` in a FaultyStorage when a plan was given."""
    if plan_json is None:
        return storage
    from ..devices.faults import FaultPlan, FaultyStorage

    return FaultyStorage(storage, FaultPlan.from_json(plan_json))


def _cluster_n_shards(directory: str, shards_arg: int | None) -> int | None:
    """Resolve cluster mode: explicit ``--shards`` wins, otherwise a
    CLUSTER manifest in the directory opts in; None means plain DB."""
    if shards_arg is not None:
        return shards_arg
    from ..cluster import ClusterManifest

    storage = OSStorage(directory)
    if ClusterManifest.exists(storage):
        return ClusterManifest.load(storage).n_shards
    return None


def cmd_stats(args) -> int:
    n_shards = _cluster_n_shards(args.directory, args.shards)
    if n_shards is not None:
        return _cmd_stats_cluster(args.directory, n_shards)
    db = _open_db(args.directory, policy=args.compaction_policy)
    try:
        print("policy:", db.get_property("compaction-policy"))
        print(db.get_property("sstables"))
        total = db.total_bytes()
        print(f"total table bytes: {total} ({total / 1e6:.2f} MB)")
        levels = [
            f"L{lv}={db.num_files(lv)}"
            for lv in range(db.options.num_levels)
            if db.num_files(lv)
        ]
        print("files per level:", " ".join(levels) or "(none)")
        with db._lock:
            runs = [
                f"L{lv}={db.version.num_runs(lv)}"
                for lv in range(db.options.num_levels)
                if db.version.files[lv]
            ]
        print("runs per level:", " ".join(runs) or "(none)")
        print("live entries:", db.cursor().count())
        print("io-stats (this session):")
        for line in (db.get_property("io-stats") or "").splitlines():
            print(f"  {line}")
        print("cache-stats:", db.get_property("cache-stats"))
    finally:
        db.close()
    return 0


def _cmd_stats_cluster(directory: str, n_shards: int) -> int:
    from ..cluster import ShardedDB

    db = ShardedDB.open_path(directory, n_shards=n_shards)
    try:
        print(db.get_property("cluster"))
        print("policy:", db.get_property("compaction-policy"))
        total = db.total_bytes()
        print(f"total table bytes: {total} ({total / 1e6:.2f} MB)")
        levels = [
            f"L{lv}={db.num_files(lv)}"
            for lv in range(db.options.num_levels)
            if db.num_files(lv)
        ]
        print("files per level (all shards):", " ".join(levels) or "(none)")
        print("live entries:", db.cursor().count())
    finally:
        db.close()
    return 0


def cmd_verify(args) -> int:
    report = verify_db(OSStorage(args.directory), Options())
    print(report.render())
    return 0 if report.ok else 1


def cmd_repair(args) -> int:
    result = repair_db(OSStorage(args.directory), Options())
    print(f"salvaged {len(result['salvaged'])} tables")
    for name in result["salvaged"]:
        print(f"  + {name}")
    if result["dropped"]:
        print(f"dropped {len(result['dropped'])} corrupt tables")
        for name in result["dropped"]:
            print(f"  - {name}")
    return 0


def cmd_fsck(args) -> int:
    n_shards = _cluster_n_shards(args.directory, args.shards)
    if n_shards is None:
        return _fsck_dir(args.directory, args.repair)
    import os

    from ..cluster import shard_dir_name

    worst = 0
    for i in range(n_shards):
        shard_dir = os.path.join(args.directory, shard_dir_name(i))
        print(f"=== shard {i}: {shard_dir} ===")
        worst = max(worst, _fsck_dir(shard_dir, args.repair))
    print(f"fsck: {n_shards} shards checked, "
          f"{'all clean' if worst == 0 else 'errors remain'}")
    return worst


def _fsck_dir(directory: str, repair: bool) -> int:
    storage = OSStorage(directory)
    report = verify_db(storage, Options())
    print(report.render())
    if report.ok:
        return 0
    if not repair:
        print("fsck: errors found (rerun with --repair to rebuild)")
        return 1
    print("fsck: attempting repair...")
    result = repair_db(storage, Options())
    print(f"fsck: salvaged {len(result['salvaged'])} tables, "
          f"dropped {len(result['dropped'])}")
    report = verify_db(storage, Options())
    print(report.render())
    if not report.ok:
        print("fsck: errors remain after repair")
        return 1
    return 0


def cmd_dump(args) -> int:
    db = _open_db(args.directory)
    try:
        count = 0
        for key, value in db.scan(args.start, args.end):
            if args.limit is not None and count >= args.limit:
                break
            if args.keys_only:
                print(key.decode(errors="backslashreplace"))
            else:
                print(
                    key.decode(errors="backslashreplace"),
                    "=",
                    value.decode(errors="backslashreplace"),
                )
            count += 1
        print(f"({count} entries)", file=sys.stderr)
    finally:
        db.close()
    return 0


def cmd_compact(args) -> int:
    db = _open_db(args.directory, policy=args.compaction_policy)
    try:
        n = db.compact_range()
        print(f"ran {n} compactions")
        print(f"policy: {db.get_property('compaction-policy')}")
        print(db.get_property("sstables"))
    finally:
        db.close()
    return 0


def cmd_sst(args) -> int:
    from ..lsm.ikey import decode_internal_key
    from ..lsm.table_reader import Table

    storage = OSStorage(args.directory)
    table = Table(storage.open(args.file), Options())
    handles = table.block_handles()
    stored = sum(h.size + 5 for h in handles)
    entries = list(table)
    raw = sum(len(k) + len(v) for k, v in entries)
    first_user = decode_internal_key(entries[0][0])[0] if entries else b""
    last_user = decode_internal_key(entries[-1][0])[0] if entries else b""
    print(f"file:          {args.file}")
    print(f"size:          {storage.file_size(args.file)} bytes")
    print(f"data blocks:   {len(handles)}")
    print(f"entries:       {len(entries)} (footer: {table.num_entries})")
    print(f"key range:     {first_user!r} .. {last_user!r}")
    if raw:
        print(f"block payload: {stored} bytes "
              f"({stored / raw:.2f}x of {raw} raw key+value bytes)")
    seqs = [decode_internal_key(k)[1] for k, _ in entries]
    if seqs:
        print(f"sequences:     {min(seqs)} .. {max(seqs)}")
    table.close()
    return 0


def _parse_endpoint(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {text!r}"
        )
    return host, int(port)


def _serve_obs(args):
    """Build the serve command's Observability from its telemetry flags."""
    from ..obs import EventLog, Observability, Tracer

    threshold = (
        args.slow_op_ms / 1e3 if args.slow_op_ms is not None else None
    )
    sink = args.events
    if sink is None and threshold is not None:
        sink = sys.stderr  # slow-op log with no file: spill to stderr
    return Observability(
        tracer=Tracer(enabled=args.trace),
        events=EventLog(sink, slow_op_threshold_s=threshold),
    )


def cmd_serve(args) -> int:
    from ..server import ServerConfig, serve_forever

    obs = _serve_obs(args)
    n_shards = _cluster_n_shards(args.directory, args.shards)
    repl_acks = (
        -1 if args.repl_acks == "majority" else int(args.repl_acks)
    )
    hub = None
    follower = None
    if args.replica_of is not None:
        if n_shards is not None:
            print("serve: --replica-of is not supported with --shards",
                  file=sys.stderr)
            return 2
        import os

        from ..replication import Follower

        primary_host, primary_port = _parse_endpoint(args.replica_of)
        background = not args.sync_compaction

        def _factory(directory=args.directory, background=background):
            # One shared Observability across snapshot-install reopens:
            # counters/events survive the DB swap.
            return DB(
                OSStorage(directory),
                Options(compaction_policy=args.compaction_policy),
                background=background, obs=obs,
            )

        db = _factory()
        follower_id = args.follower_id or os.path.basename(
            os.path.abspath(args.directory)
        )
        follower = Follower(
            db, db.storage, _factory,
            primary_host, primary_port, follower_id,
        ).start()
    elif n_shards is not None:
        if args.fault_plan is not None:
            print("serve: --fault-plan is not supported with --shards",
                  file=sys.stderr)
            return 2
        from ..cluster import ShardedDB

        db = ShardedDB.open_path(
            args.directory,
            n_shards=n_shards,
            options=Options(compaction_policy=args.compaction_policy),
            background=not args.sync_compaction,
            obs=obs,
        )
    else:
        from ..replication import ReplicationHub

        db = DB(
            _maybe_faulty(OSStorage(args.directory), args.fault_plan),
            Options(
                wal_retain_bytes=args.repl_retain_bytes,
                compaction_policy=args.compaction_policy,
            ),
            background=not args.sync_compaction,
            obs=obs,
        )
        # Every plain-DB serve is primary-capable: followers may
        # subscribe whether or not any exist yet.
        hub = ReplicationHub(db)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        worker_threads=args.workers,
        max_inflight_per_conn=args.max_inflight,
        read_only=follower is not None,
        repl_acks=repl_acks,
    )
    try:
        serve_forever(db, config, hub=hub, follower=follower)
    finally:
        if follower is not None:
            follower.stop()
            follower.db.close()
        db.close()
        if obs.events.enabled and args.events is not None:
            obs.events.close()
    return 0


def cmd_scrape(args) -> int:
    import json

    from ..server.client import SyncClient

    host, port = _parse_endpoint(args.endpoint)
    client = SyncClient(host, port)
    try:
        major, minor = client.hello()
        if (major, minor) < (2, 1):
            print(f"scrape: server speaks protocol {major}.{minor}; "
                  "METRICS needs >= 2.1", file=sys.stderr)
            return 1
        if args.format == "prom":
            text = client.metrics("prom")
            if args.check:
                from ..obs import parse_prometheus

                series = parse_prometheus(text)
                n = sum(len(samples) for samples in series.values())
                print(f"scrape: {n} samples in {len(series)} series, "
                      "exposition is well-formed", file=sys.stderr)
            print(text, end="")
        else:
            snap = client.metrics("json")
            if args.check:
                for kind in ("counters", "gauges", "histograms"):
                    if not isinstance(snap.get(kind), dict):
                        print(f"scrape: malformed snapshot: no {kind!r}",
                              file=sys.stderr)
                        return 1
                print(f"scrape: {sum(len(snap[k]) for k in snap)} metrics",
                      file=sys.stderr)
            print(json.dumps(snap, indent=2, sort_keys=True))
    finally:
        client.close()
    return 0


def cmd_top(args) -> int:
    from ..server.client import SyncClient
    from .top import render_top, sample, top_loop

    host, port = _parse_endpoint(args.endpoint)
    client = SyncClient(host, port)
    try:
        major, minor = client.hello()
        if (major, minor) < (2, 1):
            print(f"top: server speaks protocol {major}.{minor}; "
                  "METRICS needs >= 2.1", file=sys.stderr)
            return 1
        if args.once:
            import time

            before = sample(client)
            time.sleep(min(args.interval, 0.5))
            after = sample(client)
            print(render_top(before, after, min(args.interval, 0.5),
                             args.endpoint))
            return 0
        return top_loop(client, args.endpoint, interval_s=args.interval)
    finally:
        client.close()


def cmd_promote(args) -> int:
    """Fence off the old primary: bump this replica's epoch.

    Run against a *stopped* follower directory (the failover runbook
    in docs/REPLICATION.md).  After promotion the old primary's hub
    refuses this node's subscriptions (ST_FENCED) and clients elect
    this node, whose epoch is now highest.
    """
    db = _open_db(args.directory)
    try:
        old = db.repl_epoch
        db.set_repl_epoch(old + 1)
        print(f"promoted: fencing epoch {old} -> {old + 1} "
              f"(last sequence {db.last_sequence})")
    finally:
        db.close()
    return 0


def cmd_repl_status(args) -> int:
    import json

    from ..replication import ReplicatedShard

    shard = ReplicatedShard(
        [_parse_endpoint(e) for e in args.endpoints], timeout=5.0
    )
    try:
        status = shard.status()
    finally:
        shard.close()
    print(json.dumps(status, indent=2, sort_keys=True))
    if status["primary"] is None:
        print("repl-status: no reachable primary", file=sys.stderr)
        return 1
    return 0


def cmd_failover(args) -> int:
    import json

    from ..obs import EventLog, Observability
    from ..replication import FailoverCoordinator

    obs = Observability()
    if args.events is not None:
        obs = Observability(events=EventLog(args.events))
    coordinator = FailoverCoordinator(
        [_parse_endpoint(e) for e in args.endpoints],
        heartbeat_interval_s=args.interval,
        failure_threshold=args.threshold,
        probe_timeout_s=args.probe_timeout,
        obs=obs,
    )
    if args.once:
        promoted = None
        for _ in range(args.threshold):
            promoted = coordinator.check_once()
            if promoted is not None:
                break
        status = coordinator.status()
        status["statuses"] = coordinator.poll()
        print(json.dumps(status, indent=2, sort_keys=True, default=str))
        healthy = promoted is not None or status["last_primary"] is not None
        return 0 if healthy else 1
    coordinator.start()
    print(
        f"failover: watching {len(args.endpoints)} endpoints "
        f"(interval {args.interval}s, threshold {args.threshold})",
        flush=True,
    )
    try:
        while True:
            time.sleep(60)
    except KeyboardInterrupt:
        pass
    finally:
        coordinator.stop()
        if obs.events.enabled:
            obs.events.close()
    print(json.dumps(coordinator.status(), indent=2, sort_keys=True))
    return 0


def cmd_chaos_proxy(args) -> int:
    import json

    from ..devices import FaultyProxy, NetFaultPlan
    from ..obs import EventLog, MetricsRegistry

    host, port = _parse_endpoint(args.listen)
    upstream_host, upstream_port = _parse_endpoint(args.upstream)
    plan = (
        NetFaultPlan.from_json(args.plan)
        if args.plan is not None
        else NetFaultPlan()
    )
    metrics = MetricsRegistry()
    events = EventLog(args.events) if args.events is not None else None
    proxy = FaultyProxy(
        upstream_host, upstream_port, plan=plan, host=host, port=port
    ).start()
    proxy.attach_obs(metrics=metrics, events=events)
    print(
        f"chaos-proxy: {proxy.host}:{proxy.port} -> "
        f"{upstream_host}:{upstream_port} plan={plan.to_json()}",
        flush=True,
    )
    try:
        while True:
            time.sleep(60)
    except KeyboardInterrupt:
        pass
    finally:
        proxy.close()
        if events is not None:
            events.close()
    print(json.dumps({"injected": proxy.injected}, sort_keys=True))
    return 0


def _cmd_trace_distributed(args) -> int:
    """One merged multi-process trace of a live replicated cluster.

    Stands up a primary ``ServerThread`` (own tracer) with one tailing
    :class:`Follower` (own tracer), drives a YCSB load through a traced
    :class:`SyncClient` at ack=1, then merges the three timelines into
    a single Chrome trace: the client's ``client:<OP>`` spans carry
    trace ids that the server's dispatch/db/repl spans share, and the
    follower's ``repl-apply`` spans land in their own process lane.
    """
    import time

    from ..devices.vfs import MemStorage
    from ..obs import Observability, Tracer, write_merged_chrome_trace
    from ..replication import Follower, ReplicationHub
    from ..server.client import SyncClient
    from ..server.server import ServerConfig, ServerThread
    from ..workload.ycsb import YCSBWorkload

    primary = DB(
        MemStorage(),
        Options(wal_retain_bytes=8 * 1024 * 1024),
        obs=Observability(tracer=Tracer(enabled=True)),
    )
    hub = ReplicationHub(primary)
    follower_obs = Observability(tracer=Tracer(enabled=True))
    client_tracer = Tracer(enabled=True)
    config = ServerConfig(repl_acks=1, repl_ack_timeout_s=10.0)
    with ServerThread(primary, config, own_db=False, hub=hub) as handle:
        follower_db = DB(MemStorage(), Options(), obs=follower_obs)
        storage = follower_db.storage

        def factory():
            return DB(storage, Options(), obs=follower_obs)

        follower = Follower(
            follower_db, storage, factory,
            handle.host, handle.port, "follower-a",
            retry_interval_s=0.05,
        ).start()
        try:
            deadline = time.monotonic() + 10.0
            while hub.n_followers < 1:
                if time.monotonic() > deadline:
                    print("trace: follower never subscribed",
                          file=sys.stderr)
                    return 1
                time.sleep(0.01)
            client = SyncClient(
                handle.host, handle.port, tracer=client_tracer
            )
            client.hello()
            workload = YCSBWorkload(
                args.mix, args.ops, args.records,
                value_bytes=args.value_bytes,
            )
            for key, value in workload.load_phase():
                client.put(key, value)
            counts = workload.apply_to(client)
            target = primary.last_sequence
            deadline = time.monotonic() + 10.0
            while (
                follower.db.last_sequence < target
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            # Pull the primary's timeline over the wire (TRACE opcode)
            # rather than reaching into the in-process object: the same
            # path works against a genuinely remote server.
            server_trace = client.trace_dump()
            client.close()
        finally:
            follower.stop()
            follower.db.close()
    n = write_merged_chrome_trace(
        args.output,
        [
            ("client", client_tracer.chrome_trace()),
            ("primary", server_trace),
            ("follower", follower_obs.tracer.chrome_trace()),
        ],
    )
    traced = sum(
        1 for s in client_tracer.spans() if s.args.get("trace_id")
    )
    print(f"wrote {args.output}: {n} spans across 3 process lanes "
          f"({traced} traced client requests, ops: {counts})")
    print("load it at https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_trace(args) -> int:
    if args.distributed:
        if args.shards is not None or args.fault_plan is not None:
            print("trace: --distributed is incompatible with --shards "
                  "and --fault-plan", file=sys.stderr)
            return 2
        return _cmd_trace_distributed(args)
    from ..core.procedures import ProcedureSpec
    from ..devices.vfs import MemStorage
    from ..obs import Observability, Tracer, pipeline_overlap
    from ..workload.ycsb import YCSBWorkload

    spec_kw = {"subtask_bytes": args.subtask_kb * 1024}
    if args.procedure in ("sppcp", "cppcp"):
        spec_kw["k"] = 2
    spec = getattr(ProcedureSpec, args.procedure)(**spec_kw)
    # Tiny thresholds so a small load produces several multi-sub-task
    # compactions (and therefore a visibly pipelined trace).
    options = Options(
        memtable_bytes=32 * 1024,
        sstable_bytes=16 * 1024,
        block_bytes=1024,
        level1_bytes=64 * 1024,
        level_multiplier=4,
        block_cache_entries=64,
    )
    obs = Observability(tracer=Tracer(enabled=True))
    workload = YCSBWorkload(
        args.mix, args.ops, args.records, value_bytes=args.value_bytes
    )
    if args.shards is not None:
        if args.fault_plan is not None:
            print("trace: --fault-plan is not supported with --shards",
                  file=sys.stderr)
            return 2
        from ..cluster import ShardedDB

        # All shards share the cluster tracer: one timeline shows the
        # shared compute pool interleaving every shard's compactions.
        db = ShardedDB.in_memory(
            args.shards, options=options, compaction_spec=spec, obs=obs
        )
    else:
        db = DB(
            _maybe_faulty(MemStorage(), args.fault_plan),
            options, compaction_spec=spec, obs=obs,
        )
    try:
        for key, value in workload.load_phase():
            db.put(key, value)
        workload.apply_to(db)
        db.compact_range()
    finally:
        db.close()

    n_events = obs.tracer.write_chrome_trace(args.output)
    compactions = obs.tracer.spans(cat="compaction")
    print(f"wrote {args.output}: {n_events} spans "
          f"({len(compactions)} compactions, {obs.tracer.dropped} dropped)")
    pair = pipeline_overlap(obs.tracer.spans())
    if pair is not None:
        r, c = pair
        print(
            f"pipeline overlap: {r.name} (subtask {r.args.get('subtask')}) "
            f"overlaps {c.name} (subtask {c.args.get('subtask')}) "
            f"for {min(r.end, c.end) - max(r.start, c.start):.6f}s"
        )
    else:
        print("pipeline overlap: none observed "
              "(expected for scp; rerun with --procedure pcp)")
    if args.gantt:
        print(obs.tracer.render_gantt())
    print("load it at https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_analyze(args) -> int:
    from ..analysis.cli import main as analysis_main

    argv = list(args.paths)
    argv += ["--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.write_baseline:
        argv += ["--write-baseline", args.write_baseline]
    if args.lock_graph:
        argv += ["--lock-graph", args.lock_graph]
    if args.no_lock_graph:
        argv += ["--no-lock-graph"]
    return analysis_main(argv)


_COMMANDS = {
    "stats": cmd_stats,
    "verify": cmd_verify,
    "repair": cmd_repair,
    "fsck": cmd_fsck,
    "dump": cmd_dump,
    "compact": cmd_compact,
    "sst": cmd_sst,
    "serve": cmd_serve,
    "promote": cmd_promote,
    "repl-status": cmd_repl_status,
    "failover": cmd_failover,
    "chaos-proxy": cmd_chaos_proxy,
    "trace": cmd_trace,
    "scrape": cmd_scrape,
    "top": cmd_top,
    "analyze": cmd_analyze,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
