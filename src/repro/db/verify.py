"""Offline integrity checking and repair.

``verify_db`` walks a database directory and checks everything the
engine relies on: CURRENT/MANIFEST consistency, per-table footer and
block checksums, intra-table key ordering, level-invariant
(non-overlap) violations, and orphaned files.  ``repair_db`` rebuilds a
usable database from whatever valid SSTables survive — the LevelDB
``RepairDB`` strategy: scan ``*.sst``, salvage every table whose blocks
verify, and register them all at level 0 in a fresh MANIFEST (L0 may
overlap, so that placement is always legal; the next compactions
re-sort the tree).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..devices.vfs import Storage
from ..lsm.ikey import internal_compare
from ..lsm.options import Options
from ..lsm.table_reader import Table
from ..lsm.version import FileMetaData, Version
from .manifest import (
    ManifestWriter,
    VersionEdit,
    read_current,
    recover_version,
    set_current,
)

__all__ = ["VerifyReport", "verify_db", "repair_db"]


@dataclass
class VerifyReport:
    """Outcome of :func:`verify_db`."""

    ok: bool = True
    tables_checked: int = 0
    entries_checked: int = 0
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    def error(self, message: str) -> None:
        self.ok = False
        self.errors.append(message)

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def render(self) -> str:
        lines = [
            f"verify: {'OK' if self.ok else 'CORRUPT'} "
            f"({self.tables_checked} tables, {self.entries_checked} entries)"
        ]
        lines += [f"  ERROR: {e}" for e in self.errors]
        lines += [f"  warn:  {w}" for w in self.warnings]
        return "\n".join(lines)


def verify_db(storage: Storage, options: Optional[Options] = None) -> VerifyReport:
    """Check a (closed) database directory end to end."""
    options = options or Options()
    report = VerifyReport()

    manifest_name = read_current(storage)
    if manifest_name is None:
        report.error("no CURRENT file (not a database directory?)")
        return report
    if not storage.exists(manifest_name):
        report.error(f"CURRENT points at missing manifest {manifest_name!r}")
        return report

    try:
        version, _next, _seq, _log, _ = recover_version(storage, options)
    except Exception as exc:
        report.error(f"manifest replay failed: {exc}")
        return report

    # Level invariants.
    try:
        version.check_invariants()
    except AssertionError as exc:
        report.error(f"level invariant violated: {exc}")

    registered = set()
    for level, meta in version.all_files():
        registered.add(meta.name)
        if not storage.exists(meta.name):
            report.error(f"L{level} file {meta.name} missing from storage")
            continue
        try:
            table = Table(storage.open(meta.name), options)
        except Exception as exc:
            report.error(f"{meta.name}: unreadable table: {exc}")
            continue
        report.tables_checked += 1
        prev = None
        count = 0
        try:
            for ikey, _value in table:
                if prev is not None and internal_compare(prev, ikey) >= 0:
                    report.error(f"{meta.name}: keys out of order")
                    break
                prev = ikey
                count += 1
        except Exception as exc:
            report.error(f"{meta.name}: block corruption: {exc}")
            continue
        report.entries_checked += count
        if count != table.num_entries:
            report.error(
                f"{meta.name}: footer says {table.num_entries} entries, "
                f"read {count}"
            )
        first = next(iter(table), None)
        if first is not None and first[0] != meta.smallest:
            report.error(f"{meta.name}: smallest key mismatch vs manifest")

    # Orphans (not fatal: crash between write and manifest commit).
    for name in storage.list():
        if name.endswith(".sst") and name not in registered:
            report.warn(f"orphaned table file {name}")
        elif name.endswith(".quarantined"):
            report.warn(f"quarantined table file {name}")
        elif name.endswith(".tmp"):
            report.warn(f"orphaned temp file {name}")
    return report


def _table_verifies(storage: Storage, name: str, options: Options) -> bool:
    """True when every block of ``name`` reads back clean."""
    try:
        table = Table(storage.open(name), options)
        for _entry in table:
            pass
    except Exception:
        return False
    return True


def repair_db(storage: Storage, options: Optional[Options] = None) -> dict:
    """Rebuild CURRENT/MANIFEST from salvageable SSTables.

    Returns ``{"salvaged": [...], "dropped": [...]}``.  Existing
    manifest state is ignored entirely; every readable, fully-verifying
    ``*.sst`` is re-registered at level 0.  Quarantined tables
    (``*.sst.quarantined``, renamed aside by the self-healing
    compaction path) get a second chance: one that now verifies
    cleanly is renamed back and salvaged; one that does not stays
    aside and is listed in ``dropped``.
    """
    options = options or Options()
    salvaged: list[str] = []
    dropped: list[str] = []
    version = Version(options)
    max_number = 0
    max_seq = 0

    # Carry the store's compaction-policy spec into the rebuilt
    # manifest (best effort: the old manifest may be the casualty) so
    # a repaired tiered store does not come back claiming to be
    # leveled and then refuse a policy-pinned reopen.
    policy_spec: Optional[str] = None
    try:
        old_version, _n, _s, _l, _m = recover_version(storage, options)
        policy_spec = old_version.policy_spec
    except Exception:
        pass

    # Quarantine replay: re-admit any renamed-aside table that proves
    # readable end to end (the damage may have been in lost cache
    # state or a since-replaced medium).
    for name in list(storage.list()):
        if not name.endswith(".sst.quarantined"):
            continue
        original = name[: -len(".quarantined")]
        if not storage.exists(original) and _table_verifies(
            storage, name, options
        ):
            storage.rename(name, original)
        else:
            dropped.append(name)

    for name in storage.list():
        if not name.endswith(".sst"):
            continue
        try:
            table = Table(storage.open(name), options)
            entries = list(table)  # verifies every block checksum
            if not entries:
                dropped.append(name)
                continue
            smallest = entries[0][0]
            largest = entries[-1][0]
            from ..lsm.ikey import decode_internal_key

            max_seq = max(
                max_seq,
                max(decode_internal_key(k)[1] for k, _ in entries),
            )
        except Exception:
            dropped.append(name)
            continue
        try:
            number = int(name.split(".")[0])
        except ValueError:
            number = abs(hash(name)) % (1 << 31)
        max_number = max(max_number, number)
        version.add_file(
            0,
            FileMetaData(
                number=number,
                file_size=storage.file_size(name),
                smallest=smallest,
                largest=largest,
                file_name=name,
            ),
        )
        salvaged.append(name)

    manifest_name = f"MANIFEST-{max_number + 1:06d}"
    writer = ManifestWriter(storage, manifest_name)
    edit = VersionEdit(
        log_number=None,
        next_file_number=max_number + 2,
        last_sequence=max_seq,
        policy_spec=policy_spec,
    )
    for level, meta in version.all_files():
        edit.add_file(level, meta)
    writer.append(edit, sync=True)
    writer.close()
    set_current(storage, manifest_name)
    return {"salvaged": sorted(salvaged), "dropped": sorted(dropped)}
