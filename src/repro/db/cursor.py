"""Streaming DB cursor.

``DB.scan`` needs merged, visibility-filtered iteration over the
memtable, every L0 table, and the deeper levels.  A :class:`Cursor`
captures the tree shape once (the file set of the current version) and
then streams lazily — no materialisation of the memtable, supports
``seek`` — while remaining valid even if a background compaction
deletes the underlying files mid-scan (open tables keep their handles;
the skiplist tolerates concurrent readers).

Visibility: the cursor pins a sequence number at creation (or uses the
caller's snapshot) so a long scan sees a consistent point-in-time view
regardless of concurrent writes.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..lsm.ikey import (
    KIND_DELETE,
    KIND_VALUE,
    decode_internal_key,
    encode_internal_key,
)
from ..lsm.iterators import merge_iterators
from ..lsm.memtable import MemTable
from ..lsm.table_reader import Table

__all__ = ["Cursor"]


class Cursor:
    """Ordered, snapshot-consistent iteration over live user keys."""

    def __init__(
        self,
        memtables: list[MemTable],
        l0_tables: list[Table],  # newest first
        leveled_tables: list[list[Table]],  # per level >= 1, key order
        sequence: int,
    ) -> None:
        self._memtables = memtables
        self._l0 = l0_tables
        self._levels = leveled_tables
        self.sequence = sequence

    # ---------------------------------------------------------- sources
    def _sources_from(self, start: Optional[bytes]) -> list[Iterator]:
        if start is None:
            sources: list[Iterator] = [iter(mt) for mt in self._memtables]
            sources += [iter(t) for t in self._l0]
            for tables in self._levels:
                sources.append(self._level_stream(tables, None))
            return sources
        # Seek each source to the first entry of `start` at any
        # sequence: the newest version sorts first in internal order.
        probe = encode_internal_key(start, (1 << 56) - 1, KIND_VALUE)
        sources = [mt.iter_from(probe) for mt in self._memtables]
        sources += [t.iter_from(probe) for t in self._l0]
        for tables in self._levels:
            sources.append(self._level_stream(tables, probe))
        return sources

    @staticmethod
    def _level_stream(tables: list[Table], probe: Optional[bytes]) -> Iterator:
        # Files within a level hold disjoint, ordered ranges: seek with
        # the probe until some file yields (files entirely before the
        # probe yield nothing), then stream the rest fully.
        emitted = probe is None
        for table in tables:
            if emitted:
                yield from table
            else:
                for kv in table.iter_from(probe):
                    emitted = True
                    yield kv

    # -------------------------------------------------------- iteration
    def items(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """Live ``(user_key, value)`` pairs in ``[start, end)``."""
        merged = merge_iterators(self._sources_from(start))
        prev_user: Optional[bytes] = None
        for ikey, value in merged:
            user, seq, kind = decode_internal_key(ikey)
            if seq > self.sequence:
                continue  # newer than this cursor's view
            if user == prev_user:
                continue  # shadowed version
            prev_user = user
            if end is not None and user >= end:
                return
            if start is not None and user < start:
                continue
            if kind == KIND_DELETE:
                continue
            yield user, value

    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        return self.items()

    def seek(self, start: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Iterate live pairs with user key >= ``start``."""
        return self.items(start=start)

    # ------------------------------------------------------- descending
    def _reverse_sources_from(self, below: Optional[bytes]) -> list[Iterator]:
        if below is None:
            sources: list[Iterator] = [mt.iter_reverse() for mt in self._memtables]
            sources += [t.iter_reverse() for t in self._l0]
            for tables in self._levels:
                sources.append(self._level_stream_reverse(tables, None))
            return sources
        # Probe at (below, seq=0): the last internal key of user
        # `below`, so every version of every user <= below streams; the
        # caller filters out `below` itself (the window is half-open).
        probe = encode_internal_key(below, 0, 0)
        sources = [mt.iter_reverse_from(probe) for mt in self._memtables]
        sources += [t.iter_reverse_from(probe) for t in self._l0]
        for tables in self._levels:
            sources.append(self._level_stream_reverse(tables, probe))
        return sources

    @staticmethod
    def _level_stream_reverse(tables: list[Table], probe: Optional[bytes]):
        emitted = probe is None
        for table in reversed(tables):
            if emitted:
                yield from table.iter_reverse()
            else:
                for kv in table.iter_reverse_from(probe):
                    emitted = True
                    yield kv

    def items_reverse(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """Live pairs of the window [start, end) in *descending* order.

        Same window semantics as :meth:`items`, reversed traversal.
        """
        from ..lsm.iterators import merge_iterators_reverse

        # Reverse streams yield (user desc, seq asc): for each user key
        # the newest qualifying version is the *last* one seen before
        # the user changes.
        merged = merge_iterators_reverse(self._reverse_sources_from(end))
        cur_user: Optional[bytes] = None
        best: Optional[tuple[bytes, bytes, int]] = None

        def emit(entry):
            user, value, kind = entry
            if kind == KIND_DELETE:
                return None
            return (user, value)

        for ikey, value in merged:
            user, seq, kind = decode_internal_key(ikey)
            if end is not None and user >= end:
                continue
            if start is not None and user < start:
                break
            if seq > self.sequence:
                continue
            if user != cur_user:
                if best is not None:
                    out = emit(best)
                    if out is not None:
                        yield out
                cur_user = user
                best = None
            best = (user, value, kind)
        if best is not None:
            out = emit(best)
            if out is not None:
                yield out

    def count(self, start: Optional[bytes] = None, end: Optional[bytes] = None) -> int:
        """Number of live keys in the range (consumes a pass)."""
        return sum(1 for _ in self.items(start, end))
