"""The key-value store facade: LevelDB-shaped, pipelined-compaction-capable.

``DB`` composes the substrates — memtable + WAL (C0), leveled SSTables
(C1..Ck), version/manifest metadata — with the compaction procedures of
:mod:`repro.core`.  The compaction procedure is pluggable per §III of
the paper: pass ``compaction_spec=ProcedureSpec.pcp()`` (or ``sppcp``/
``cppcp``) to run background compactions through the pipelined
executor; the default is classic sequential LevelDB behaviour (SCP).

Concurrency model: a single writer lock serialises writes and metadata
changes.  Compaction runs either synchronously inside the writing
thread (``background=False``, deterministic — used by experiments) or
on a background thread (``background=True``) with the paper's
write-pause behaviour: the foreground stalls only when L0 backs up.

Durability: every write batch is appended to the WAL before touching
the memtable; ``sync_every`` batches force an fsync.  Recovery replays
MANIFEST then the live WAL.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from ..analysis.locksan import make_lock, make_rlock
from ..analysis.racesan import shared_state
from ..compaction.policy import (
    CompactionTask,
    PolicyMismatchError,
    canonical_spec,
    make_policy,
)
from ..core.procedures import ProcedureSpec, compact_tables
from ..devices.faults import TransientIOError, find_faulty
from ..devices.vfs import MeteredStorage, Storage, StorageError
from ..lsm.cache import LRUCache
from ..lsm.ikey import (
    KIND_DELETE,
    MAX_SEQUENCE,
    decode_internal_key,
    lookup_key,
)
from ..lsm.memtable import MemTable
from ..lsm.options import Options
from ..lsm.table_builder import TableBuilder
from ..lsm.table_format import TableCorruption
from ..lsm.table_reader import Table
from ..lsm.version import FileMetaData, sstable_name
from ..lsm.wal import LogReader, LogWriter, WalRetention, WriteBatch
from ..obs import Observability
from .manifest import ManifestWriter, VersionEdit, recover_version, set_current

__all__ = ["DB", "DBStats", "Snapshot"]


@dataclass
class DBStats:
    """Operational counters."""

    writes: int = 0
    gets: int = 0
    flushes: int = 0
    compactions: int = 0
    trivial_moves: int = 0
    compaction_input_bytes: int = 0
    compaction_output_bytes: int = 0
    compaction_seconds: float = 0.0
    write_stalls: int = 0
    per_level_compactions: dict[int, int] = field(default_factory=dict)

    def compaction_bandwidth(self) -> float:
        """Bytes of compaction input processed per second of compaction."""
        if self.compaction_seconds <= 0:
            return 0.0
        return self.compaction_input_bytes / self.compaction_seconds


class Snapshot:
    """A consistent read point; release via DB.release_snapshot or `with`."""

    __slots__ = ("sequence", "_db", "_released")

    def __init__(self, sequence: int, db: "DB") -> None:
        self.sequence = sequence
        self._db = db
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._db.release_snapshot(self)
            self._released = True

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class DB:
    """An LSM-tree key-value store with pluggable compaction procedure."""

    def __init__(
        self,
        storage: Storage,
        options: Optional[Options] = None,
        compaction_spec: Optional[ProcedureSpec] = None,
        background: bool = False,
        sync_every: Optional[int] = None,
        observer=None,
        obs: Optional[Observability] = None,
        compute_pool=None,
    ) -> None:
        """``observer`` (optional) receives engine events for accounting:
        ``on_write(batch, wal_bytes)``, ``on_flush(meta)``,
        ``on_trivial_move(task)``, ``on_compaction(task, subtasks,
        stats)``.  Used by the bench harness to attribute virtual time
        (see :mod:`repro.bench.observer`).

        ``obs`` (optional) is the :class:`repro.obs.Observability`
        bundle this DB records into; by default metrics are collected
        and tracing is off.  Pass a bundle with an enabled tracer to
        capture an S1–S7 span timeline of every compaction
        (``dbtool trace`` does).

        ``compute_pool`` (optional) runs pipelined compactions' S2–S6
        compute stage on a shared externally owned pool instead of
        per-compaction threads; a :class:`repro.cluster.ShardedDB`
        passes one pool to all of its shards so aggregate compaction
        compute stays bounded."""
        self.obs = obs or Observability()
        # All engine I/O (WAL, SSTables, MANIFEST) flows through the
        # metered wrapper so per-device byte/op counters come for free.
        if not isinstance(storage, MeteredStorage):
            storage = MeteredStorage(storage, self.obs.metrics)
        self.storage = storage
        # A fault injector anywhere in the wrapper chain gets its
        # injection counts mirrored into this DB's metrics, and its
        # crash points fired from the engine's commit protocol.
        self._faulty = find_faulty(storage)
        if self._faulty is not None:
            self._faulty.attach_metrics(self.obs.metrics)
        #: storage names of quarantined (renamed-aside) corrupt tables.
        self._quarantined: list[str] = []
        self.options = options or Options()
        self.options.validate()
        self.compaction_spec = compaction_spec or ProcedureSpec.scp()
        self.compute_pool = compute_pool
        self.observer = observer
        self.stats = DBStats()
        #: ring of recent compaction records (dicts); see _record_compaction.
        self.compaction_log: list[dict] = []
        self._compaction_log_cap = 64
        # Lock-sanitizer-aware factories: plain primitives normally,
        # OrderedLock under REPRO_LOCK_SANITIZER=1 (see repro.analysis).
        # The mutex also guards the version set and manifest.
        self._lock = make_rlock("db.mutex")
        self._file_number_lock = make_lock("db.file_number")
        # Race-sanitizer marker for the version set + manifest state the
        # mutex guards; inert (NULL_STATE) outside REPRO_RACE_SANITIZER.
        self._version_state = shared_state("db.version")
        self._cache = LRUCache(
            self.options.block_cache_entries, metrics=self.obs.metrics
        )
        self._tables: dict[int, Table] = {}
        self._snapshots: list[Snapshot] = []
        self._closed = False
        self._sync_every = (
            sync_every if sync_every is not None else self.options.wal_sync_interval
        )
        self._batches_since_sync = 0
        # Replication hooks: listeners observe every durable write
        # batch (``fn(base_seq, last_seq, record)`` under the DB lock);
        # retention keeps retired WALs around for follower catch-up.
        self._wal_listeners: list = []
        self._retention: Optional[WalRetention] = (
            WalRetention(self.storage, self.options.wal_retain_bytes)
            if self.options.wal_retain_bytes > 0
            else None
        )

        # -- recovery --------------------------------------------------
        version, next_file, last_seq, log_number, _ = recover_version(
            self.storage, self.options
        )
        self.version = version
        self._next_file = next_file
        self._sequence = last_seq
        # Compaction policy: fresh stores adopt the requested spec (or
        # leveling); existing stores reopen under the policy persisted
        # in their manifest, and a conflicting request fails loudly
        # rather than mixing layouts (see docs/COMPACTION.md).
        persisted = version.policy_spec
        requested = self.options.compaction_policy
        if requested is not None:
            spec = canonical_spec(requested, self.options)
            if persisted is not None and persisted != spec:
                raise PolicyMismatchError(
                    f"store was created with compaction policy "
                    f"{persisted!r} but open requested {spec!r}; pass "
                    f"compaction_policy=None (adopt) or {persisted!r}"
                )
        elif persisted is not None:
            spec = persisted
        else:
            spec = canonical_spec(None, self.options)  # legacy => leveled
        self.policy = make_policy(spec, self.options)
        self.version.policy_spec = self.policy.spec()
        #: Back-compat alias (the pre-policy engine called it a picker).
        self.picker = self.policy
        self.memtable = MemTable(seed=0)
        self._replay_wal(log_number)
        if len(self.memtable):
            # Recovered writes must become durable *now*: a second
            # crash before any flush would otherwise lose them (the old
            # WAL is retired below once the new manifest commits).
            meta = self._build_table_from_memtable()
            self.version.add_file(0, meta)
            self.memtable = MemTable(seed=meta.number)

        # Fresh manifest describing the recovered state.
        manifest_name = f"MANIFEST-{self._new_file_number():06d}"
        self._manifest = ManifestWriter(self.storage, manifest_name)
        self._wal_number = self._new_file_number()
        self._wal = LogWriter(
            self.storage.create(self._wal_name(self._wal_number)),
            metrics=self.obs.metrics,
        )
        self._wal_first_seq = self._sequence + 1
        boot = VersionEdit(
            log_number=self._wal_number,
            next_file_number=self._next_file,
            last_sequence=self._sequence,
            repl_epoch=self.version.repl_epoch,
            policy_spec=self.version.policy_spec,
        )
        for level, meta in self.version.all_files():
            boot.add_file(level, meta)
        self._manifest.append(boot, sync=True)
        set_current(self.storage, manifest_name)
        # Recovered state is durable under the new manifest; everything
        # a crash may have left behind is now garbage (or quarantine).
        self._startup_gc()

        # -- background compaction --------------------------------------
        self._background = background
        self._bg_wake = threading.Condition(self._lock)
        self._bg_thread: Optional[threading.Thread] = None
        self._bg_error: Optional[BaseException] = None
        self._compacting = False
        if background:
            self._bg_thread = threading.Thread(
                target=self._background_loop, name="db-compaction", daemon=True
            )
            self._bg_thread.start()

    # ------------------------------------------------------------ util
    def _wal_name(self, number: int) -> str:
        return f"{number:06d}.log"

    def _new_file_number(self) -> int:
        # Own tiny lock: called from the compaction merge while the DB
        # lock is released in background mode.
        with self._file_number_lock:
            n = self._next_file
            self._next_file += 1
            return n

    def _replay_wal(self, log_number: Optional[int]) -> None:
        """Replay the recovered WAL into the memtable.

        The old WAL file itself is retired later by :meth:`_startup_gc`
        once the recovered state is durable elsewhere.  A torn tail
        (crash mid-append) is tolerated and counted in
        ``recovery.wal_torn_tail``.
        """
        if log_number is None:
            return
        name = self._wal_name(log_number)
        if not self.storage.exists(name):
            return
        reader = LogReader(self.storage.open(name))
        records = 0
        for record in reader:
            batch, base_seq = WriteBatch.decode(record)
            for offset, (kind, key, value) in enumerate(batch):
                self.memtable.add(base_seq + offset, kind, key, value)
            self._sequence = max(self._sequence, base_seq + len(batch) - 1)
            records += 1
        self.obs.metrics.counter("recovery.wal_records").inc(records)
        if reader.torn_tail:
            self.obs.metrics.counter("recovery.wal_torn_tail").inc()

    def _safe_delete(self, name: str) -> None:
        try:
            self.storage.delete(name)
        except StorageError:  # already gone / injected fault: best-effort
            pass

    def _startup_gc(self) -> None:
        """Post-recovery janitor pass (see docs/RECOVERY.md).

        Runs after the fresh manifest is committed and CURRENT swapped,
        so every file the new version does not reference is garbage
        from an earlier crash: orphan ``*.tmp`` (torn CURRENT swap),
        superseded ``MANIFEST-*``, retired/stray ``*.log``, and
        ``*.sst`` outputs whose install never committed.  Quarantined
        tables (``*.quarantined``) are kept and surfaced via
        ``get_property("quarantine")``.
        """
        metrics = self.obs.metrics
        referenced = {meta.name for _lv, meta in self.version.all_files()}
        current_wal = self._wal_name(self._wal_number)
        for name in self.storage.list():
            if name.endswith(".quarantined"):
                self._quarantined.append(name)
                metrics.counter("recovery.quarantine_found").inc()
            elif name.endswith(".tmp"):
                self._safe_delete(name)
                metrics.counter("recovery.tmp_removed").inc()
            elif name.startswith("MANIFEST-") and name != self._manifest.name:
                self._safe_delete(name)
                metrics.counter("recovery.manifests_removed").inc()
            elif name.endswith(".log") and name != current_wal:
                self._safe_delete(name)
                metrics.counter("recovery.logs_removed").inc()
            elif name.endswith(".sst") and name not in referenced:
                self._safe_delete(name)
                metrics.counter("recovery.orphans_removed").inc()

    def _crash_point(self, name: str) -> None:
        """Fire a named fault-injection crash point (no-op normally)."""
        if self._faulty is not None:
            self._faulty.crash_point(name)

    def _open_table(self, meta: FileMetaData) -> Table:
        table = self._tables.get(meta.number)
        if table is None:
            table = Table(
                self.storage.open(meta.name),
                self.options,
                cache=self._cache,
                table_id=meta.number,
            )
            self._tables[meta.number] = table
        return table

    @contextmanager
    def _unlocked(self):
        """Release the DB mutex around a region, re-acquiring after.

        Used by the background compactor so foreground writes proceed
        during the merge; the caller must hold the lock exactly once.
        """
        self._lock.release()
        try:
            yield
        finally:
            self._lock.acquire()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("DB is closed")
        if self._bg_error is not None:
            raise RuntimeError("background compaction failed") from self._bg_error

    # ---------------------------------------------------------- writes
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite one key."""
        self.write(WriteBatch().put(key, value))

    def delete(self, key: bytes) -> None:
        """Delete one key (writes a tombstone)."""
        self.write(WriteBatch().delete(key))

    def write(self, batch: WriteBatch) -> None:
        """Apply a batch atomically: WAL first, then memtable."""
        if len(batch) == 0:
            return
        with self._lock:
            self._check_open()
            self._maybe_stall()
            base_seq = self._sequence + 1
            self._sequence += len(batch)
            encoded = batch.encode(base_seq)
            self._crash_point("wal.append")
            self._wal.add_record(encoded)
            self._batches_since_sync += 1
            if self._sync_every and self._batches_since_sync >= self._sync_every:
                self._crash_point("wal.sync")
                self._wal.sync()
                self._batches_since_sync = 0
            for offset, (kind, key, value) in enumerate(batch):
                self.memtable.add(base_seq + offset, kind, key, value)
            self.stats.writes += len(batch)
            if self.observer is not None:
                self.observer.on_write(batch, len(encoded))
            self._notify_wal_listeners(
                base_seq, base_seq + len(batch) - 1, encoded
            )
            if self.memtable.approximate_bytes >= self.options.memtable_bytes:
                self._flush_memtable()
                self._after_shape_change()

    def _maybe_stall(self) -> None:
        """Paper §I: slow compaction causes write pauses."""
        if self.picker.write_stall(self.version):
            import time

            self.stats.write_stalls += 1
            self.obs.metrics.counter("db.write_stalls").inc()
            events = self.obs.events
            if events.enabled:
                events.emit(
                    "stall.enter", l0_files=self.version.num_files(0)
                )
            t0 = time.perf_counter()
            with self.obs.tracer.span("write-stall", cat="stall"):
                if self._background:
                    while (
                        self.picker.write_stall(self.version)
                        and not self._closed
                    ):
                        self._bg_wake.notify_all()
                        self._bg_wake.wait(timeout=0.05)
                        if self._bg_error is not None:
                            raise RuntimeError(
                                "background compaction failed"
                            ) from self._bg_error
                else:
                    self._compact_until_quiet()
            stalled = time.perf_counter() - t0
            self.obs.metrics.histogram("db.stall_seconds").record(stalled)
            if events.enabled:
                events.emit(
                    "stall.exit",
                    seconds=round(stalled, 6),
                    l0_files=self.version.num_files(0),
                )

    # ---------------------------------------------------------- flush
    def _build_table_from_memtable(self) -> FileMetaData:
        """Write the current memtable as a new SSTable file."""
        number = self._new_file_number()
        name = sstable_name(number)
        with self.storage.create(name) as f:
            builder = TableBuilder(f, self.options)
            for ikey, value in self.memtable:
                builder.add(ikey, value)
            builder.finish()
            f.sync()
            return FileMetaData(
                number=number,
                file_size=builder.file_size,
                smallest=builder.smallest,
                largest=builder.largest,
            )

    def _flush_memtable(self) -> None:
        """Dump C0 into a new L0 SSTable (the paper's 'dump')."""
        if len(self.memtable) == 0:
            return
        import time

        t0 = time.perf_counter()
        with self.obs.tracer.span("flush", cat="flush"):
            meta = self._build_table_from_memtable()
            self._crash_point("flush.table_written")
            number = meta.number
            # Switch WAL before publishing the flush.
            old_wal_number = self._wal_number
            old_wal_first_seq = self._wal_first_seq
            self._wal.close()
            self._wal_number = self._new_file_number()
            self._wal = LogWriter(
                self.storage.create(self._wal_name(self._wal_number)),
                metrics=self.obs.metrics,
            )
            self._wal_first_seq = self._sequence + 1
            edit = VersionEdit(
                log_number=self._wal_number,
                next_file_number=self._next_file,
                last_sequence=self._sequence,
            ).add_file(0, meta)
            self._apply_edit(edit)
            self._crash_point("flush.installed")
            old_wal_name = self._wal_name(old_wal_number)
            if (
                self._retention is not None
                and old_wal_first_seq <= self._sequence
            ):
                # Keep the retired WAL for follower catch-up instead of
                # deleting it; the retention prunes oldest-first.
                self._retention.add(
                    old_wal_name,
                    old_wal_first_seq,
                    self._sequence,
                    self.storage.file_size(old_wal_name),
                )
            else:
                self.storage.delete(old_wal_name)
            self.memtable = MemTable(seed=number)
        self.stats.flushes += 1
        self.obs.metrics.counter("db.flushes").inc()
        self.obs.metrics.counter("db.flush_bytes").inc(meta.file_size)
        flush_s = time.perf_counter() - t0
        self.obs.metrics.histogram("db.flush_seconds").record(flush_s)
        events = self.obs.events
        if events.enabled:
            events.emit(
                "flush",
                bytes=meta.file_size,
                seconds=round(flush_s, 6),
                l0_files=self.version.num_files(0),
            )
        if self.observer is not None:
            self.observer.on_flush(meta)

    def flush(self) -> None:
        """Force the memtable to disk (mainly for tests/benchmarks)."""
        with self._lock:
            self._check_open()
            self._flush_memtable()
            self._after_shape_change()

    # ------------------------------------------------------ replication
    @property
    def last_sequence(self) -> int:
        """Sequence of the most recent write (racy lock-free read)."""
        return self._sequence

    @property
    def repl_epoch(self) -> int:
        """Replication fencing epoch (bumped by ``dbtool promote``)."""
        return self.version.repl_epoch

    def set_repl_epoch(self, epoch: int) -> None:
        """Persist a new fencing epoch (synced manifest edit)."""
        with self._lock:
            self._check_open()
            if epoch < self.version.repl_epoch:
                raise ValueError(
                    f"epoch may not move backwards "
                    f"({epoch} < {self.version.repl_epoch})"
                )
            old = self.version.repl_epoch
            self._apply_edit(VersionEdit(repl_epoch=epoch))
            if self.obs.events.enabled:
                self.obs.events.emit("fence", epoch=epoch, previous=old)

    def add_wal_listener(self, fn) -> None:
        """Register ``fn(base_seq, last_seq, record)``; called under the
        DB lock after each batch reaches the WAL.  Keep it fast."""
        with self._lock:
            self._wal_listeners.append(fn)

    def remove_wal_listener(self, fn) -> None:
        with self._lock:
            if fn in self._wal_listeners:
                self._wal_listeners.remove(fn)

    def _notify_wal_listeners(
        self, base_seq: int, last_seq: int, record: bytes
    ) -> None:
        for fn in self._wal_listeners:
            fn(base_seq, last_seq, record)

    @property
    def wal_retention(self) -> Optional[WalRetention]:
        """The retired-WAL retention index (None unless enabled)."""
        return self._retention

    def sync_wal(self) -> None:
        """Force the live WAL durable (follower ack barrier)."""
        with self._lock:
            self._check_open()
            self._wal.sync()
            self._batches_since_sync = 0

    def apply_replicated(self, record: bytes) -> bool:
        """Apply one shipped WAL record (an encoded batch) verbatim.

        The record carries its own base sequence from the primary.
        Records at or below the local sequence are skipped (duplicate
        delivery after a reconnect); a gap — base sequence beyond
        local+1 — raises ValueError so the follower resubscribes
        rather than silently diverging.  Returns True when applied.
        """
        batch, base_seq = WriteBatch.decode(record)
        with self._lock:
            self._check_open()
            last_seq = base_seq + len(batch) - 1
            if last_seq <= self._sequence:
                return False  # duplicate redelivery
            if base_seq != self._sequence + 1:
                raise ValueError(
                    f"replication gap: record starts at {base_seq}, "
                    f"local sequence is {self._sequence}"
                )
            self._crash_point("wal.append")
            self._wal.add_record(record)
            self._batches_since_sync += 1
            for offset, (kind, key, value) in enumerate(batch):
                self.memtable.add(base_seq + offset, kind, key, value)
            self._sequence = last_seq
            self.stats.writes += len(batch)
            self._notify_wal_listeners(base_seq, last_seq, record)
            if self.memtable.approximate_bytes >= self.options.memtable_bytes:
                self._flush_memtable()
                self._after_shape_change()
            return True

    def checkpoint_files(self) -> tuple[int, list[tuple[int, FileMetaData, "ReadableFile"]]]:
        """Open a consistent snapshot of the tree for SST streaming.

        Flushes the memtable so every write ≤ the returned sequence is
        in some SSTable, then opens a read handle per live table.  The
        handles stay valid even if compaction deletes the files while
        the caller streams (POSIX/MemStorage semantics), so the DB
        lock is not held during the transfer.  Caller closes handles.
        """
        with self._lock:
            self._check_open()
            self._flush_memtable()
            self._version_state.read()
            last_seq = self._sequence
            files = [
                (level, meta, self.storage.open(meta.name))
                for level, meta in self.version.all_files()
            ]
        return last_seq, files

    def _apply_edit(self, edit: VersionEdit) -> None:
        # Synced: an edit that deletes a WAL's data (flush) or an
        # input table (compaction) must be durable before the caller
        # removes those files, or a power cut loses acknowledged
        # writes.  Edits are rare (per flush/compaction), so the fsync
        # is cheap relative to the work that produced them.
        self._crash_point("manifest.append")
        self._version_state.write()
        self._manifest.append(edit, sync=True)
        edit.apply(self.version)
        # Tree-shape gauges for live scrapes: edits are per
        # flush/compaction, so the two gauge writes are cheap.
        self.obs.metrics.gauge("db.l0_files").set(self.version.num_files(0))
        self.obs.metrics.gauge("db.live_files").set(
            sum(
                self.version.num_files(lv)
                for lv in range(self.options.num_levels)
            )
        )

    def _after_shape_change(self) -> None:
        if self._background:
            self._bg_wake.notify_all()
        else:
            self._compact_until_quiet()

    # ------------------------------------------------------ compaction
    def _compact_until_quiet(self) -> None:
        while True:
            task = self.picker.pick(self.version)
            if task is None:
                return
            self._run_compaction(task)

    def compact_once(self) -> bool:
        """Run at most one due compaction; True if one ran.

        Only meaningful in synchronous mode; with a background thread
        use :meth:`wait_for_compactions` instead.
        """
        if self._background:
            raise RuntimeError(
                "compact_once() is for synchronous mode; "
                "use wait_for_compactions() with background=True"
            )
        with self._lock:
            self._check_open()
            task = self.picker.pick(self.version)
            if task is None:
                return False
            self._run_compaction(task)
            return True

    def compact_all(self) -> int:
        """Run compactions until the tree is quiescent; returns count."""
        n = 0
        while self.compact_once():
            n += 1
        return n

    def _smallest_snapshot(self) -> int:
        if self._snapshots:
            return min(s.sequence for s in self._snapshots)
        return self._sequence

    def _can_drop_deletes(self, task: CompactionTask) -> bool:
        """Tombstones may be dropped only when no older data can exist
        for the compacted range once the outputs are installed.

        Older data can hide in two places: levels below the output
        level (the classic leveled case), and — under tiered layouts —
        *other runs at the output level itself* that are not consumed
        by this task (they were installed earlier, so they hold older
        versions a dropped tombstone would resurrect)."""
        lo, hi = task.key_range_user()
        input_numbers = {m.number for m in task.all_inputs()}
        for meta in self.version.overlapping_files(task.output_level, lo, hi):
            if meta.number not in input_numbers:
                return False
        if task.output_level >= self.options.num_levels - 1:
            return True
        return not any(
            self.version.overlapping_files(level, lo, hi)
            for level in range(task.output_level + 1, self.options.num_levels)
        )

    def _run_compaction(self, task: CompactionTask, unlock: bool = False) -> None:
        """Execute one compaction task.  Caller holds the DB lock.

        With ``unlock=True`` (background mode, single compactor) the
        lock is released during the merge so foreground writes proceed;
        version edits are applied under the lock afterwards.
        """
        import time

        self.stats.compactions += 1
        self.stats.per_level_compactions[task.level] = (
            self.stats.per_level_compactions.get(task.level, 0) + 1
        )
        self.obs.metrics.counter(f"compaction.policy.{self.policy.name}").inc()
        if task.is_trivial_move():
            meta = task.inputs_upper[0]
            edit = VersionEdit()
            edit.delete_file(task.level, meta.number)
            edit.add_file(task.output_level, replace(meta, run=task.output_run))
            self._apply_edit(edit)
            self.stats.trivial_moves += 1
            self.obs.metrics.counter("compaction.trivial_moves").inc()
            if self.observer is not None:
                self.observer.on_trivial_move(task)
            return

        # Inputs newest-first: upper level files (for L0, newest file
        # first), then lower level files in key order.
        upper = list(task.inputs_upper)
        if task.level == 0:
            upper.sort(key=lambda m: m.number, reverse=True)
        drop_deletes = self._can_drop_deletes(task)
        smallest_snapshot = self._smallest_snapshot()
        events = self.obs.events
        if events.enabled:
            events.emit(
                "compaction.start",
                level=task.level,
                output_level=task.output_level,
                inputs=len(task.all_inputs()),
                input_bytes=sum(m.file_size for m in task.all_inputs()),
            )

        # Transient I/O errors get bounded retries with exponential
        # backoff; corrupt inputs are quarantined and the task aborts
        # gracefully (the tree shrinks by the damaged table instead of
        # the DB wedging).  File numbers are never reused, so partial
        # outputs of a failed attempt are swept by number range.
        attempt = 0
        while True:
            first_number = self._next_file
            try:
                tables = [self._open_table(m) for m in upper]
                tables += [self._open_table(m) for m in task.inputs_lower]
                with self._unlocked() if unlock else nullcontext():
                    t0 = time.perf_counter()
                    with self.obs.tracer.span(
                        "compaction.run",
                        cat="compaction",
                        policy=self.policy.spec(),
                        level=task.level,
                        output_level=task.output_level,
                    ):
                        outputs, stats, subtasks = compact_tables(
                            tables,
                            self.storage,
                            self.options,
                            file_namer=lambda: sstable_name(
                                self._new_file_number()
                            ),
                            spec=self.compaction_spec,
                            drop_deletes=drop_deletes,
                            smallest_snapshot=smallest_snapshot,
                            tracer=self.obs.tracer,
                            compute_pool=self.compute_pool,
                        )
                    elapsed = time.perf_counter() - t0
                break
            except TransientIOError:
                self._gc_partial_outputs(first_number)
                if attempt >= self.options.compaction_retries:
                    self.obs.metrics.counter("compaction.failures").inc()
                    raise
                attempt += 1
                self.obs.metrics.counter("compaction.retries").inc()
                delay = self.options.compaction_retry_backoff_s * (
                    2 ** (attempt - 1)
                )
                if events.enabled:
                    events.emit(
                        "compaction.retry",
                        level=task.level,
                        attempt=attempt,
                        backoff_s=delay,
                    )
                if delay > 0:
                    with self._unlocked() if unlock else nullcontext():
                        time.sleep(delay)
            except TableCorruption as exc:
                self._gc_partial_outputs(first_number)
                if not self._quarantine_corrupt_inputs(task, exc):
                    # No input is individually corrupt (e.g. damage in
                    # an already-deleted cache entry): nothing to heal.
                    raise
                if events.enabled:
                    events.emit(
                        "compaction.quarantine",
                        level=task.level,
                        cause=str(exc),
                    )
                return

        self._crash_point("compaction.outputs_written")
        edit = VersionEdit(
            next_file_number=self._next_file, last_sequence=self._sequence
        )
        for meta in task.inputs_upper:
            edit.delete_file(task.level, meta.number)
        for meta in task.inputs_lower:
            edit.delete_file(task.output_level, meta.number)
        for meta in outputs:
            edit.add_file(task.output_level, replace(meta, run=task.output_run))
        self._apply_edit(edit)
        self._crash_point("compaction.installed")
        for meta in task.all_inputs():
            # Drop from the table cache but do NOT close: a concurrent
            # scan may still be streaming from the old file (POSIX
            # semantics: the open handle stays valid after deletion).
            self._tables.pop(meta.number, None)
            self.storage.delete(meta.name)
        self.stats.compaction_input_bytes += stats.input_bytes
        self.stats.compaction_output_bytes += stats.output_bytes
        self.stats.compaction_seconds += elapsed
        metrics = self.obs.metrics
        metrics.counter("compaction.count").inc()
        metrics.counter("compaction.input_bytes").inc(stats.input_bytes)
        metrics.counter("compaction.output_bytes").inc(stats.output_bytes)
        metrics.histogram("compaction.seconds").record(elapsed)
        if events.enabled:
            events.emit(
                "compaction.end",
                level=task.level,
                output_level=task.output_level,
                outputs=len(outputs),
                output_bytes=stats.output_bytes,
                seconds=round(elapsed, 6),
            )
        self._record_compaction(
            {
                "level": task.level,
                "output_level": task.output_level,
                "output_run": task.output_run,
                "inputs": len(task.all_inputs()),
                "outputs": len(outputs),
                "subtasks": stats.n_subtasks,
                "input_bytes": stats.input_bytes,
                "output_bytes": stats.output_bytes,
                "seconds": elapsed,
                "procedure": self.compaction_spec.kind,
                "policy": self.policy.spec(),
            }
        )
        if self.observer is not None:
            self.observer.on_compaction(task, subtasks, stats)

    def _gc_partial_outputs(self, first_number: int) -> None:
        """Delete output files a failed compaction attempt left behind.

        Caller holds the DB lock.  File numbers are monotonic and
        never reused, so every ``*.sst`` numbered in
        ``[first_number, next_file)`` that the version does not
        reference is a partial output of the failed attempt (a
        concurrent flush's table *is* referenced and survives).
        """
        referenced = {meta.number for _lv, meta in self.version.all_files()}
        for number in range(first_number, self._next_file):
            if number in referenced:
                continue
            name = sstable_name(number)
            self._tables.pop(number, None)
            if self.storage.exists(name):
                self._safe_delete(name)

    def _quarantine_corrupt_inputs(
        self, task: CompactionTask, cause: Exception
    ) -> bool:
        """Rename corrupt input tables aside; returns True if any found.

        Each input is re-verified individually (full iteration checks
        every block checksum, bypassing caches); the damaged ones are
        renamed to ``<name>.quarantined``, removed from the version via
        a synced manifest edit, and reported through
        ``get_property("quarantine")``.  The keys they held degrade to
        older versions / absence — the DB keeps serving instead of
        failing every future compaction of this range.
        """
        labelled = [(task.level, m) for m in task.inputs_upper]
        labelled += [(task.output_level, m) for m in task.inputs_lower]
        corrupt: list[tuple[int, FileMetaData]] = []
        for level, meta in labelled:
            try:
                table = Table(self.storage.open(meta.name), self.options)
                for _ikey, _value in table:
                    pass
                table.close()
            except Exception:
                corrupt.append((level, meta))
        if not corrupt:
            return False
        edit = VersionEdit(
            next_file_number=self._next_file, last_sequence=self._sequence
        )
        for level, meta in corrupt:
            quarantine_name = meta.name + ".quarantined"
            self._tables.pop(meta.number, None)
            self.storage.rename(meta.name, quarantine_name)
            edit.delete_file(level, meta.number)
            self._quarantined.append(quarantine_name)
            self.obs.metrics.counter("compaction.quarantined").inc()
        self._cache.clear()  # drop any cached blocks of the bad tables
        self._apply_edit(edit)
        return True

    def _background_loop(self) -> None:
        while True:
            with self._lock:
                while (
                    not self._closed
                    and not self.picker.needs_compaction(self.version)
                ):
                    self._bg_wake.wait(timeout=0.1)
                if self._closed:
                    return
                task = self.picker.pick(self.version)
                if task is None:
                    continue
                self._compacting = True
                try:
                    self._run_compaction(task, unlock=True)
                except TransientIOError:
                    # Retries exhausted ("compaction.failures" already
                    # counted): keep the DB serving and try again on
                    # the next wake instead of wedging permanently.
                    self._bg_wake.wait(timeout=0.1)
                except BaseException as exc:  # pragma: no cover - defensive
                    self._bg_error = exc
                    return
                finally:
                    self._compacting = False
                    self._bg_wake.notify_all()

    def wait_for_compactions(self) -> None:
        """Block until no compaction is due (background mode helper)."""
        with self._lock:
            while (
                self.picker.needs_compaction(self.version)
                and self._bg_error is None
                and not self._closed
            ):
                self._bg_wake.notify_all()
                self._bg_wake.wait(timeout=0.05)
            self._check_open()

    # ------------------------------------------------------------ reads
    def get(self, key: bytes, snapshot: Optional[Snapshot] = None) -> Optional[bytes]:
        """Newest visible value for ``key``, or None."""
        seq = snapshot.sequence if snapshot is not None else MAX_SEQUENCE
        with self._lock:
            self._check_open()
            self.stats.gets += 1
            result = self.memtable.get(key, seq)
            if result.found:
                return None if result.deleted else result.value
            candidates = self.version.files_for_get(key)
            tables = [self._open_table(meta) for _, meta in candidates]
        probe = lookup_key(key, seq)
        for table in tables:
            hit = table.get(probe)
            if hit is None:
                continue
            ikey, value = hit
            user, _s, kind = decode_internal_key(ikey)
            if user != key:
                continue
            return None if kind == KIND_DELETE else value
        return None

    def multi_get(
        self, keys, snapshot: Optional[Snapshot] = None
    ) -> list[Optional[bytes]]:
        """Batched point lookups (order-preserving)."""
        return [self.get(key, snapshot=snapshot) for key in keys]

    def approximate_size(
        self, start: Optional[bytes] = None, end: Optional[bytes] = None
    ) -> int:
        """Approximate on-disk bytes holding user keys in [start, end).

        Uses file metadata only (no I/O beyond already-open indexes):
        files fully inside the range count whole; files straddling a
        bound count half.  The memtable is excluded (use the
        ``approximate-memory-usage`` property).
        """
        total = 0.0
        with self._lock:
            self._check_open()
            for _level, meta in self.version.all_files():
                lo = meta.smallest[:-8]
                hi = meta.largest[:-8]
                if end is not None and lo >= end:
                    continue
                if start is not None and hi < start:
                    continue
                inside_lo = start is None or lo >= start
                inside_hi = end is None or hi < end
                if inside_lo and inside_hi:
                    total += meta.file_size
                else:
                    total += meta.file_size / 2.0
        return int(total)

    def snapshot(self) -> Snapshot:
        """Pin the current sequence for consistent reads."""
        with self._lock:
            self._check_open()
            snap = Snapshot(self._sequence, self)
            self._snapshots.append(snap)
            return snap

    def release_snapshot(self, snap: Snapshot) -> None:
        with self._lock:
            if snap in self._snapshots:
                self._snapshots.remove(snap)

    def cursor(self, snapshot: Optional[Snapshot] = None) -> "Cursor":
        """A streaming, snapshot-consistent cursor over live keys.

        Captures the tree shape once; remains valid across concurrent
        writes and background compactions (it pins its view's sequence
        and keeps the handles of the tables it covers).
        """
        from .cursor import Cursor

        with self._lock:
            self._check_open()
            seq = snapshot.sequence if snapshot is not None else self._sequence
            memtables = [self.memtable]
            l0 = [self._open_table(m) for m in reversed(self.version.files[0])]
            # One disjoint key-ordered table list per sorted run, newer
            # runs first within a level (they shadow older ones); a
            # leveled store has one run per level, so this degenerates
            # to the classic per-level list.
            levels = [
                [self._open_table(m) for m in run_files]
                for level in range(1, self.options.num_levels)
                for _run_id, run_files in reversed(self.version.runs(level))
            ]
        return Cursor(memtables, l0, levels, seq)

    def scan(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        snapshot: Optional[Snapshot] = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """Ordered iteration over live user keys in [start, end)."""
        return self.cursor(snapshot).items(start, end)

    def scan_reverse(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        snapshot: Optional[Snapshot] = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """The [start, end) window in *descending* key order."""
        return self.cursor(snapshot).items_reverse(start, end)

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """All live (key, value) pairs in key order."""
        return self.scan()

    # ------------------------------------------------------------ admin
    def write_stalled(self, keys=None) -> bool:
        """True when a write would currently park in the L0 stall.

        Lock-free racy read (momentary staleness is fine: the caller —
        the network server's backpressure check — re-evaluates every
        request).  ``keys`` is accepted for signature compatibility
        with ``ShardedDB.write_stalled`` and ignored: a single DB owns
        every key.
        """
        return self.picker.write_stall(self.version)

    def num_files(self, level: int) -> int:
        with self._lock:
            return self.version.num_files(level)

    def level_bytes(self, level: int) -> int:
        with self._lock:
            return self.version.level_bytes(level)

    def total_bytes(self) -> int:
        with self._lock:
            return self.version.total_bytes()

    def describe(self) -> str:
        with self._lock:
            return (
                f"policy={self.policy.spec()}\n{self.version.describe()}"
            )

    def compact_range(
        self, start: Optional[bytes] = None, end: Optional[bytes] = None
    ) -> int:
        """Manually compact every level holding data in [start, end].

        Flushes the memtable, then pushes overlapping files level by
        level until everything in the range sits at its deepest
        occupied level.  Returns the number of compactions executed.
        Synchronous regardless of background mode (waits for the
        background thread's slot by holding the lock between tasks).
        """
        n = 0
        with self._lock:
            self._check_open()
            self._flush_memtable()
        for level in range(0, self.options.num_levels - 1):
            while True:
                with self._lock:
                    self._check_open()
                    # Never race the background compactor over one task.
                    while self._compacting:
                        self._bg_wake.wait(timeout=0.05)
                    task = self.policy.pick_for_range(
                        self.version, level, start, end
                    )
                    if task is None:
                        break
                    self._run_compaction(task)
                    n += 1
        return n

    def _record_compaction(self, record: dict) -> None:
        self.compaction_log.append(record)
        if len(self.compaction_log) > self._compaction_log_cap:
            del self.compaction_log[0]

    def get_property(self, name: str) -> Optional[str]:
        """LevelDB-style introspection properties.

        Supported: ``num-files-at-level<N>``, ``stats``, ``sstables``,
        ``approximate-memory-usage``, ``total-bytes``,
        ``compaction-policy`` (the canonical policy spec),
        ``compaction-log`` (a policy/per-level-run-count header, then
        one line per recent compaction, newest
        last), ``metrics`` (the full :class:`repro.obs.MetricsRegistry`
        snapshot as JSON), ``io-stats`` (per-device read/write/sync
        ops and bytes), ``cache-stats`` (block-cache hit/miss/
        eviction counts and hit rate), and ``quarantine`` (one line
        per corrupt table renamed aside by the self-healing compaction
        path or found at recovery; ``(none)`` when clean).  Returns
        None for unknown names; raises RuntimeError on a closed DB.
        """
        with self._lock:
            self._check_open()
            if name.startswith("num-files-at-level"):
                try:
                    level = int(name[len("num-files-at-level"):])
                except ValueError:
                    return None
                if not 0 <= level < self.options.num_levels:
                    return None
                return str(self.version.num_files(level))
            if name == "stats":
                s = self.stats
                return (
                    f"writes={s.writes} gets={s.gets} flushes={s.flushes} "
                    f"compactions={s.compactions} "
                    f"trivial_moves={s.trivial_moves} "
                    f"stalls={s.write_stalls} "
                    f"compacted_mb={s.compaction_input_bytes / 1e6:.2f}"
                )
            if name == "sstables":
                return self.version.describe()
            if name == "approximate-memory-usage":
                return str(self.memtable.approximate_bytes)
            if name == "total-bytes":
                return str(self.version.total_bytes())
            if name == "compaction-log":
                lines = [
                    f"L{r['level']}->L{r.get('output_level', r['level'] + 1)} "
                    f"{r['procedure']} "
                    f"policy={r.get('policy', self.policy.spec())} "
                    f"inputs={r['inputs']} "
                    f"subtasks={r['subtasks']} "
                    f"in={r['input_bytes']} out={r['output_bytes']} "
                    f"{r['seconds'] * 1e3:.1f}ms"
                    for r in self.compaction_log
                ]
                if not lines:
                    return "(no compactions yet)"
                runs = " ".join(
                    f"L{lv}={self.version.num_runs(lv)}"
                    for lv in range(self.options.num_levels)
                    if self.version.files[lv]
                )
                header = (
                    f"policy={self.policy.spec()} "
                    f"runs[{runs or 'empty'}]"
                )
                return "\n".join([header, *lines])
            if name == "compaction-policy":
                return self.policy.spec()
            if name == "metrics":
                return json.dumps(self.obs.metrics.snapshot(), sort_keys=True)
            if name == "io-stats":
                items = self.obs.metrics.items_with_prefix("io.")
                lines = [f"{key}={metric.value}" for key, metric in items]
                return "\n".join(lines) if lines else "(no io recorded)"
            if name == "quarantine":
                return "\n".join(self._quarantined) if self._quarantined else "(none)"
            if name == "cache-stats":
                cs = self._cache.stats
                return (
                    f"hits={cs.hits} misses={cs.misses} "
                    f"evictions={cs.evictions} "
                    f"hit_rate={cs.hit_rate():.4f}"
                )
            return None

    def close(self) -> None:
        """Flush WAL state and stop background work (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._bg_wake.notify_all()
        if self._bg_thread is not None:
            self._bg_thread.join(timeout=5)
        with self._lock:
            self._wal.sync()
            self._wal.close()
            self._manifest.append(
                VersionEdit(
                    next_file_number=self._next_file,
                    last_sequence=self._sequence,
                    log_number=self._wal_number,
                ),
                sync=True,
            )
            self._manifest.close()
            # Release table handles deterministically instead of
            # leaning on GC finalizers (live cursors keep their own
            # handles; see DB.cursor).
            for table in self._tables.values():
                table.close()
            self._tables.clear()

    def __enter__(self) -> "DB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
