"""The key-value store: DB facade, snapshots, manifest recovery."""

from .cursor import Cursor
from .db import DB, DBStats, Snapshot
from .manifest import ManifestWriter, VersionEdit, recover_version
from .verify import VerifyReport, repair_db, verify_db

__all__ = [
    "Cursor",
    "DB",
    "DBStats",
    "ManifestWriter",
    "Snapshot",
    "VerifyReport",
    "VersionEdit",
    "recover_version",
    "repair_db",
    "verify_db",
]
