"""Version edits and the MANIFEST log.

The tree shape (which SSTables at which levels) must survive restarts.
As in LevelDB, every mutation — memtable flush, compaction — is
recorded as a :class:`VersionEdit` appended to a MANIFEST file (using
the same record framing as the WAL), and a tiny ``CURRENT`` file names
the live manifest.  Recovery replays the edit sequence into a
:class:`repro.lsm.version.Version`.

Edit wire format: a sequence of varint-tagged fields::

    1 log_number          varint
    2 next_file_number    varint
    3 last_sequence       varint
    4 new file            level, number, size, len+smallest, len+largest
    5 deleted file        level, number
    6 repl_epoch          varint (replication fencing epoch)
    7 new file w/ run     level, number, run, size, len+smallest, len+largest
    8 policy spec         len + utf-8 compaction-policy spec string

Tag 4 is kept for run-0 files so leveled stores stay byte-identical
with pre-policy manifests; tag 7 only appears once a tiered policy
stacks runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..codec.varint import decode_varint64, encode_varint64
from ..devices.faults import fire_crash_point
from ..devices.vfs import Storage
from ..lsm.options import Options
from ..lsm.version import FileMetaData, Version
from ..lsm.wal import LogReader, LogWriter

__all__ = ["VersionEdit", "ManifestWriter", "recover_version", "CURRENT_NAME"]

CURRENT_NAME = "CURRENT"

_TAG_LOG_NUMBER = 1
_TAG_NEXT_FILE = 2
_TAG_LAST_SEQUENCE = 3
_TAG_NEW_FILE = 4
_TAG_DELETED_FILE = 5
_TAG_REPL_EPOCH = 6
_TAG_NEW_FILE_RUN = 7
_TAG_POLICY = 8


@dataclass
class VersionEdit:
    """One atomic change to the tree shape."""

    log_number: Optional[int] = None
    next_file_number: Optional[int] = None
    last_sequence: Optional[int] = None
    new_files: list[tuple[int, FileMetaData]] = field(default_factory=list)
    deleted_files: list[tuple[int, int]] = field(default_factory=list)
    repl_epoch: Optional[int] = None
    policy_spec: Optional[str] = None

    def add_file(self, level: int, meta: FileMetaData) -> "VersionEdit":
        self.new_files.append((level, meta))
        return self

    def delete_file(self, level: int, number: int) -> "VersionEdit":
        self.deleted_files.append((level, number))
        return self

    def encode(self) -> bytes:
        out = bytearray()
        if self.log_number is not None:
            out += encode_varint64(_TAG_LOG_NUMBER)
            out += encode_varint64(self.log_number)
        if self.next_file_number is not None:
            out += encode_varint64(_TAG_NEXT_FILE)
            out += encode_varint64(self.next_file_number)
        if self.last_sequence is not None:
            out += encode_varint64(_TAG_LAST_SEQUENCE)
            out += encode_varint64(self.last_sequence)
        if self.repl_epoch is not None:
            out += encode_varint64(_TAG_REPL_EPOCH)
            out += encode_varint64(self.repl_epoch)
        if self.policy_spec is not None:
            spec = self.policy_spec.encode("utf-8")
            out += encode_varint64(_TAG_POLICY)
            out += encode_varint64(len(spec))
            out += spec
        for level, meta in self.new_files:
            if meta.run:
                out += encode_varint64(_TAG_NEW_FILE_RUN)
                out += encode_varint64(level)
                out += encode_varint64(meta.number)
                out += encode_varint64(meta.run)
            else:  # run-0 files keep the legacy tag (byte compat)
                out += encode_varint64(_TAG_NEW_FILE)
                out += encode_varint64(level)
                out += encode_varint64(meta.number)
            out += encode_varint64(meta.file_size)
            out += encode_varint64(len(meta.smallest))
            out += meta.smallest
            out += encode_varint64(len(meta.largest))
            out += meta.largest
        for level, number in self.deleted_files:
            out += encode_varint64(_TAG_DELETED_FILE)
            out += encode_varint64(level)
            out += encode_varint64(number)
        return bytes(out)

    @classmethod
    def decode(cls, blob: bytes) -> "VersionEdit":
        edit = cls()
        pos = 0
        n = len(blob)
        while pos < n:
            tag, pos = decode_varint64(blob, pos)
            if tag == _TAG_LOG_NUMBER:
                edit.log_number, pos = decode_varint64(blob, pos)
            elif tag == _TAG_NEXT_FILE:
                edit.next_file_number, pos = decode_varint64(blob, pos)
            elif tag == _TAG_LAST_SEQUENCE:
                edit.last_sequence, pos = decode_varint64(blob, pos)
            elif tag == _TAG_REPL_EPOCH:
                edit.repl_epoch, pos = decode_varint64(blob, pos)
            elif tag in (_TAG_NEW_FILE, _TAG_NEW_FILE_RUN):
                level, pos = decode_varint64(blob, pos)
                number, pos = decode_varint64(blob, pos)
                run = 0
                if tag == _TAG_NEW_FILE_RUN:
                    run, pos = decode_varint64(blob, pos)
                size, pos = decode_varint64(blob, pos)
                slen, pos = decode_varint64(blob, pos)
                smallest = blob[pos : pos + slen]
                pos += slen
                llen, pos = decode_varint64(blob, pos)
                largest = blob[pos : pos + llen]
                pos += llen
                if len(smallest) != slen or len(largest) != llen:
                    raise ValueError("truncated file keys in version edit")
                edit.new_files.append(
                    (level, FileMetaData(number, size, smallest, largest, run=run))
                )
            elif tag == _TAG_POLICY:
                plen, pos = decode_varint64(blob, pos)
                spec = blob[pos : pos + plen]
                pos += plen
                if len(spec) != plen:
                    raise ValueError("truncated policy spec in version edit")
                edit.policy_spec = spec.decode("utf-8")
            elif tag == _TAG_DELETED_FILE:
                level, pos = decode_varint64(blob, pos)
                number, pos = decode_varint64(blob, pos)
                edit.deleted_files.append((level, number))
            else:
                raise ValueError(f"unknown version-edit tag {tag}")
        return edit

    def apply(self, version: Version) -> None:
        """Mutate ``version`` per this edit (deletes first, then adds)."""
        for level, number in self.deleted_files:
            version.remove_file(level, number)
        for level, meta in self.new_files:
            version.add_file(level, meta)
        if self.repl_epoch is not None:
            version.repl_epoch = self.repl_epoch
        if self.policy_spec is not None:
            version.policy_spec = self.policy_spec


class ManifestWriter:
    """Appends version edits to the live MANIFEST."""

    def __init__(self, storage: Storage, name: str, create: bool = True) -> None:
        self.storage = storage
        self.name = name
        if create:
            self._log = LogWriter(storage.create(name))
        else:  # pragma: no cover - reserved for reopen-append support
            raise NotImplementedError("manifest reopen not supported; create new")

    def append(self, edit: VersionEdit, sync: bool = False) -> None:
        self._log.add_record(edit.encode())
        if sync:
            self._log.sync()

    def close(self) -> None:
        self._log.close()


def set_current(storage: Storage, manifest_name: str) -> None:
    """Atomically point CURRENT at ``manifest_name``.

    Crash-atomic: the tmp file is synced *before* the rename, so a
    power cut leaves either the old CURRENT (plus an orphan tmp the
    recovery pass garbage-collects) or the fully-written new one —
    never a dangling or empty CURRENT.
    """
    tmp = CURRENT_NAME + ".tmp"
    with storage.create(tmp) as f:
        f.append(manifest_name.encode() + b"\n")
        f.sync()
    fire_crash_point(storage, "current.tmp_written")
    storage.rename(tmp, CURRENT_NAME)
    fire_crash_point(storage, "current.renamed")


def read_current(storage: Storage) -> Optional[str]:
    """The live manifest's name, or None for a fresh directory."""
    if not storage.exists(CURRENT_NAME):
        return None
    data = storage.open(CURRENT_NAME).read_all()
    return data.decode().strip() or None


def recover_version(
    storage: Storage, options: Options
) -> tuple[Version, int, int, Optional[int], Optional[str]]:
    """Replay the MANIFEST.

    Returns ``(version, next_file_number, last_sequence, log_number,
    manifest_name)``; for a fresh directory the version is empty and
    the manifest name is None.
    """
    version = Version(options)
    next_file = 1
    last_seq = 0
    log_number: Optional[int] = None
    manifest_name = read_current(storage)
    if manifest_name is None:
        return version, next_file, last_seq, log_number, None
    reader = LogReader(storage.open(manifest_name))
    for record in reader:
        edit = VersionEdit.decode(record)
        edit.apply(version)
        if edit.next_file_number is not None:
            next_file = edit.next_file_number
        if edit.last_sequence is not None:
            last_seq = edit.last_sequence
        if edit.log_number is not None:
            log_number = edit.log_number
    return version, next_file, last_seq, log_number, manifest_name
