"""Workload streams: insert-only loads and value synthesis.

Values are synthesised with a tunable compressibility so the lz77
codec behaves like snappy does on real key-value payloads (structured,
partially repetitive).  The paper's default entry is a 16 B key +
100 B value.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from .keys import KEY_WIDTH, sequential_keys, uniform_keys, zipfian_keys

__all__ = ["ValueGenerator", "InsertWorkload", "make_workload"]

DEFAULT_VALUE_BYTES = 100  # paper §IV-A


class ValueGenerator:
    """Deterministic values of fixed size and tunable compressibility.

    ``redundancy`` in [0, 1): fraction of each value that is a
    repeated template (compressible); the rest is pseudo-random.
    """

    def __init__(
        self, value_bytes: int = DEFAULT_VALUE_BYTES,
        redundancy: float = 0.5, seed: int = 0,
    ) -> None:
        if value_bytes < 0:
            raise ValueError("value_bytes must be >= 0")
        if not 0 <= redundancy < 1:
            raise ValueError("redundancy must be in [0, 1)")
        self.value_bytes = value_bytes
        self.redundancy = redundancy
        self.seed = seed
        self._template = b"field-value-template-0123456789-" * (
            value_bytes // 16 + 2
        )

    def value_for(self, index: int) -> bytes:
        n_template = int(self.value_bytes * self.redundancy)
        n_noise = self.value_bytes - n_template
        # Per-value noise stream: unique across values so the
        # incompressible fraction really is incompressible.
        noise = random.Random((self.seed << 32) ^ index).randbytes(n_noise)
        return (self._template[:n_template] + noise)[: self.value_bytes]


@dataclass(frozen=True)
class InsertWorkload:
    """A deterministic stream of (key, value) inserts."""

    n: int
    distribution: str = "uniform"  # sequential | uniform | zipfian
    key_bytes: int = KEY_WIDTH
    value_bytes: int = DEFAULT_VALUE_BYTES
    redundancy: float = 0.5
    seed: int = 0
    keyspace: int | None = None

    @property
    def entry_bytes(self) -> int:
        return self.key_bytes + self.value_bytes

    @property
    def total_bytes(self) -> int:
        return self.n * self.entry_bytes

    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        values = ValueGenerator(self.value_bytes, self.redundancy, self.seed)
        if self.distribution == "sequential":
            keys = sequential_keys(self.n, self.key_bytes)
        elif self.distribution == "uniform":
            keys = uniform_keys(self.n, self.keyspace, self.seed, self.key_bytes)
        elif self.distribution == "zipfian":
            keys = zipfian_keys(
                self.n, self.keyspace, seed=self.seed, width=self.key_bytes
            )
        else:
            raise ValueError(f"unknown distribution {self.distribution!r}")
        for i, key in enumerate(keys):
            yield key, values.value_for(i)

    def apply_to(self, db) -> int:
        """Insert the whole stream into a DB; returns ops performed."""
        n = 0
        for key, value in self:
            db.put(key, value)
            n += 1
        return n


def make_workload(
    n: int, distribution: str = "uniform", **kw
) -> InsertWorkload:
    """Convenience constructor mirroring the paper's defaults."""
    return InsertWorkload(n=n, distribution=distribution, **kw)
