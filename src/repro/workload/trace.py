"""Operation-trace recording and replay.

Production storage evaluations replay captured traces; this module
provides the closest offline equivalent: a line-oriented, durable text
format for operation streams, a recorder that tees a workload into a
trace while applying it, and a replayer.  Any generator in this package
(insert streams, YCSB mixes) can be captured once and replayed
bit-identically against different engine configurations — the right
way to A/B SCP vs PCP on *identical* inputs.

Format (one op per line, latin-1-safe hex for binary payloads)::

    put <hex key> <hex value | '-' for empty>
    del <hex key>
    get <hex key>

Lines starting with ``#`` are comments; blank lines are ignored.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, TextIO

__all__ = ["TraceWriter", "read_trace", "record_workload", "replay_trace",
           "TraceError"]


class TraceError(ValueError):
    """Raised on malformed trace lines."""


class TraceWriter:
    """Append operations to a trace stream."""

    def __init__(self, out: TextIO) -> None:
        self._out = out
        self.ops = 0

    def put(self, key: bytes, value: bytes) -> None:
        payload = value.hex() if value else "-"
        self._out.write(f"put {key.hex()} {payload}\n")
        self.ops += 1

    def delete(self, key: bytes) -> None:
        self._out.write(f"del {key.hex()}\n")
        self.ops += 1

    def get(self, key: bytes) -> None:
        self._out.write(f"get {key.hex()}\n")
        self.ops += 1

    def comment(self, text: str) -> None:
        self._out.write(f"# {text}\n")


def read_trace(lines: Iterable[str]) -> Iterator[tuple[str, bytes, bytes]]:
    """Parse a trace into ``(op, key, value)`` triples."""
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        op = parts[0]
        try:
            if op == "put":
                if len(parts) != 3:
                    raise TraceError(f"line {lineno}: put needs key and value")
                value = b"" if parts[2] == "-" else bytes.fromhex(parts[2])
                yield op, bytes.fromhex(parts[1]), value
            elif op in ("del", "get"):
                if len(parts) != 2:
                    raise TraceError(f"line {lineno}: {op} needs exactly a key")
                yield op, bytes.fromhex(parts[1]), b""
            else:
                raise TraceError(f"line {lineno}: unknown op {op!r}")
        except ValueError as exc:
            if isinstance(exc, TraceError):
                raise
            raise TraceError(f"line {lineno}: bad hex payload") from None


def record_workload(workload, db, trace: TraceWriter) -> int:
    """Apply an insert workload to ``db`` while capturing it."""
    n = 0
    for key, value in workload:
        trace.put(key, value)
        db.put(key, value)
        n += 1
    return n


def replay_trace(
    lines: Iterable[str], db, limit: Optional[int] = None
) -> dict[str, int]:
    """Apply a parsed trace to a DB; returns op counts."""
    counts: dict[str, int] = {"put": 0, "del": 0, "get": 0}
    for i, (op, key, value) in enumerate(read_trace(lines)):
        if limit is not None and i >= limit:
            break
        if op == "put":
            db.put(key, value)
        elif op == "del":
            db.delete(key)
        else:
            db.get(key)
        counts[op] += 1
    return counts
