"""YCSB-style operation mixes.

The paper evaluates insert-only workloads, but a storage engine release
needs the standard read/write mixes for its examples and extension
experiments.  Core YCSB workloads, simplified:

========  =======================  =================
workload  mix                      distribution
========  =======================  =================
A         50 % read / 50 % update  zipfian
B         95 % read / 5 % update   zipfian
C         100 % read               zipfian
D         95 % read / 5 % insert   latest
F         50 % read / 50 % RMW     zipfian
load      100 % insert             sequential
========  =======================  =================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from .generators import ValueGenerator
from .keys import ZipfGenerator, format_key

__all__ = ["Op", "YCSBWorkload", "YCSB_MIXES"]

READ = "read"
UPDATE = "update"
INSERT = "insert"
RMW = "rmw"

YCSB_MIXES: dict[str, dict[str, float]] = {
    "a": {READ: 0.5, UPDATE: 0.5},
    "b": {READ: 0.95, UPDATE: 0.05},
    "c": {READ: 1.0},
    "d": {READ: 0.95, INSERT: 0.05},
    "f": {READ: 0.5, RMW: 0.5},
    # "w" is not core YCSB: a write-heavy mix (95 % update) used by the
    # compaction-policy sweep, where write amplification dominates.
    "w": {UPDATE: 0.95, READ: 0.05},
}


@dataclass(frozen=True)
class Op:
    """One operation of a YCSB stream."""

    kind: str
    key: bytes
    value: bytes = b""


class YCSBWorkload:
    """Generate a YCSB-like operation stream over a loaded keyspace."""

    def __init__(
        self,
        mix: str,
        n_ops: int,
        record_count: int,
        value_bytes: int = 100,
        seed: int = 0,
        distribution: str = "zipfian",
    ) -> None:
        if mix not in YCSB_MIXES:
            raise ValueError(f"unknown mix {mix!r}; one of {sorted(YCSB_MIXES)}")
        if record_count < 1:
            raise ValueError("record_count must be >= 1")
        if distribution not in ("zipfian", "uniform"):
            raise ValueError(
                f"unknown distribution {distribution!r}; "
                "one of ['uniform', 'zipfian']"
            )
        self.mix = mix
        self.n_ops = n_ops
        self.record_count = record_count
        self.value_bytes = value_bytes
        self.seed = seed
        self.distribution = distribution

    def load_phase(self) -> Iterator[tuple[bytes, bytes]]:
        """Sequential bulk-load of record_count entries."""
        values = ValueGenerator(self.value_bytes, seed=self.seed)
        for i in range(self.record_count):
            yield format_key(i), values.value_for(i)

    def __iter__(self) -> Iterator[Op]:
        rng = random.Random(self.seed + 1)
        if self.distribution == "uniform":
            key_rng = random.Random(self.seed + 2)
            next_key = lambda: key_rng.randrange(self.record_count)  # noqa: E731
        else:
            zipf = ZipfGenerator(self.record_count, seed=self.seed + 2)
            next_key = zipf.next
        values = ValueGenerator(self.value_bytes, seed=self.seed + 3)
        weights = YCSB_MIXES[self.mix]
        kinds = list(weights)
        cum = []
        acc = 0.0
        for kind in kinds:
            acc += weights[kind]
            cum.append(acc)
        next_insert = self.record_count
        for i in range(self.n_ops):
            u = rng.random()
            kind = kinds[-1]
            for k, threshold in zip(kinds, cum):
                if u <= threshold:
                    kind = k
                    break
            if kind == INSERT:
                key = format_key(next_insert)
                next_insert += 1
                yield Op(INSERT, key, values.value_for(i))
            else:
                key = format_key(next_key() % max(1, next_insert))
                if kind == READ:
                    yield Op(READ, key)
                elif kind == UPDATE:
                    yield Op(UPDATE, key, values.value_for(i))
                else:  # RMW: read then write back
                    yield Op(RMW, key, values.value_for(i))

    def split(self, n_clients: int) -> list["YCSBWorkload"]:
        """Shard this workload across ``n_clients`` closed-loop clients.

        Each shard draws ops from the same mix over the same loaded
        keyspace but with a distinct seed, and op counts sum to
        ``n_ops`` (the first shards absorb the remainder).  Used by the
        network load generator (:mod:`repro.bench.netbench`) to give
        every connection its own independent stream.
        """
        if n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        base, extra = divmod(self.n_ops, n_clients)
        shards = []
        for i in range(n_clients):
            shards.append(
                YCSBWorkload(
                    self.mix,
                    base + (1 if i < extra else 0),
                    self.record_count,
                    value_bytes=self.value_bytes,
                    seed=self.seed + 1000 * (i + 1),
                    distribution=self.distribution,
                )
            )
        return shards

    def apply_to(self, db) -> dict[str, int]:
        """Run the stream against any get/put-shaped KV; returns op
        counts.  ``db`` may be an embedded :class:`repro.db.DB` or a
        network client (:class:`repro.server.SyncClient`)."""
        counts: dict[str, int] = {}
        for op in self:
            counts[op.kind] = counts.get(op.kind, 0) + 1
            if op.kind == READ:
                db.get(op.key)
            elif op.kind in (UPDATE, INSERT):
                db.put(op.key, op.value)
            else:  # RMW
                db.get(op.key)
                db.put(op.key, op.value)
        return counts
