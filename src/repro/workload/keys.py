"""Key-sequence generators.

The paper's evaluation uses insert-only workloads with 16 B keys; the
order of arrival controls how much *real* merge work compactions do
(strictly sequential inserts produce non-overlapping runs that LevelDB
trivially moves).  Distributions:

* ``sequential`` — monotonically increasing (bulk-load pattern).
* ``uniform`` — uniformly random over the keyspace.
* ``zipfian`` — YCSB-style scrambled Zipf: a small hot set receives
  most writes, spread over the keyspace by hashing.

All generators are deterministic for a given seed.
"""

from __future__ import annotations

import random
from typing import Iterator

__all__ = [
    "format_key",
    "sequential_keys",
    "uniform_keys",
    "zipfian_keys",
    "KEY_WIDTH",
]

KEY_WIDTH = 16  # paper §IV-A: 16-byte keys


def format_key(index: int, width: int = KEY_WIDTH) -> bytes:
    """Fixed-width decimal key (zero padded, sorts numerically)."""
    key = b"%0*d" % (width, index)
    if len(key) > width:
        raise ValueError(f"index {index} does not fit in {width} bytes")
    return key


def sequential_keys(n: int, width: int = KEY_WIDTH) -> Iterator[bytes]:
    """0, 1, 2, ... n-1."""
    for i in range(n):
        yield format_key(i, width)


def uniform_keys(
    n: int, keyspace: int | None = None, seed: int = 0, width: int = KEY_WIDTH
) -> Iterator[bytes]:
    """n draws, uniform over ``keyspace`` distinct keys (default n*4)."""
    rng = random.Random(seed)
    space = keyspace if keyspace is not None else max(1, n * 4)
    for _ in range(n):
        yield format_key(rng.randrange(space), width)


class ZipfGenerator:
    """Approximate Zipf(theta) over [0, items) via the YCSB algorithm
    (Gray et al.'s rejection-free inverse transform)."""

    def __init__(self, items: int, theta: float = 0.99, seed: int = 0) -> None:
        if items < 1:
            raise ValueError("items must be >= 1")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.items = items
        self.theta = theta
        self._rng = random.Random(seed)
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(items, theta)
        self._zeta2 = self._zeta(2, theta)
        self._eta = (1 - (2.0 / items) ** (1 - theta)) / (
            1 - self._zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(
            self.items * (self._eta * u - self._eta + 1) ** self._alpha
        )


def zipfian_keys(
    n: int,
    keyspace: int | None = None,
    theta: float = 0.99,
    seed: int = 0,
    width: int = KEY_WIDTH,
) -> Iterator[bytes]:
    """n Zipf-distributed draws, scrambled across the keyspace.

    Ranks are hashed (as YCSB's ScrambledZipfian does) so the hot keys
    are not clustered in one key range.
    """
    space = keyspace if keyspace is not None else max(1, n * 4)
    gen = ZipfGenerator(space, theta, seed)
    for _ in range(n):
        rank = gen.next()
        scrambled = (rank * 0x9E3779B97F4A7C15 + 0x123456789) % space
        yield format_key(scrambled, width)
