"""Workload generation: key distributions, insert streams, YCSB mixes."""

from .generators import DEFAULT_VALUE_BYTES, InsertWorkload, ValueGenerator, make_workload
from .keys import (
    KEY_WIDTH,
    ZipfGenerator,
    format_key,
    sequential_keys,
    uniform_keys,
    zipfian_keys,
)
from .trace import TraceError, TraceWriter, read_trace, record_workload, replay_trace
from .ycsb import YCSB_MIXES, Op, YCSBWorkload

__all__ = [
    "DEFAULT_VALUE_BYTES",
    "InsertWorkload",
    "KEY_WIDTH",
    "Op",
    "ValueGenerator",
    "YCSBWorkload",
    "YCSB_MIXES",
    "TraceError",
    "TraceWriter",
    "ZipfGenerator",
    "format_key",
    "make_workload",
    "sequential_keys",
    "uniform_keys",
    "read_trace",
    "record_workload",
    "replay_trace",
    "zipfian_keys",
]
