"""Shared-resource primitives for the simulation kernel.

:class:`Resource` models a server pool with fixed capacity and a FIFO
wait queue — a disk, a core, or a RAID stripe set.  Requests are events
that fire when a slot is granted; users must release exactly once.  The
``request()/release()`` pair composes with processes::

    def job(sim, disk):
        req = disk.request()
        yield req
        try:
            yield sim.timeout(io_time)
        finally:
            disk.release(req)

A context-manager style helper (:meth:`Resource.acquire`) wraps that
pattern for the common "hold for a fixed service time" case.

Utilisation accounting is built in: every (start, end, holder) interval
is recorded so experiments can report device/CPU busy fractions, the
quantity Figures 3 and 5 of the paper visualise.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .core import Event, Simulator, SimulationError

__all__ = ["Request", "Resource", "Utilization"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "tag", "_granted_at")

    def __init__(self, resource: "Resource", tag: str = "") -> None:
        super().__init__(resource.sim, name=f"request({resource.name})")
        self.resource = resource
        self.tag = tag
        self._granted_at: Optional[float] = None


class Utilization:
    """Busy-interval ledger for one resource."""

    __slots__ = ("intervals", "capacity")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.intervals: list[tuple[float, float, str]] = []

    def record(self, start: float, end: float, tag: str) -> None:
        if end > start:
            self.intervals.append((start, end, tag))

    def busy_time(self) -> float:
        """Total slot-time held (may exceed span when capacity > 1)."""
        return sum(end - start for start, end, _ in self.intervals)

    def utilization(self, span: float) -> float:
        """Busy fraction of the resource over ``span`` time units."""
        if span <= 0:
            return 0.0
        return self.busy_time() / (span * self.capacity)


class Resource:
    """Fixed-capacity FIFO resource."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: deque[Request] = deque()
        self._held: set[Request] = set()
        self.stats = Utilization(capacity)

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self, tag: str = "") -> Request:
        """Claim a slot; the returned event fires when granted."""
        req = Request(self, tag)
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._waiting.append(req)
        return req

    def _grant(self, req: Request) -> None:
        self._in_use += 1
        self._held.add(req)
        req._granted_at = self.sim.now
        req.succeed(req)

    def release(self, req: Request) -> None:
        """Return a previously granted slot."""
        if req not in self._held:
            raise SimulationError(
                f"release of {req!r} not held on {self.name!r}"
            )
        self._held.remove(req)
        self.stats.record(req._granted_at, self.sim.now, req.tag)
        self._in_use -= 1
        if self._waiting:
            self._grant(self._waiting.popleft())

    def acquire(self, service_time: float, tag: str = ""):
        """Process fragment: wait for a slot, hold it ``service_time``.

        Usage: ``yield from resource.acquire(t, tag)``.
        """
        if service_time < 0:
            raise ValueError(f"negative service time: {service_time}")
        req = self.request(tag)
        yield req
        try:
            yield self.sim.timeout(service_time)
        finally:
            self.release(req)
