"""A minimal discrete-event simulation kernel.

This is the virtual-time substrate the compaction executors run on when
quantitative, deterministic timing is wanted (CPython's GIL prevents a
pure-Python threaded build from actually overlapping compute with I/O,
so wall-clock measurements cannot reproduce the paper's figures — see
DESIGN.md).  The kernel is SimPy-flavoured but deliberately small:

* :class:`Event` — one-shot occurrence with callbacks and a value.
* :class:`Process` — a generator that yields events; it is resumed with
  the event's value when the event fires, and is itself an event that
  fires when the generator returns.
* :class:`Simulator` — the event calendar and virtual clock.

Everything is deterministic: ties in time are broken by schedule order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = ["AllOf", "AnyOf", "Event", "Process", "SimulationError", "Simulator", "Timeout"]


class SimulationError(RuntimeError):
    """Raised for illegal kernel operations (e.g. double-trigger)."""


_PENDING = object()


class Event:
    """A one-shot event on a :class:`Simulator`.

    Processes wait on events by ``yield``-ing them.  An event succeeds
    with a value (:meth:`succeed`) or fails with an exception
    (:meth:`fail`); either transition is final.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        self.name = name

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid after triggering)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully at the current time."""
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception at the current time."""
        if not isinstance(exc, BaseException):
            raise TypeError("fail() needs an exception instance")
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = False
        self._value = exc
        self.sim._schedule(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        label = f" {self.name}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        super().__init__(sim, name=f"timeout({delay})")
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class AllOf(Event):
    """Fires when every event in ``events`` has succeeded.

    Its value is the list of the constituent events' values, in input
    order.  If any constituent fails, this event fails with the same
    exception (first failure wins).
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, name="all_of")
        self._events = list(events)
        self._remaining = 0
        for ev in self._events:
            if ev.processed:
                continue
            self._remaining += 1
            ev.callbacks.append(self._on_child)
        if self._remaining == 0 and not self.triggered:
            self.succeed([ev.value for ev in self._events])

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self._events])


class AnyOf(Event):
    """Fires as soon as the first of ``events`` succeeds.

    Its value is ``(index, value)`` of the winner.  A constituent
    failure fails this event too (fail-fast).  Later completions are
    ignored (this event is one-shot).
    """

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, name="any_of")
        self._events = list(events)
        if not self._events:
            raise ValueError("any_of needs at least one event")
        done = False
        for index, ev in enumerate(self._events):
            if ev.processed:
                if not done:
                    if ev.ok:
                        self.succeed((index, ev.value))
                    else:
                        self.fail(ev.value)
                    done = True
                continue
            ev.callbacks.append(self._make_callback(index))

    def _make_callback(self, index: int):
        def _on_child(ev: Event) -> None:
            if self.triggered:
                return
            if ev.ok:
                self.succeed((index, ev.value))
            else:
                self.fail(ev.value)

        return _on_child


class Process(Event):
    """Wrap a generator as a process; also an event (fires on return)."""

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise TypeError(f"process target must be a generator, got {gen!r}")
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        # Bootstrap: resume the generator at the current simulation time.
        boot = Event(sim, name=f"init:{self.name}")
        boot._ok = True
        boot._value = None
        boot.callbacks.append(self._resume)
        sim._schedule(boot)

    def _resume(self, trigger: Event) -> None:
        sim = self.sim
        event = trigger
        while True:
            try:
                if event._ok:
                    target = self._gen.send(event._value)
                else:
                    target = self._gen.throw(event._value)
            except StopIteration as stop:
                if not self.triggered:
                    self.succeed(stop.value)
                return
            except BaseException as exc:
                if not self.triggered:
                    self.fail(exc)
                    return
                raise
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded {target!r}, not an Event"
                )
            if target.sim is not sim:
                raise SimulationError("yielded event belongs to another simulator")
            if target.processed:
                # Already fired and processed: resume immediately.
                event = target
                continue
            target.callbacks.append(self._resume)
            return


class Simulator:
    """Virtual clock plus event calendar.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(5.0)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 5.0 and proc.value == "done"
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    def event(self, name: str = "") -> Event:
        """Create an untriggered event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` virtual time units."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process; returns its Process event."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once every input event has succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires with the first completed input event."""
        return AnyOf(self, events)

    def step(self) -> None:
        """Process the single next event in the calendar."""
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks:
            cb(event)
        if not event._ok and not callbacks:
            # A failed event nobody waited on: surface the error.
            raise event._value

    def run(self, until: Optional[float] = None) -> float:
        """Run until the calendar drains or ``until`` time is reached.

        Returns the final virtual time.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                return self._now
            self.step()
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when drained."""
        return self._queue[0][0] if self._queue else float("inf")
