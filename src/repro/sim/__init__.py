"""Minimal discrete-event simulation kernel (virtual-time substrate)."""

from .core import AllOf, AnyOf, Event, Process, SimulationError, Simulator, Timeout
from .resources import Request, Resource, Utilization
from .store import Store, StoreClosed

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Process",
    "Request",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "StoreClosed",
    "Timeout",
    "Utilization",
]
