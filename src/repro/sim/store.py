"""Bounded FIFO channel between simulated processes.

:class:`Store` is the inter-stage queue of the pipelined compaction
procedure: the *read* stage ``put``s decoded blocks, the *compute*
stage ``get``s them, and the bound models the finite buffering between
pipeline stages (which produces the fill/drain overhead the paper
measures as the ~10 % gap between ideal and practical speedup).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from .core import Event, Simulator

__all__ = ["Store", "StoreClosed"]


class StoreClosed(RuntimeError):
    """Raised at getters when the store is closed and drained."""


class Store:
    """Bounded FIFO with blocking ``put``/``get`` events.

    ``capacity=None`` means unbounded.  :meth:`close` signals
    end-of-stream: pending and future ``get``s fail with
    :class:`StoreClosed` once the buffer drains, which lets pipeline
    consumers terminate cleanly.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        name: str = "store",
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()
        self._closed = False
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: Any) -> Event:
        """Insert ``item``; the event fires when space was available."""
        if self._closed:
            raise StoreClosed(f"put on closed store {self.name!r}")
        ev = Event(self.sim, name=f"put({self.name})")
        if self._getters:
            # Hand the item straight to a waiting consumer.
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            self.max_occupancy = max(self.max_occupancy, len(self._items))
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Remove the oldest item; fires with the item as value.

        Fails with :class:`StoreClosed` when the store is closed and
        empty.
        """
        ev = Event(self.sim, name=f"get({self.name})")
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            ev.succeed(item)
        elif self._closed:
            ev.fail(StoreClosed(f"store {self.name!r} closed"))
        else:
            self._getters.append(ev)
        return ev

    def _admit_putter(self) -> None:
        if self._putters:
            pev, pitem = self._putters.popleft()
            self._items.append(pitem)
            self.max_occupancy = max(self.max_occupancy, len(self._items))
            pev.succeed(None)

    def close(self) -> None:
        """Mark end-of-stream; wake blocked getters with StoreClosed."""
        if self._closed:
            return
        self._closed = True
        # Items still buffered will be drained by future get()s; only
        # getters that can never be satisfied fail now.
        if not self._items:
            while self._getters:
                self._getters.popleft().fail(
                    StoreClosed(f"store {self.name!r} closed")
                )
