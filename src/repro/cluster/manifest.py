"""The ``CLUSTER`` manifest: persisted shard map of a sharded store.

One small JSON file in the cluster's *root* storage records the layout
a :class:`~repro.cluster.sharded.ShardedDB` was created with: shard
count, shard directory names, and the partitioner spec (hash seed or
range splits).  Reopen re-validates all of it — opening four shard
directories with a partitioner that was seeded differently (or with a
different shard count) would misroute every key without any storage-
level corruption to catch it, so layout drift must fail loudly.

Commit protocol mirrors ``CURRENT`` (see ``docs/RECOVERY.md``): the
payload is written to ``CLUSTER.tmp``, synced, then atomically renamed
to ``CLUSTER``.  A masked CRC-32C trailer inside the JSON catches torn
or hand-edited files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..codec.checksum import crc32c, mask_crc, unmask_crc
from ..devices.vfs import Storage, StorageError
from .partitioner import Partitioner, partitioner_from_spec

__all__ = [
    "CLUSTER_FILE",
    "ClusterConfigError",
    "ClusterManifest",
    "shard_dir_name",
]

CLUSTER_FILE = "CLUSTER"
_FORMAT_VERSION = 1


def shard_dir_name(index: int) -> str:
    """Canonical shard subdirectory name (``shard-00``, ``shard-01``…)."""
    return f"shard-{index:02d}"


class ClusterConfigError(RuntimeError):
    """Shard layout mismatch or damaged/missing CLUSTER manifest."""


@dataclass(frozen=True)
class ClusterManifest:
    """The persisted cluster layout."""

    n_shards: int
    partitioner_spec: dict
    format_version: int = _FORMAT_VERSION

    # -------------------------------------------------------- accessors
    def partitioner(self) -> Partitioner:
        return partitioner_from_spec(self.partitioner_spec)

    def shard_names(self) -> list[str]:
        return [shard_dir_name(i) for i in range(self.n_shards)]

    # ------------------------------------------------------ persistence
    def _payload(self) -> dict:
        return {
            "format_version": self.format_version,
            "n_shards": self.n_shards,
            "partitioner": self.partitioner_spec,
            "shards": self.shard_names(),
        }

    def save(self, root: Storage) -> None:
        """Atomically (re)write the manifest into ``root``."""
        body = json.dumps(self._payload(), sort_keys=True).encode()
        blob = json.dumps(
            {"crc": mask_crc(crc32c(body)), "data": body.decode()}
        ).encode()
        tmp = CLUSTER_FILE + ".tmp"
        with root.create(tmp) as f:
            f.append(blob)
            f.sync()
        root.rename(tmp, CLUSTER_FILE)

    @classmethod
    def load(cls, root: Storage) -> "ClusterManifest":
        if not root.exists(CLUSTER_FILE):
            raise ClusterConfigError(
                f"no {CLUSTER_FILE} manifest (not a sharded store?)"
            )
        with root.open(CLUSTER_FILE) as f:
            blob = f.read_all()
        try:
            wrapper = json.loads(blob)
            body = wrapper["data"].encode()
            if crc32c(body) != unmask_crc(wrapper["crc"]):
                raise ClusterConfigError(f"{CLUSTER_FILE} checksum mismatch")
            payload = json.loads(body)
        except (ValueError, KeyError, TypeError) as exc:
            raise ClusterConfigError(
                f"damaged {CLUSTER_FILE} manifest: {exc}"
            ) from None
        version = payload.get("format_version")
        if version != _FORMAT_VERSION:
            raise ClusterConfigError(
                f"unsupported {CLUSTER_FILE} format_version {version!r}"
            )
        n_shards = payload["n_shards"]
        if not isinstance(n_shards, int) or n_shards < 1:
            raise ClusterConfigError(f"bad n_shards {n_shards!r}")
        return cls(n_shards=n_shards, partitioner_spec=payload["partitioner"])

    @classmethod
    def exists(cls, root: Storage) -> bool:
        try:
            return root.exists(CLUSTER_FILE)
        except StorageError:  # pragma: no cover - defensive
            return False

    # ------------------------------------------------------- validation
    def validate_against(
        self, n_shards: int, partitioner: Partitioner
    ) -> None:
        """Raise unless the caller's layout matches the persisted one."""
        if n_shards != self.n_shards:
            raise ClusterConfigError(
                f"cluster was created with {self.n_shards} shards; "
                f"reopened with {n_shards}"
            )
        if partitioner.spec() != self.partitioner_spec:
            raise ClusterConfigError(
                f"partitioner mismatch: manifest {self.partitioner_spec}, "
                f"caller {partitioner.spec()}"
            )
