"""Key partitioners: which shard owns a user key.

A :class:`Partitioner` is a pure, deterministic function ``user key →
shard index`` plus a JSON-serialisable spec.  The spec is persisted in
the ``CLUSTER`` manifest (:mod:`repro.cluster.manifest`) and
re-validated on reopen: a cluster reopened with a different shard
count or partitioning function would silently misroute every key, so
a mismatch is a hard :class:`~repro.cluster.manifest.ClusterConfigError`.

Two concrete partitioners:

* :class:`HashPartitioner` — seeded CRC-32C of the key, modulo the
  shard count.  Uniform spread for any key distribution; the default.
* :class:`RangePartitioner` — ``n_shards - 1`` sorted split keys;
  shard *i* owns ``[splits[i-1], splits[i])``.  Keeps key adjacency
  (a cross-shard scan touches few shards for narrow ranges) and makes
  shard targeting deterministic for tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right

from ..codec.checksum import crc32c

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "partitioner_from_spec",
]


class Partitioner(ABC):
    """Deterministic mapping of user keys onto ``n_shards`` buckets."""

    n_shards: int

    @abstractmethod
    def shard_of(self, key: bytes) -> int:
        """Shard index in ``[0, n_shards)`` owning ``key``."""

    @abstractmethod
    def spec(self) -> dict:
        """JSON-serialisable description (see :func:`partitioner_from_spec`)."""

    def group_keys(self, keys) -> dict[int, list[int]]:
        """Map shard index → positions in ``keys`` routed to it.

        Positions (not keys) so callers can reassemble order-preserving
        results from per-shard batches (``ShardedDB.multi_get``).
        """
        groups: dict[int, list[int]] = {}
        for position, key in enumerate(keys):
            groups.setdefault(self.shard_of(key), []).append(position)
        return groups

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Partitioner) and self.spec() == other.spec()

    def __hash__(self) -> int:  # specs are small plain dicts
        return hash(repr(self.spec()))


class HashPartitioner(Partitioner):
    """Seeded CRC-32C hash partitioning (uniform, order-destroying)."""

    def __init__(self, n_shards: int, seed: int = 0) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if not 0 <= seed < 2**32:
            raise ValueError(f"seed must fit in 32 bits, got {seed}")
        self.n_shards = n_shards
        self.seed = seed

    def shard_of(self, key: bytes) -> int:
        # Continue the CRC from the seed: stable across processes and
        # runs (unlike hash()), already in the codebase, and cheap.
        return crc32c(key, self.seed) % self.n_shards

    def spec(self) -> dict:
        return {"kind": "hash", "n_shards": self.n_shards, "seed": self.seed}

    def __repr__(self) -> str:
        return f"HashPartitioner(n_shards={self.n_shards}, seed={self.seed})"


class RangePartitioner(Partitioner):
    """Split-key partitioning (order-preserving).

    ``splits`` are the ``n_shards - 1`` ascending boundary keys; shard
    0 owns everything below ``splits[0]``, the last shard everything at
    or above ``splits[-1]``.
    """

    def __init__(self, splits: list[bytes]) -> None:
        if not splits:
            raise ValueError("RangePartitioner needs at least one split key")
        if sorted(splits) != list(splits) or len(set(splits)) != len(splits):
            raise ValueError("split keys must be strictly ascending")
        self.splits = [bytes(s) for s in splits]
        self.n_shards = len(splits) + 1

    def shard_of(self, key: bytes) -> int:
        return bisect_right(self.splits, key)

    def spec(self) -> dict:
        return {"kind": "range", "splits": [s.hex() for s in self.splits]}

    def __repr__(self) -> str:
        return f"RangePartitioner(splits={self.splits!r})"


def partitioner_from_spec(spec: dict) -> Partitioner:
    """Rebuild a partitioner from its persisted spec dict."""
    kind = spec.get("kind")
    if kind == "hash":
        return HashPartitioner(int(spec["n_shards"]), int(spec.get("seed", 0)))
    if kind == "range":
        return RangePartitioner([bytes.fromhex(s) for s in spec["splits"]])
    raise ValueError(f"unknown partitioner kind {kind!r}")
