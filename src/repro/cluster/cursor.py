"""Cross-shard read algebra: the k-way merge cursor.

Shards partition the user keyspace, so each per-shard
:class:`repro.db.cursor.Cursor` already yields live, visibility-
filtered, tombstone-masked pairs in key order **within its shard**,
and no user key can appear in two shards.  A globally ordered scan is
therefore a pure k-way merge — ``heapq.merge`` over the per-shard
streams, forward or reverse — with no cross-shard dedup or shadowing
logic needed.  The merge is lazy: a ``limit``-bounded scan pulls only
``limit`` + O(k) entries off the shards, not whole shards.

Snapshot consistency: the per-shard cursors pin their own sequence
numbers at creation.  Created under a
:class:`repro.cluster.sharded.ClusterSnapshot` (one pinned snapshot
per shard), the merged view is stable against concurrent writers on
*every* shard for the cursor's lifetime.
"""

from __future__ import annotations

import heapq
from operator import itemgetter
from typing import Iterator, Optional

from ..db.cursor import Cursor

__all__ = ["ClusterCursor"]

_FIRST = itemgetter(0)


class ClusterCursor:
    """Ordered iteration over the union of per-shard cursors."""

    def __init__(self, cursors: list[Cursor]) -> None:
        if not cursors:
            raise ValueError("ClusterCursor needs at least one shard cursor")
        self._cursors = cursors

    @property
    def n_shards(self) -> int:
        return len(self._cursors)

    def items(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """Live ``(user_key, value)`` pairs of ``[start, end)``, ascending."""
        return heapq.merge(
            *(cursor.items(start, end) for cursor in self._cursors),
            key=_FIRST,
        )

    def items_reverse(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """The ``[start, end)`` window in *descending* key order."""
        return heapq.merge(
            *(cursor.items_reverse(start, end) for cursor in self._cursors),
            key=_FIRST,
            reverse=True,
        )

    def seek(self, start: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Iterate live pairs with user key >= ``start``."""
        return self.items(start=start)

    def count(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
    ) -> int:
        """Number of live keys in the range (consumes a pass)."""
        return sum(1 for _ in self.items(start, end))

    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        return self.items()
