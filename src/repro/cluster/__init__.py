"""``repro.cluster`` — a sharded LSM engine over ``repro.db``.

The subsystem in four pieces:

* :mod:`~repro.cluster.partitioner` — hash / range key→shard routing;
* :mod:`~repro.cluster.manifest` — the persisted, CRC-protected
  ``CLUSTER`` layout manifest (re-validated on reopen);
* :mod:`~repro.cluster.pool` — the shared, bounded compute pool that
  multiplexes every shard's pipelined-compaction S2–S6 stage;
* :mod:`~repro.cluster.sharded` / :mod:`~repro.cluster.cursor` — the
  DB-shaped :class:`ShardedDB` facade and the k-way-merge cross-shard
  cursor.

Quick start::

    from repro.cluster import ShardedDB
    from repro.core.procedures import ProcedureSpec

    db = ShardedDB.in_memory(4, compaction_spec=ProcedureSpec.cppcp(2))
    db.put(b"k", b"v")
    list(db.scan())          # globally ordered across shards
    db.close()

See ``docs/CLUSTER.md`` for the design discussion.
"""

from .cursor import ClusterCursor
from .manifest import (
    CLUSTER_FILE,
    ClusterConfigError,
    ClusterManifest,
    shard_dir_name,
)
from .partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    partitioner_from_spec,
)
from .pool import SharedComputePool
from .shard import ShardLike
from .sharded import ClusterSnapshot, ShardedDB

__all__ = [
    "CLUSTER_FILE",
    "ClusterConfigError",
    "ClusterCursor",
    "ClusterManifest",
    "ClusterSnapshot",
    "HashPartitioner",
    "Partitioner",
    "RangePartitioner",
    "ShardLike",
    "ShardedDB",
    "SharedComputePool",
    "partitioner_from_spec",
    "shard_dir_name",
]
