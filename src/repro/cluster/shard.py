"""The shard contract, made explicit.

:class:`repro.cluster.ShardedDB` was written against ``repro.db.DB``
and consumed its surface implicitly.  With replication in the tree
there are now three things that can sit behind one shard slot — a
local :class:`repro.db.DB`, a :class:`repro.replication.RemoteShard`
(the same engine in another process, reached over the wire), and a
:class:`repro.replication.ReplicatedShard` (a primary/follower replica
set) — so the contract is spelled out as a ``typing.Protocol``.

``ShardLike`` is structural: none of the implementations inherit from
it, they just satisfy it (checked by the conformance test in
``tests/replication/test_shardlike.py``).  Optional capabilities stay
*out* of the protocol on purpose:

* ``snapshot()`` / ``cursor()`` — only local shards pin snapshots;
  :meth:`ShardedDB.scan` falls back to a heap merge of per-shard scans
  when any shard cannot produce a cursor;
* ``obs`` — every implementation happens to carry an
  :class:`repro.obs.Observability` bundle, but it is a metrics
  affordance, not part of the data contract.
"""

from __future__ import annotations

from typing import Iterator, Optional, Protocol, runtime_checkable

from ..db.db import DBStats

__all__ = ["ShardLike"]


@runtime_checkable
class ShardLike(Protocol):
    """What :class:`ShardedDB` requires of each shard.

    Semantics the types cannot express:

    * ``write`` applies a :class:`repro.lsm.wal.WriteBatch`
      atomically *within this shard*;
    * ``scan``/``scan_reverse`` yield the half-open window
      ``[start, end)`` in key order (descending for reverse);
    * ``write_stalled`` is advisory backpressure — True means a write
      issued now would block or be rejected;
    * ``stats`` returns cumulative counters (a
      :class:`repro.db.db.DBStats`);
    * ``close`` is idempotent.
    """

    # ------------------------------------------------------------ writes
    def put(self, key: bytes, value: bytes) -> None: ...

    def delete(self, key: bytes) -> None: ...

    def write(self, batch) -> None: ...

    # ------------------------------------------------------------- reads
    def get(self, key: bytes, snapshot=None) -> Optional[bytes]: ...

    def multi_get(self, keys, snapshot=None) -> list[Optional[bytes]]: ...

    def scan(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        snapshot=None,
    ) -> Iterator[tuple[bytes, bytes]]: ...

    def scan_reverse(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        snapshot=None,
    ) -> Iterator[tuple[bytes, bytes]]: ...

    # ------------------------------------------------------- maintenance
    def flush(self) -> None: ...

    def compact_range(self, start=None, end=None) -> int: ...

    def compact_all(self) -> int: ...

    def wait_for_compactions(self) -> None: ...

    # ------------------------------------------------------------- admin
    def write_stalled(self, keys=None) -> bool: ...

    @property
    def stats(self) -> DBStats: ...

    def num_files(self, level: int) -> int: ...

    def total_bytes(self) -> int: ...

    def get_property(self, name: str) -> Optional[str]: ...

    def describe(self) -> str: ...

    def close(self) -> None: ...
