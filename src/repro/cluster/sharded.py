"""``ShardedDB``: N independent LSM shards behind one DB-shaped facade.

The paper's parallel procedures scale *one* compaction pipeline over k
devices or k workers (Eqs. 4/6); this module applies the same argument
one level up.  The user keyspace is partitioned over N
:class:`repro.db.DB` shards — each with its own memtable, WAL, levels,
and compaction pipeline — so the aggregate write path scales with N
until a shared resource saturates.  The shared resource is made
explicit: one :class:`~repro.cluster.pool.SharedComputePool`
multiplexes every shard's pipelined-compaction compute stage (S2–S6)
over a bounded worker set instead of letting N shards spawn N × k
compute threads.

Facade contract: ``ShardedDB`` is duck-compatible with the ``DB``
surface the network server (:mod:`repro.server`), the bench harness,
and ``dbtool`` consume — ``put``/``get``/``delete``/``write``/
``multi_get``/``scan``/``scan_reverse``/``cursor``/``snapshot``/
``flush``/``compact_range``/``stats``/``close`` — so the whole stack
gains a cluster mode without forking code paths.

Consistency model (documented, not hidden):

* single-key operations have exactly the shard's semantics (atomic
  batch, read-your-writes);
* a :class:`WriteBatch` spanning shards is split into one atomic
  per-shard batch each — atomic per shard, not across shards;
* a :class:`ClusterSnapshot` pins one snapshot per shard.  Snapshots
  are acquired shard-by-shard (no cluster-wide freeze), so the view
  is per-shard consistent and cluster-wide *cut* consistent only in
  the absence of cross-shard ordering requirements — the same
  contract per-shard snapshots give in production sharded stores.

Layout is persisted in a ``CLUSTER`` manifest (shard count +
partitioner spec, CRC-protected, atomically swapped); reopen
re-validates it so a mis-configured reopen fails loudly instead of
misrouting keys.  See ``docs/CLUSTER.md``.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator, Optional, Sequence

from ..core.procedures import ProcedureSpec
from ..db.db import DB, DBStats, Snapshot
from ..devices.vfs import Storage
from ..lsm.options import Options
from ..lsm.wal import WriteBatch
from ..obs import MetricsRegistry, Observability, merge_shard_snapshots
from .cursor import ClusterCursor
from .manifest import ClusterConfigError, ClusterManifest, shard_dir_name
from .partitioner import HashPartitioner, Partitioner
from .pool import SharedComputePool

__all__ = ["ClusterSnapshot", "ShardedDB"]


class ClusterSnapshot:
    """One pinned snapshot per shard; release via ``with`` or release()."""

    __slots__ = ("shard_snapshots", "_db", "_released")

    def __init__(self, shard_snapshots: list[Snapshot], db: "ShardedDB") -> None:
        self.shard_snapshots = shard_snapshots
        self._db = db
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            for snap in self.shard_snapshots:
                snap.release()

    def __enter__(self) -> "ClusterSnapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class ShardedDB:
    """A hash- or range-partitioned cluster of ``DB`` shards."""

    def __init__(
        self,
        root: Storage,
        shard_storages: Sequence[Storage],
        partitioner: Optional[Partitioner] = None,
        options: Optional[Options] = None,
        compaction_spec: Optional[ProcedureSpec] = None,
        background: bool = False,
        sync_every: Optional[int] = None,
        pool_workers: Optional[int] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        """Open (or create) a cluster over ``shard_storages``.

        ``root`` holds only the ``CLUSTER`` manifest.  On first open
        the layout (``len(shard_storages)`` shards, ``partitioner`` —
        default a seed-0 :class:`HashPartitioner`) is persisted; on
        reopen the persisted layout wins and any conflicting caller
        arguments raise :class:`ClusterConfigError`.

        ``pool_workers`` caps the shared compaction compute pool; the
        default is the spec's own ``compute_workers`` (C-PPCP's k), so
        a cluster runs *k total* compute workers where N independent
        DBs would run N × k.  ``obs`` is the cluster-level bundle: the
        pool records ``cluster.pool.*`` into its registry and every
        shard shares its tracer (one timeline), while each shard keeps
        a private metrics registry surfaced shard-dimensioned through
        :meth:`metrics_snapshot`.
        """
        if len(shard_storages) < 1:
            raise ValueError("need at least one shard storage")
        self.root = root
        self.obs = obs or Observability()

        if ClusterManifest.exists(root):
            self.manifest = ClusterManifest.load(root)
            if len(shard_storages) != self.manifest.n_shards:
                raise ClusterConfigError(
                    f"cluster manifest names {self.manifest.n_shards} "
                    f"shards; {len(shard_storages)} storages supplied"
                )
            persisted = self.manifest.partitioner()
            if partitioner is not None:
                self.manifest.validate_against(len(shard_storages), partitioner)
            self.partitioner = persisted
        else:
            self.partitioner = partitioner or HashPartitioner(
                len(shard_storages)
            )
            if self.partitioner.n_shards != len(shard_storages):
                raise ClusterConfigError(
                    f"partitioner covers {self.partitioner.n_shards} shards "
                    f"but {len(shard_storages)} storages supplied"
                )
            self.manifest = ClusterManifest(
                n_shards=len(shard_storages),
                partitioner_spec=self.partitioner.spec(),
            )
            self.manifest.save(root)

        self.options = options or Options()
        self.compaction_spec = compaction_spec or ProcedureSpec.scp()
        self.pool: Optional[SharedComputePool] = None
        if (
            self.compaction_spec.is_pipelined
            and self.compaction_spec.backend == "thread"
        ):
            self.pool = SharedComputePool(
                pool_workers or self.compaction_spec.compute_workers,
                metrics=self.obs.metrics,
            )

        self._background = background
        self._closed = False
        self.shards: list[DB] = []
        try:
            for storage in shard_storages:
                self.shards.append(
                    DB(
                        storage,
                        self.options,
                        compaction_spec=self.compaction_spec,
                        background=background,
                        sync_every=sync_every,
                        obs=Observability(
                            metrics=MetricsRegistry(),
                            tracer=self.obs.tracer,
                        ),
                        compute_pool=self.pool,
                    )
                )
        except BaseException:
            for shard in self.shards:
                shard.close()
            if self.pool is not None:
                self.pool.shutdown(wait=False)
            raise

    # ----------------------------------------------------- constructors
    @classmethod
    def from_shards(
        cls,
        shards: Sequence,
        partitioner: Optional[Partitioner] = None,
        obs: Optional[Observability] = None,
    ):
        """Compose a cluster from already-open :class:`ShardLike` shards.

        Unlike the storage-based constructor this takes *any* mix of
        shard implementations — local :class:`repro.db.DB` instances,
        :class:`repro.replication.RemoteShard` connections to other
        processes, :class:`repro.replication.ReplicatedShard` replica
        sets — and only routes between them.  No CLUSTER manifest is
        written (the caller owns topology persistence), no shared
        compute pool is created (remote shards compact in their own
        process), and ``close()`` closes the supplied shards.

        Shards without ``cursor``/``snapshot`` support (the remote
        ones) degrade scans to a heap merge of per-shard scans and
        make :meth:`snapshot` raise ``NotImplementedError``.
        """
        if len(shards) < 1:
            raise ValueError("need at least one shard")
        self = cls.__new__(cls)
        self.root = None
        self.obs = obs or Observability()
        self.partitioner = partitioner or HashPartitioner(len(shards))
        if self.partitioner.n_shards != len(shards):
            raise ClusterConfigError(
                f"partitioner covers {self.partitioner.n_shards} shards "
                f"but {len(shards)} shards supplied"
            )
        self.manifest = None
        self.options = Options()
        self.compaction_spec = None
        self.pool = None
        self._background = False
        self._closed = False
        self.shards = list(shards)
        return self

    @classmethod
    def open_path(cls, path: str, n_shards: Optional[int] = None, **kwargs):
        """Open a cluster rooted at directory ``path``.

        Shard *i* lives in ``path/shard-<i>``.  ``n_shards`` is
        required on first open; on reopen it is read from the CLUSTER
        manifest (and validated when also passed).
        """
        import os

        from ..devices.vfs import OSStorage

        root = OSStorage(path)
        if ClusterManifest.exists(root):
            manifest = ClusterManifest.load(root)
            if n_shards is not None and n_shards != manifest.n_shards:
                raise ClusterConfigError(
                    f"cluster at {path!r} has {manifest.n_shards} shards; "
                    f"--shards {n_shards} requested"
                )
            n_shards = manifest.n_shards
        elif n_shards is None:
            raise ClusterConfigError(
                f"no CLUSTER manifest at {path!r}: pass n_shards to create"
            )
        shard_storages = [
            OSStorage(os.path.join(path, shard_dir_name(i)))
            for i in range(n_shards)
        ]
        return cls(root, shard_storages, **kwargs)

    @classmethod
    def in_memory(cls, n_shards: int, **kwargs):
        """A fresh all-in-memory cluster (tests, benchmarks, tracing)."""
        from ..devices.vfs import MemStorage

        return cls(
            MemStorage(), [MemStorage() for _ in range(n_shards)], **kwargs
        )

    # ---------------------------------------------------------- routing
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_for_key(self, key: bytes) -> int:
        """Shard index owning ``key`` (the router, exposed for tools)."""
        return self.partitioner.shard_of(key)

    def _shard(self, key: bytes) -> DB:
        return self.shards[self.partitioner.shard_of(key)]

    # ----------------------------------------------------------- writes
    def put(self, key: bytes, value: bytes) -> None:
        self._shard(key).put(key, value)

    def delete(self, key: bytes) -> None:
        self._shard(key).delete(key)

    def write(self, batch: WriteBatch) -> None:
        """Apply a batch, split into one atomic sub-batch per shard.

        Atomicity is per shard: a crash can persist the sub-batch of
        one shard and not another's (the cluster-level contract; see
        module docstring).  Op order within each shard is preserved.
        """
        if len(batch) == 0:
            return
        from ..lsm.ikey import KIND_VALUE

        per_shard: dict[int, WriteBatch] = {}
        for kind, key, value in batch:
            shard = self.partitioner.shard_of(key)
            sub = per_shard.get(shard)
            if sub is None:
                sub = per_shard[shard] = WriteBatch()
            if kind == KIND_VALUE:
                sub.put(key, value)
            else:
                sub.delete(key)
        for shard, sub in sorted(per_shard.items()):
            self.shards[shard].write(sub)

    # ------------------------------------------------------------ reads
    def _shard_snapshot(
        self, snapshot: Optional[ClusterSnapshot], shard: int
    ) -> Optional[Snapshot]:
        if snapshot is None:
            return None
        return snapshot.shard_snapshots[shard]

    def get(
        self, key: bytes, snapshot: Optional[ClusterSnapshot] = None
    ) -> Optional[bytes]:
        shard = self.partitioner.shard_of(key)
        return self.shards[shard].get(
            key, snapshot=self._shard_snapshot(snapshot, shard)
        )

    def multi_get(
        self, keys, snapshot: Optional[ClusterSnapshot] = None
    ) -> list[Optional[bytes]]:
        """Batched lookups, grouped into one batch per shard.

        Results come back in argument order; each shard is consulted
        exactly once with its slice of the keys.
        """
        keys = list(keys)
        results: list[Optional[bytes]] = [None] * len(keys)
        for shard, positions in self.partitioner.group_keys(keys).items():
            values = self.shards[shard].multi_get(
                [keys[p] for p in positions],
                snapshot=self._shard_snapshot(snapshot, shard),
            )
            for position, value in zip(positions, values):
                results[position] = value
        return results

    def snapshot(self) -> ClusterSnapshot:
        """Pin a snapshot on every shard (shard order, no global freeze)."""
        if not all(hasattr(shard, "snapshot") for shard in self.shards):
            raise NotImplementedError(
                "cluster contains remote shards, which cannot pin snapshots"
            )
        snaps: list[Snapshot] = []
        try:
            for shard in self.shards:
                snaps.append(shard.snapshot())
        except BaseException:
            for snap in snaps:
                snap.release()
            raise
        return ClusterSnapshot(snaps, self)

    def release_snapshot(self, snapshot: ClusterSnapshot) -> None:
        snapshot.release()

    def cursor(
        self, snapshot: Optional[ClusterSnapshot] = None
    ) -> ClusterCursor:
        """A k-way-merge cursor over per-shard snapshot-pinned cursors."""
        if not all(hasattr(shard, "cursor") for shard in self.shards):
            raise NotImplementedError(
                "cluster contains remote shards, which have no cursors; "
                "scan()/scan_reverse() heap-merge instead"
            )
        return ClusterCursor(
            [
                shard.cursor(snapshot=self._shard_snapshot(snapshot, i))
                for i, shard in enumerate(self.shards)
            ]
        )

    def _merged_scan(
        self,
        start: Optional[bytes],
        end: Optional[bytes],
        snapshot: Optional[ClusterSnapshot],
        reverse: bool,
    ) -> Iterator[tuple[bytes, bytes]]:
        """Heap merge of per-shard scans (the cursorless fallback).

        Shards partition the keyspace, so per-shard streams never
        carry the same key and a plain key merge is the global order.
        """
        import heapq

        streams = [
            (
                shard.scan_reverse(start, end, snapshot=snapshot)
                if reverse
                else shard.scan(start, end, snapshot=snapshot)
            )
            for shard in self.shards
        ]
        return heapq.merge(*streams, key=lambda pair: pair[0], reverse=reverse)

    def scan(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        snapshot: Optional[ClusterSnapshot] = None,
        limit: Optional[int] = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """Globally ordered iteration over ``[start, end)`` across shards."""
        if all(hasattr(shard, "cursor") for shard in self.shards):
            items = self.cursor(snapshot).items(start, end)
        else:
            items = self._merged_scan(start, end, snapshot, reverse=False)
        return items if limit is None else islice(items, limit)

    def scan_reverse(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        snapshot: Optional[ClusterSnapshot] = None,
        limit: Optional[int] = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """The ``[start, end)`` window in descending global key order."""
        if all(hasattr(shard, "cursor") for shard in self.shards):
            items = self.cursor(snapshot).items_reverse(start, end)
        else:
            items = self._merged_scan(start, end, snapshot, reverse=True)
        return items if limit is None else islice(items, limit)

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        return self.scan()

    # ------------------------------------------------------ maintenance
    def flush(self) -> None:
        for shard in self.shards:
            shard.flush()

    def compact_range(
        self, start: Optional[bytes] = None, end: Optional[bytes] = None
    ) -> int:
        """Manually compact ``[start, end]`` on every shard; total count."""
        return sum(shard.compact_range(start, end) for shard in self.shards)

    def compact_all(self) -> int:
        """Synchronous-mode helper: drain every shard's compactions."""
        return sum(shard.compact_all() for shard in self.shards)

    def wait_for_compactions(self) -> None:
        for shard in self.shards:
            shard.wait_for_compactions()

    # --------------------------------------------------- stats & stalls
    def write_stalled(self, keys=None) -> bool:
        """Backpressure check, routed: with ``keys``, only the shards
        owning those keys count — a stalled shard must not reject
        writes bound for healthy shards."""
        if keys is None:
            return any(shard.write_stalled() for shard in self.shards)
        shard_ids = {self.partitioner.shard_of(key) for key in keys}
        return any(self.shards[s].write_stalled() for s in shard_ids)

    def stalled_shards(self) -> list[int]:
        """Indices of shards currently refusing writes."""
        return [
            i for i, shard in enumerate(self.shards) if shard.write_stalled()
        ]

    @property
    def stats(self) -> DBStats:
        """Aggregated operational counters across shards (a fresh
        DBStats; mutate per-shard ``shards[i].stats`` instead)."""
        total = DBStats()
        for shard in self.shards:
            s = shard.stats
            total.writes += s.writes
            total.gets += s.gets
            total.flushes += s.flushes
            total.compactions += s.compactions
            total.trivial_moves += s.trivial_moves
            total.compaction_input_bytes += s.compaction_input_bytes
            total.compaction_output_bytes += s.compaction_output_bytes
            total.compaction_seconds += s.compaction_seconds
            total.write_stalls += s.write_stalls
            for level, n in s.per_level_compactions.items():
                total.per_level_compactions[level] = (
                    total.per_level_compactions.get(level, 0) + n
                )
        return total

    def shard_stats(self) -> list[dict]:
        """Per-shard operational summary (the STATS ``cluster.shards``
        payload and ``dbtool stats --shards``)."""
        out = []
        for i, shard in enumerate(self.shards):
            s = shard.stats
            out.append(
                {
                    "shard": i,
                    "writes": s.writes,
                    "gets": s.gets,
                    "flushes": s.flushes,
                    "compactions": s.compactions,
                    "write_stalls": s.write_stalls,
                    "l0_files": shard.num_files(0),
                    "total_bytes": shard.total_bytes(),
                    "write_stalled_now": shard.write_stalled(),
                }
            )
        return out

    def metrics_snapshot(self) -> dict:
        """Cluster metrics with a shard dimension.

        Per-shard registries appear as ``cluster.shard<N>.<name>``,
        counters/gauges additionally roll up under their bare names,
        and the cluster's own registry (``cluster.pool.*``) rides
        along unprefixed.  See :func:`repro.obs.merge_shard_snapshots`.
        """
        return merge_shard_snapshots(
            self.obs.metrics.snapshot(),
            [
                shard.obs.metrics.snapshot()
                if getattr(shard, "obs", None) is not None
                else {}
                for shard in self.shards
            ],
        )

    def num_files(self, level: int) -> int:
        return sum(shard.num_files(level) for shard in self.shards)

    def total_bytes(self) -> int:
        return sum(shard.total_bytes() for shard in self.shards)

    @property
    def policy(self):
        """The shards' compaction policy (every shard opens with the
        same Options, so they agree); None for policy-less ShardLikes
        (e.g. pure RemoteShard mixes)."""
        for shard in self.shards:
            found = getattr(shard, "policy", None)
            if found is not None:
                return found
        return None

    def describe(self) -> str:
        return "\n".join(
            f"[shard {i}]\n{shard.describe()}"
            for i, shard in enumerate(self.shards)
        )

    def get_property(self, name: str) -> Optional[str]:
        """Cluster-aware subset of ``DB.get_property``.

        ``stats``/``sstables``/``total-bytes``/``num-files-at-level<N>``
        and ``quarantine`` aggregate across shards; ``metrics`` returns
        the shard-dimensioned merged snapshot; ``cluster`` describes
        the shard map.  Unknown names return None.
        """
        import json

        if self._closed:
            raise RuntimeError("ShardedDB is closed")
        if name == "cluster":
            policy = self.policy
            lines = [
                f"shards={self.n_shards} "
                f"partitioner={self.partitioner.spec()}"
                + (f" policy={policy.spec()}" if policy is not None else "")
            ]
            for entry in self.shard_stats():
                lines.append(
                    f"shard{entry['shard']}: writes={entry['writes']} "
                    f"l0={entry['l0_files']} bytes={entry['total_bytes']} "
                    f"stalled={entry['write_stalled_now']}"
                )
            return "\n".join(lines)
        if name == "metrics":
            return json.dumps(self.metrics_snapshot(), sort_keys=True)
        if name == "compaction-policy":
            policy = self.policy
            return policy.spec() if policy is not None else None
        if name == "sstables":
            return self.describe()
        if name == "total-bytes":
            return str(self.total_bytes())
        if name.startswith("num-files-at-level"):
            try:
                level = int(name[len("num-files-at-level"):])
            except ValueError:
                return None
            if not 0 <= level < self.options.num_levels:
                return None
            return str(self.num_files(level))
        if name == "stats":
            s = self.stats
            return (
                f"shards={self.n_shards} writes={s.writes} gets={s.gets} "
                f"flushes={s.flushes} compactions={s.compactions} "
                f"stalls={s.write_stalls}"
            )
        if name == "quarantine":
            lines = []
            for i, shard in enumerate(self.shards):
                text = shard.get_property("quarantine")
                if text and text != "(none)":
                    lines += [f"shard{i}/{line}" for line in text.splitlines()]
            return "\n".join(lines) if lines else "(none)"
        return None

    # --------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close every shard, then the shared pool (idempotent).

        Best-effort: every shard gets a close attempt even if an
        earlier one fails; the first failure re-raises afterwards.
        """
        if self._closed:
            return
        self._closed = True
        first_error: Optional[BaseException] = None
        for shard in self.shards:
            try:
                shard.close()
            except BaseException as exc:  # repro: noqa[RA105]
                if first_error is None:
                    first_error = exc
        if self.pool is not None:
            self.pool.shutdown()
        if first_error is not None:
            raise first_error

    def __enter__(self) -> "ShardedDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
