"""Shared, bounded compute pool for cross-shard compaction pipelines.

The paper's C-PPCP (Eq. 6) fans the compute stages S2–S6 of *one*
compaction over ``k`` workers.  A sharded store runs up to N
compactions at once — one per shard — and naively giving each shard
its own C-PPCP executor spawns ``N × k`` compute threads that fight
over the same cores.  :class:`SharedComputePool` is the cluster-wide
alternative: one bounded pool of ``workers`` persistent threads that
every shard's pipeline submits sub-task compute jobs to, so aggregate
compute concurrency is capped at the configured worker count no
matter how many shards are compacting (Pome, arXiv:2307.16693, makes
exactly this case for coordinating *across* concurrent compactions).

The pool is observable: ``cluster.pool.*`` metrics record task counts,
queue wait, execution time, concurrent occupancy, and the high-water
occupancy mark (``cluster.pool.max_active``) — which the bench suite
asserts never exceeds ``cluster.pool.workers``.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Optional

from ..analysis.locksan import make_lock
from ..analysis.racesan import shared_state
from ..obs import MetricsRegistry

__all__ = ["SharedComputePool"]


class SharedComputePool:
    """A bounded thread pool shards' compaction pipelines multiplex.

    Duck-compatible with the ``compute_pool`` parameter of
    :func:`repro.core.procedures.compact_tables` (anything with
    ``submit(fn, *args, **kwargs) -> Future``).
    """

    def __init__(
        self,
        workers: int,
        metrics: Optional[MetricsRegistry] = None,
        thread_name_prefix: str = "cluster-compute",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.metrics = metrics or MetricsRegistry()
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=thread_name_prefix
        )
        self._lock = make_lock("cluster.pool")
        self._state = shared_state("cluster.pool.active")
        self._active = 0
        self._closed = False
        self.metrics.gauge("cluster.pool.workers").set(workers)

    # --------------------------------------------------------- execution
    def submit(self, fn, *args, **kwargs) -> Future:
        """Run ``fn(*args, **kwargs)`` on a pool worker; returns a Future."""
        if self._closed:
            raise RuntimeError("compute pool is shut down")
        submitted = time.perf_counter()
        self.metrics.counter("cluster.pool.tasks").inc()

        def _run():
            started = time.perf_counter()
            self.metrics.histogram("cluster.pool.wait_seconds").record(
                started - submitted
            )
            with self._lock:
                self._state.write()
                self._active += 1
                gauge = self.metrics.gauge("cluster.pool.active")
                gauge.set(self._active)
                high = self.metrics.gauge("cluster.pool.max_active")
                if self._active > high.value:
                    high.set(self._active)
            try:
                return fn(*args, **kwargs)
            finally:
                with self._lock:
                    self._state.write()
                    self._active -= 1
                    self.metrics.gauge("cluster.pool.active").set(self._active)
                self.metrics.histogram("cluster.pool.exec_seconds").record(
                    time.perf_counter() - started
                )

        return self._executor.submit(_run)

    # --------------------------------------------------------- lifecycle
    @property
    def active(self) -> int:
        """Tasks currently executing (not queued)."""
        with self._lock:
            self._state.read()
            return self._active

    def shutdown(self, wait: bool = True) -> None:
        """Idempotent; outstanding tasks finish when ``wait`` is True."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "SharedComputePool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
