"""Per-step service-time models (and their calibration).

The simulated experiments need the execution time of each compaction
step for a sub-task of a given size.  :class:`CostModel` provides
those: linear per-byte models for checksum/compress/decompress, a
per-entry model for the merge step (which is why the paper's Fig 8
shows *sort* shrinking as key-value size grows — fewer entries per
byte).

The default constants are calibrated so that at the paper's default
configuration (1 MiB sub-tasks, 16 B keys + 100 B values) the Fig 5
breakdown shapes hold against the device presets:

* compute total ≈ 25.6 ms/MiB,
* S5 compress is the costliest pure-CPU per-byte step, S3 decompress
  the cheapest, CRC steps < 5 % of the sub-task each.

:func:`CostModel.calibrate` rebuilds the constants by timing the real
codecs in this repository on synthetic key-value blocks, tying the
model to the functional implementation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from ..codec.checksum import crc32c_py
from ..codec.compress import lz77_compress, lz77_decompress
from ..devices.base import AccessKind, Device

__all__ = ["StepTimes", "StageTimes", "CostModel", "DEFAULT_KV_BYTES"]

MB = float(1 << 20)

#: Default entry footprint: 16 B key + 100 B value (paper §IV-A).
DEFAULT_KV_BYTES = 116


@dataclass(frozen=True)
class StageTimes:
    """Service times of the three pipeline stages for one sub-task."""

    t_read: float
    t_compute: float
    t_write: float

    @property
    def total(self) -> float:
        return self.t_read + self.t_compute + self.t_write

    @property
    def bottleneck(self) -> str:
        times = {
            "read": self.t_read,
            "compute": self.t_compute,
            "write": self.t_write,
        }
        return max(times, key=times.get)

    def scaled(self, factor: float) -> "StageTimes":
        return StageTimes(
            self.t_read * factor, self.t_compute * factor, self.t_write * factor
        )


@dataclass(frozen=True)
class StepTimes:
    """Service times of the seven steps (S1..S7) for one sub-task."""

    read: float  # S1
    checksum: float  # S2
    decompress: float  # S3
    merge: float  # S4
    compress: float  # S5
    rechecksum: float  # S6
    write: float  # S7

    @property
    def total(self) -> float:
        return (
            self.read
            + self.checksum
            + self.decompress
            + self.merge
            + self.compress
            + self.rechecksum
            + self.write
        )

    @property
    def compute_total(self) -> float:
        """Σ t_{S2..S6} — the paper's CPU-side sum."""
        return (
            self.checksum
            + self.decompress
            + self.merge
            + self.compress
            + self.rechecksum
        )

    def stages(self) -> StageTimes:
        """Collapse to the 3-stage pipeline model."""
        return StageTimes(self.read, self.compute_total, self.write)

    def as_dict(self) -> dict[str, float]:
        return {
            "read": self.read,
            "checksum": self.checksum,
            "decompress": self.decompress,
            "merge": self.merge,
            "compress": self.compress,
            "rechecksum": self.rechecksum,
            "write": self.write,
        }


@dataclass(frozen=True)
class CostModel:
    """Linear per-byte / per-entry service-time constants (seconds)."""

    checksum_s_per_byte: float = 0.0017 / MB
    decompress_s_per_byte: float = 0.0016 / MB
    merge_s_per_entry: float = 0.73e-6
    compress_s_per_byte: float = 0.0139 / MB
    #: output bytes = compression_ratio * input bytes (1.0 = size-neutral;
    #: the paper's bandwidth metric is per *input* byte either way).
    compression_ratio: float = 1.0

    def compute_times(self, nbytes: int, entries: int) -> StepTimes:
        """CPU step times only (read/write zeroed)."""
        out_bytes = nbytes * self.compression_ratio
        return StepTimes(
            read=0.0,
            checksum=self.checksum_s_per_byte * nbytes,
            decompress=self.decompress_s_per_byte * nbytes,
            merge=self.merge_s_per_entry * entries,
            compress=self.compress_s_per_byte * nbytes,
            rechecksum=self.checksum_s_per_byte * out_bytes,
            write=0.0,
        )

    def step_times(
        self,
        nbytes: int,
        entries: int,
        read_device: Device,
        write_device: Device,
        sequential_read: bool = False,
        sequential_write: bool = True,
    ) -> StepTimes:
        """Full S1..S7 times for one sub-task of ``nbytes`` input.

        Reads default to *random* positioning: a compaction interleaves
        reads of several input tables with output writes, so the HDD
        arm repositions per sub-task (paper §IV-B).  Writes default to
        sequential (the output is appended, and the HDD model routes
        them through the write-back buffer anyway).
        """
        cpu = self.compute_times(nbytes, entries)
        out_bytes = int(round(nbytes * self.compression_ratio))
        t_read = read_device.estimate(AccessKind.READ, nbytes, sequential_read)
        t_write = write_device.estimate(AccessKind.WRITE, out_bytes, sequential_write)
        return replace(cpu, read=t_read, write=t_write)

    def entries_for(self, nbytes: int, kv_bytes: int = DEFAULT_KV_BYTES) -> int:
        """Entry count of a sub-task at a given per-entry footprint."""
        if kv_bytes < 1:
            raise ValueError(f"kv_bytes must be >= 1, got {kv_bytes}")
        return max(1, nbytes // kv_bytes)

    @classmethod
    def calibrate(
        cls,
        sample_bytes: int = 1 << 18,
        kv_bytes: int = DEFAULT_KV_BYTES,
        compression_ratio: float = 1.0,
    ) -> "CostModel":
        """Measure the real codecs and return a matching model.

        Times :func:`repro.codec.checksum.crc32c_py`,
        :func:`lz77_compress`/:func:`lz77_decompress`, and a heap merge
        of encoded entries on this machine, producing a CostModel whose
        constants reflect the actual pure-Python implementation instead
        of the paper-calibrated defaults.
        """
        sample = _kv_sample(sample_bytes, kv_bytes)

        t0 = time.perf_counter()
        crc32c_py(sample)
        t_crc = (time.perf_counter() - t0) / len(sample)

        t0 = time.perf_counter()
        compressed = lz77_compress(sample)
        t_comp = (time.perf_counter() - t0) / len(sample)

        t0 = time.perf_counter()
        lz77_decompress(compressed)
        t_dec = (time.perf_counter() - t0) / len(sample)

        entries = max(1, sample_bytes // kv_bytes)
        items = [(b"%012d" % i, b"v") for i in range(entries)]
        import heapq

        t0 = time.perf_counter()
        list(heapq.merge(items[::2], items[1::2]))
        t_merge = (time.perf_counter() - t0) / entries

        return cls(
            checksum_s_per_byte=t_crc,
            decompress_s_per_byte=t_dec,
            merge_s_per_entry=t_merge,
            compress_s_per_byte=t_comp,
            compression_ratio=compression_ratio,
        )


def _kv_sample(nbytes: int, kv_bytes: int) -> bytes:
    """Synthetic key-value payload with realistic compressibility."""
    out = bytearray()
    i = 0
    value_bytes = max(1, kv_bytes - 16)
    while len(out) < nbytes:
        out += b"user%012d" % i
        out += (b"field-%04d-" % (i % 997)) * (value_bytes // 11 + 1)
        i += 1
    return bytes(out[:nbytes])
