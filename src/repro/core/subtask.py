"""Sub-task partitioning of a compaction key range (paper §III-B).

"PCP partitions the compaction key range into multiple sub-key ranges.
Each sub-key range consists of one or more data blocks."  A
:class:`SubTask` is the pipeline's unit of work: the data blocks of
every input run that overlap one sub-key range, plus the user-key
bounds ``[lower, upper)`` that make sub-tasks disjoint.

Boundaries are drawn from the *upper component's* block separators so
each sub-task covers whole upper-level blocks; lower-level blocks that
straddle a boundary are read by both neighbouring sub-tasks and
filtered by the bounds (a small, documented I/O duplication — the
price of unaligned block grids, which the paper's LevelDB
implementation pays the same way).

Because sub-key ranges are disjoint *user-key* ranges, every version of
a user key lands in exactly one sub-task, so newest-wins deduplication
and tombstone dropping are local decisions and sub-tasks are fully
independent — the no-data-dependency property that legalises
pipelining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..lsm.table_format import BLOCK_TRAILER_SIZE, BlockHandle
from ..lsm.table_reader import Table

__all__ = ["InputRun", "SubTask", "partition_subtasks", "SubTaskSizes"]


@dataclass(frozen=True)
class InputRun:
    """One input table's contribution to a sub-task."""

    source: int  # merge priority (0 = newest component)
    table: Table
    handles: tuple[BlockHandle, ...]

    def stored_bytes(self) -> int:
        return sum(h.size + BLOCK_TRAILER_SIZE for h in self.handles)


@dataclass(frozen=True)
class SubTask:
    """One pipeline work unit: a sub-key range and its input blocks."""

    index: int
    lower: Optional[bytes]  # user-key bounds, [lower, upper)
    upper: Optional[bytes]
    runs: tuple[InputRun, ...]

    def input_bytes(self) -> int:
        """On-disk bytes this sub-task reads (S1 size)."""
        return sum(run.stored_bytes() for run in self.runs)

    def num_blocks(self) -> int:
        return sum(len(run.handles) for run in self.runs)


@dataclass(frozen=True)
class SubTaskSizes:
    """Aggregate shape of a partition (for reporting/experiments)."""

    count: int
    total_bytes: int
    max_bytes: int
    min_bytes: int


def partition_subtasks(
    tables: Sequence[Table],
    subtask_bytes: int,
    lower: Optional[bytes] = None,
    upper: Optional[bytes] = None,
) -> list[SubTask]:
    """Split a compaction over ``tables`` into ~``subtask_bytes`` units.

    ``tables`` are ordered newest-first (upper component first); the
    first table drives boundary selection.  ``lower``/``upper`` clamp
    the whole compaction to a user-key window (None = unbounded).
    """
    if subtask_bytes < 1:
        raise ValueError(f"subtask_bytes must be >= 1, got {subtask_bytes}")
    if not tables:
        return []

    # ``subtask_bytes`` budgets the *total* input of a sub-task, but
    # boundaries can only sit on the driver's block grid; scale the
    # driver-side target by the driver's share of the total input so
    # each sub-task carries ~subtask_bytes across all runs.
    def _table_bytes(t: Table) -> int:
        return sum(h.size + BLOCK_TRAILER_SIZE for h in t.block_handles())

    driver_bytes = _table_bytes(tables[0])
    total_bytes = sum(_table_bytes(t) for t in tables)
    if total_bytes > 0 and driver_bytes > 0:
        driver_target = max(1, subtask_bytes * driver_bytes // total_bytes)
    else:
        driver_target = subtask_bytes
    boundaries = _choose_boundaries(tables[0], driver_target, lower, upper)
    # boundaries = [lower, b1, b2, ..., upper]; len >= 2
    subtasks: list[SubTask] = []
    for i, (lo, hi) in enumerate(zip(boundaries, boundaries[1:])):
        runs = []
        for source, table in enumerate(tables):
            handles = _overlapping_handles(table, lo, hi)
            runs.append(InputRun(source, table, tuple(handles)))
        if any(run.handles for run in runs):
            subtasks.append(
                SubTask(index=len(subtasks), lower=lo, upper=hi, runs=tuple(runs))
            )
    return subtasks


def _choose_boundaries(
    driver: Table,
    subtask_bytes: int,
    lower: Optional[bytes],
    upper: Optional[bytes],
) -> list[Optional[bytes]]:
    """Cut points: user keys of the driver's block separators."""
    boundaries: list[Optional[bytes]] = [lower]
    acc = 0
    handles = driver.block_handles()
    separators = driver.block_separators()
    # Never cut after the final block: its separator is a successor of
    # the whole table and would leave an empty (or driverless) tail.
    handles = handles[:-1]
    separators = separators[:-1]
    for handle, sep in zip(handles, separators):
        acc += handle.size + BLOCK_TRAILER_SIZE
        if acc >= subtask_bytes:
            # The separator bounds this block's largest user key from
            # above; cutting at its immediate successor keeps the whole
            # block (including entries whose user key equals the
            # separator's) in the left sub-task.
            user = sep[:-8] + b"\x00"
            if _in_window(user, lower, upper) and user != boundaries[-1]:
                boundaries.append(user)
                acc = 0
    if len(boundaries) > 1 and boundaries[-1] == upper:
        boundaries.pop()
    boundaries.append(upper)
    return boundaries


def _in_window(
    user: bytes, lower: Optional[bytes], upper: Optional[bytes]
) -> bool:
    if lower is not None and user <= lower:
        return False
    if upper is not None and user >= upper:
        return False
    return True


def _overlapping_handles(
    table: Table, lo: Optional[bytes], hi: Optional[bytes]
) -> list[BlockHandle]:
    """Data blocks of ``table`` that may hold user keys in [lo, hi)."""
    out = []
    separators = table.block_separators()
    handles = table.block_handles()
    prev_sep_user: Optional[bytes] = None
    for sep, handle in zip(separators, handles):
        sep_user = sep[:-8]
        # Block key span is (prev_sep_user, sep_user].
        if lo is not None and sep_user < lo:
            prev_sep_user = sep_user
            continue
        if (
            hi is not None
            and prev_sep_user is not None
            and prev_sep_user + b"\x00" >= hi
        ):
            # Every user key in this block is >= prev separator; the only
            # candidate inside [lo, hi) would be prev_sep_user itself, and
            # any of its versions here are shadowed by the newer version
            # in the preceding (included) block, so skipping is lossless.
            break
        out.append(handle)
        prev_sep_user = sep_user
    return out
