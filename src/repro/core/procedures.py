"""Compaction procedure definitions and the high-level run facade.

Four procedures (paper §III):

* **SCP** — Sequential Compaction Procedure: sub-tasks strictly one
  after another, steps S1..S7 in order.
* **PCP** — Pipelined Compaction Procedure: 3 stages (read | compute |
  write) over sub-tasks.
* **S-PPCP** — Storage-Parallel PCP: k devices serve S1/S7, sub-task i
  on device i mod k.
* **C-PPCP** — Computation-Parallel PCP: k workers serve S2–S6.

Each procedure can be *executed* (functionally, on real data, via the
thread backend — the DB's compaction engine) or *simulated* (virtual
time via the DES backend — the quantitative experiments).  Both
consume the same :func:`repro.core.subtask.partition_subtasks` output,
and execution output is bit-identical across procedures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..codec.checksum import get_checksummer
from ..codec.compress import get_codec
from ..devices.base import Device
from ..lsm.options import Options
from ..lsm.table_reader import Table
from ..lsm.table_sink import TableSink
from ..lsm.version import FileMetaData
from ..obs.tracer import NULL_TRACER, Tracer
from .backends.simbackend import (
    PipelineConfig,
    ScheduleResult,
    SimJob,
    simulate_pipeline,
    simulate_scp,
)
from .backends.threadbackend import (
    ExecutionStats,
    execute_pipelined,
    execute_pipelined_pooled,
    execute_scp,
)
from .costmodel import DEFAULT_KV_BYTES, CostModel
from .subtask import SubTask, partition_subtasks

__all__ = [
    "SCP",
    "PCP",
    "SPPCP",
    "CPPCP",
    "ProcedureSpec",
    "compact_tables",
    "simulate_compaction",
    "subtask_jobs",
]

SCP = "scp"
PCP = "pcp"
SPPCP = "sppcp"
CPPCP = "cppcp"

_KINDS = (SCP, PCP, SPPCP, CPPCP)


@dataclass(frozen=True)
class ProcedureSpec:
    """Which procedure to run, and its parallelism parameters."""

    kind: str = SCP
    k: int = 1  # devices for S-PPCP, compute workers for C-PPCP
    subtask_bytes: int = 1 << 20
    queue_capacity: int = 2
    shared_io: bool = False
    handoff_overhead_s: float = 0.0
    #: functional execution backend: "thread" (default; GIL-bound
    #: compute) or "process" (C-PPCP's compute stage on worker
    #: processes — real parallelism, higher per-sub-task overhead).
    backend: str = "thread"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown procedure {self.kind!r}; one of {_KINDS}")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.subtask_bytes < 1:
            raise ValueError("subtask_bytes must be >= 1")
        if self.kind in (SCP, PCP) and self.k != 1:
            raise ValueError(f"{self.kind} does not take k (got k={self.k})")
        if self.backend not in ("thread", "process"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.backend == "process" and self.kind == SCP:
            raise ValueError("SCP is sequential; no process backend")

    # -- constructors --------------------------------------------------
    @classmethod
    def scp(cls, subtask_bytes: int = 1 << 20) -> "ProcedureSpec":
        return cls(SCP, subtask_bytes=subtask_bytes)

    @classmethod
    def pcp(cls, subtask_bytes: int = 1 << 20, **kw) -> "ProcedureSpec":
        return cls(PCP, subtask_bytes=subtask_bytes, **kw)

    @classmethod
    def sppcp(cls, k: int, subtask_bytes: int = 1 << 20, **kw) -> "ProcedureSpec":
        return cls(SPPCP, k=k, subtask_bytes=subtask_bytes, **kw)

    @classmethod
    def cppcp(cls, k: int, subtask_bytes: int = 1 << 20, **kw) -> "ProcedureSpec":
        return cls(CPPCP, k=k, subtask_bytes=subtask_bytes, **kw)

    # -- mapping to backends -------------------------------------------
    @property
    def is_pipelined(self) -> bool:
        return self.kind != SCP

    @property
    def compute_workers(self) -> int:
        return self.k if self.kind == CPPCP else 1

    @property
    def n_devices(self) -> int:
        return self.k if self.kind == SPPCP else 1

    def pipeline_config(self) -> PipelineConfig:
        if not self.is_pipelined:
            raise ValueError("SCP has no pipeline configuration")
        return PipelineConfig(
            compute_workers=self.compute_workers,
            n_devices=self.n_devices,
            queue_capacity=self.queue_capacity,
            shared_io=self.shared_io,
            handoff_overhead_s=self.handoff_overhead_s,
        )


def compact_tables(
    tables: Sequence[Table],
    storage,
    options: Options,
    file_namer: Callable[[], str],
    spec: Optional[ProcedureSpec] = None,
    drop_deletes: bool = False,
    lower: Optional[bytes] = None,
    upper: Optional[bytes] = None,
    smallest_snapshot: Optional[int] = None,
    tracer: Tracer = NULL_TRACER,
    compute_pool=None,
) -> tuple[list[FileMetaData], ExecutionStats, list[SubTask]]:
    """Functionally compact ``tables`` (newest-first) into new SSTables.

    Returns ``(output file metadata, execution stats, subtasks)``.
    The merged result is identical for every procedure spec; only the
    schedule differs.  With an enabled ``tracer`` every S1–S7 step of
    every sub-task records a span (plus one ``compaction`` umbrella
    span), so a PCP run renders as the paper's Fig 6/7 overlap diagram.

    ``compute_pool`` (optional, pipelined thread-backend specs only)
    runs the S2–S6 compute stage on a shared, externally owned pool
    (e.g. :class:`repro.cluster.SharedComputePool`) instead of
    spawning per-compaction compute threads — how a sharded store
    bounds aggregate compaction compute across N shards.
    """
    spec = spec or ProcedureSpec.scp()
    subtasks = partition_subtasks(tables, spec.subtask_bytes, lower, upper)
    sink = TableSink(storage, options, file_namer)
    codec = get_codec(options.compression)
    checksummer = get_checksummer(options.checksum)
    with tracer.span(
        "compaction", cat="compaction",
        procedure=spec.kind, subtasks=len(subtasks),
    ):
        if spec.kind == SCP:
            stats = execute_scp(
                subtasks, sink, codec, checksummer, options.block_bytes,
                options.block_restart_interval, drop_deletes,
                smallest_snapshot=smallest_snapshot, tracer=tracer,
            )
        elif spec.backend == "process":
            from .backends.processbackend import execute_pipelined_mp

            stats = execute_pipelined_mp(
                subtasks, sink, options.compression, options.checksum,
                options.block_bytes, options.block_restart_interval,
                drop_deletes,
                compute_workers=max(2, spec.compute_workers),
                smallest_snapshot=smallest_snapshot, tracer=tracer,
            )
        elif compute_pool is not None:
            stats = execute_pipelined_pooled(
                subtasks, sink, codec, checksummer, options.block_bytes,
                pool=compute_pool,
                restart_interval=options.block_restart_interval,
                drop_deletes=drop_deletes,
                queue_capacity=spec.queue_capacity,
                smallest_snapshot=smallest_snapshot, tracer=tracer,
            )
        else:
            # S-PPCP is storage parallelism; functionally (one host, one
            # address space) it executes like PCP — the device fan-out
            # matters only for timing, which the sim backend models.
            stats = execute_pipelined(
                subtasks, sink, codec, checksummer, options.block_bytes,
                options.block_restart_interval, drop_deletes,
                compute_workers=spec.compute_workers,
                queue_capacity=spec.queue_capacity,
                smallest_snapshot=smallest_snapshot, tracer=tracer,
            )
        outputs = sink.finish()
    return outputs, stats, subtasks


def subtask_jobs(
    subtask_sizes: Sequence[tuple[int, int]],
    cost_model: CostModel,
    read_device: Device,
    write_device: Device,
) -> list[SimJob]:
    """Build scheduler jobs from ``(nbytes, entries)`` sub-task shapes."""
    jobs = []
    for i, (nbytes, entries) in enumerate(subtask_sizes):
        times = cost_model.step_times(nbytes, entries, read_device, write_device)
        jobs.append(SimJob(index=i, times=times.stages(), nbytes=nbytes))
    return jobs


def simulate_compaction(
    subtask_sizes: Sequence[tuple[int, int]],
    spec: ProcedureSpec,
    cost_model: Optional[CostModel] = None,
    read_device: Optional[Device] = None,
    write_device: Optional[Device] = None,
) -> ScheduleResult:
    """Simulate a compaction's schedule in virtual time.

    ``subtask_sizes`` is a list of ``(input_bytes, entries)`` pairs;
    devices default to the calibrated SSD preset.
    """
    from ..devices.presets import make_device

    cost_model = cost_model or CostModel()
    if read_device is None:
        read_device = make_device("ssd")
    if write_device is None:
        write_device = read_device
    jobs = subtask_jobs(subtask_sizes, cost_model, read_device, write_device)
    if spec.kind == SCP:
        return simulate_scp(jobs)
    return simulate_pipeline(jobs, spec.pipeline_config())


def uniform_subtasks(
    compaction_bytes: int,
    subtask_bytes: int,
    kv_bytes: int = DEFAULT_KV_BYTES,
) -> list[tuple[int, int]]:
    """Split a compaction into equal sub-task ``(bytes, entries)`` shapes."""
    if compaction_bytes < 1 or subtask_bytes < 1:
        raise ValueError("sizes must be positive")
    sizes = []
    remaining = compaction_bytes
    while remaining > 0:
        n = min(subtask_bytes, remaining)
        sizes.append((n, max(1, n // kv_bytes)))
        remaining -= n
    return sizes
