"""The paper's analytical bandwidth model (Equations 1-7, §III).

All functions take the per-sub-task times of one data block / sub-task
of length ``l`` bytes and return bandwidths in bytes/second or
dimensionless speedups.  Notation follows the paper:

* ``t1`` = t_S1 (read), ``t7`` = t_S7 (write),
* ``tc`` = Σ_{i=2..6} t_Si (the fused compute stage).

======================  ========================================
Eq 1  B_scp             ``l / Σ_{i=1..7} t_Si``
Eq 2  B_pcp             ``l / max(t1, tc, t7)``
Eq 3  B_pcp/B_scp       ideal PCP speedup
Eq 4  B_s-ppcp          ``l / max(t1/k, tc, t7/k)``
Eq 5  speedup vs PCP    ≤ ``min(k, max(t1,t7)/tc)``
Eq 6  B_c-ppcp          ``l / max(t1, tc/k, t7)``
Eq 7  speedup vs PCP    ≤ ``min(k, tc/max(t1,t7))``
======================  ========================================

The classification helpers answer the paper's bound questions: a PCP
pipeline is *I/O-bound* when ``max(t1, t7) > tc`` (HDD case, Fig 6a)
and *CPU-bound* otherwise (SSD case, Fig 6b); S-PPCP turns CPU-bound
past ``k* = max(t1,t7)/tc`` disks and C-PPCP turns I/O-bound past
``k* = tc/max(t1,t7)`` cores.
"""

from __future__ import annotations

import math

from .costmodel import StageTimes, StepTimes

__all__ = [
    "scp_bandwidth",
    "pcp_bandwidth",
    "pcp_speedup",
    "sppcp_bandwidth",
    "sppcp_speedup",
    "sppcp_max_speedup",
    "cppcp_bandwidth",
    "cppcp_speedup",
    "cppcp_max_speedup",
    "classify",
    "sppcp_saturation_k",
    "cppcp_saturation_k",
    "IO_BOUND",
    "CPU_BOUND",
]

IO_BOUND = "io-bound"
CPU_BOUND = "cpu-bound"


def _stages(times: StepTimes | StageTimes) -> StageTimes:
    return times.stages() if isinstance(times, StepTimes) else times


def scp_bandwidth(l: float, times: StepTimes | StageTimes) -> float:
    """Eq 1: sequential procedure bandwidth (bytes/s)."""
    st = _stages(times)
    if st.total <= 0:
        raise ValueError("total step time must be positive")
    return l / st.total


def pcp_bandwidth(l: float, times: StepTimes | StageTimes) -> float:
    """Eq 2: 3-stage pipelined bandwidth (bytes/s)."""
    st = _stages(times)
    bottleneck = max(st.t_read, st.t_compute, st.t_write)
    if bottleneck <= 0:
        raise ValueError("stage times must be positive")
    return l / bottleneck


def pcp_speedup(times: StepTimes | StageTimes) -> float:
    """Eq 3: ideal PCP/SCP speedup (>= 1, <= 3 for three stages)."""
    st = _stages(times)
    return st.total / max(st.t_read, st.t_compute, st.t_write)


def sppcp_bandwidth(l: float, times: StepTimes | StageTimes, k: int) -> float:
    """Eq 4: PCP with k storage devices."""
    _check_k(k)
    st = _stages(times)
    bottleneck = max(st.t_read / k, st.t_compute, st.t_write / k)
    return l / bottleneck


def sppcp_speedup(times: StepTimes | StageTimes, k: int) -> float:
    """Eq 5: S-PPCP bandwidth relative to plain PCP."""
    _check_k(k)
    st = _stages(times)
    base = max(st.t_read, st.t_compute, st.t_write)
    par = max(st.t_read / k, st.t_compute, st.t_write / k)
    return base / par


def sppcp_max_speedup(times: StepTimes | StageTimes, k: int) -> float:
    """Eq 5 bound: min(k, max(t1, t7) / tc), clamped at 1.

    The paper states the bound for the I/O-bound case; when the
    pipeline is already CPU-bound the ratio drops below 1 while the
    actual speedup is exactly 1, hence the clamp.
    """
    st = _stages(times)
    if st.t_compute <= 0:
        return float(k)
    return min(float(k), max(1.0, max(st.t_read, st.t_write) / st.t_compute))


def cppcp_bandwidth(l: float, times: StepTimes | StageTimes, k: int) -> float:
    """Eq 6: PCP with k compute workers."""
    _check_k(k)
    st = _stages(times)
    bottleneck = max(st.t_read, st.t_compute / k, st.t_write)
    return l / bottleneck


def cppcp_speedup(times: StepTimes | StageTimes, k: int) -> float:
    """Eq 7: C-PPCP bandwidth relative to plain PCP."""
    _check_k(k)
    st = _stages(times)
    base = max(st.t_read, st.t_compute, st.t_write)
    par = max(st.t_read, st.t_compute / k, st.t_write)
    return base / par


def cppcp_max_speedup(times: StepTimes | StageTimes, k: int) -> float:
    """Eq 7 bound: min(k, tc / max(t1, t7)), clamped at 1 (see Eq 5)."""
    st = _stages(times)
    io = max(st.t_read, st.t_write)
    if io <= 0:
        return float(k)
    return min(float(k), max(1.0, st.t_compute / io))


def classify(times: StepTimes | StageTimes) -> str:
    """I/O-bound (Fig 6a, HDD) vs CPU-bound (Fig 6b, SSD) pipeline."""
    st = _stages(times)
    return IO_BOUND if max(st.t_read, st.t_write) > st.t_compute else CPU_BOUND


def sppcp_saturation_k(times: StepTimes | StageTimes) -> int:
    """Smallest k at which S-PPCP stops scaling (turns CPU-bound).

    From Eq 4: scaling stops once ``max(t1, t7)/k <= tc``, i.e. at
    ``k* = ceil(max(t1, t7) / tc)``.
    """
    st = _stages(times)
    if st.t_compute <= 0:
        raise ValueError("compute time must be positive")
    return max(1, math.ceil(max(st.t_read, st.t_write) / st.t_compute))


def cppcp_saturation_k(times: StepTimes | StageTimes) -> int:
    """Smallest k at which C-PPCP stops scaling (turns I/O-bound)."""
    st = _stages(times)
    io = max(st.t_read, st.t_write)
    if io <= 0:
        raise ValueError("I/O time must be positive")
    return max(1, math.ceil(st.t_compute / io))


def _check_k(k: int) -> None:
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
