"""The seven compaction steps (paper §II-A, Figure 2).

Each function is one step of the per-data-block compaction procedure:

=====  ===========  ==============================================
step   resource     function
=====  ===========  ==============================================
S1     I/O          :func:`step_read` — fetch stored blocks
S2     CPU          :func:`step_checksum` — verify block integrity
S3     CPU          :func:`step_decompress` — restore raw blocks
S4     CPU          :func:`step_merge` — merge-sort the key range,
                    build new data blocks
S5     CPU          :func:`step_compress` — compress new blocks
S6     CPU          :func:`step_rechecksum` — checksum new blocks
S7     I/O          :func:`step_write` — append to output tables
=====  ===========  ==============================================

They are *functional*: every procedure variant (SCP, PCP, S-PPCP,
C-PPCP) composes exactly these functions, so the merged output is
bit-identical regardless of scheduling — the property the paper relies
on ("there is no data dependency among the data blocks") and that our
equivalence tests assert.

S2+S3 and S5+S6 are fused into the on-disk framing helpers of
:mod:`repro.lsm.table_format` at the byte level, but are exposed here
as distinct steps so profiling can attribute time per step (Figs 5,
8, 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..codec.checksum import Checksummer
from ..codec.compress import Codec
from ..codec.varint import get_fixed32
from ..devices.vfs import ReadableFile
from ..lsm.blockfmt import Block, BlockBuilder
from ..lsm.bloom import bloom_hash
from ..lsm.ikey import KIND_DELETE, decode_internal_key, internal_compare
from ..lsm.iterators import merge_iterators
from ..lsm.table_format import (
    BLOCK_TRAILER_SIZE,
    COMPRESSION_TAGS,
    TAG_TO_CODEC,
    TableCorruption,
)
from ..lsm.table_sink import EncodedBlock

__all__ = [
    "StoredBlock",
    "RawBlock",
    "MergedBlock",
    "step_read",
    "step_checksum",
    "step_decompress",
    "step_merge",
    "step_compress",
    "step_rechecksum",
    "step_write",
]


@dataclass(frozen=True)
class StoredBlock:
    """S1 output: a block exactly as stored (payload + trailer)."""

    source: int  # which input run this came from
    data: bytes


@dataclass(frozen=True)
class RawBlock:
    """S3 output: a decompressed, parseable block."""

    source: int
    raw: bytes


@dataclass(frozen=True)
class MergedBlock:
    """S4 output: a rebuilt (uncompressed) data block with metadata."""

    raw: bytes
    first_key: bytes
    last_key: bytes
    num_entries: int
    key_hashes: tuple[int, ...]


def step_read(
    files: Sequence[ReadableFile],
    handles_per_source: Sequence[Sequence["object"]],
) -> list[StoredBlock]:
    """S1 READ: fetch each input block (with its trailer) from disk."""
    out: list[StoredBlock] = []
    for source, (file, handles) in enumerate(zip(files, handles_per_source)):
        for handle in handles:
            stored = file.pread(handle.offset, handle.size + BLOCK_TRAILER_SIZE)
            if len(stored) != handle.size + BLOCK_TRAILER_SIZE:
                raise TableCorruption(
                    f"short read: offset {handle.offset} in source {source}"
                )
            out.append(StoredBlock(source, stored))
    return out


def step_checksum(blocks: Sequence[StoredBlock], checksummer: Checksummer) -> None:
    """S2 CHECKSUM: verify each block against its stored trailer CRC."""
    for block in blocks:
        payload_and_tag = block.data[:-4]
        crc = get_fixed32(block.data, len(block.data) - 4)
        if not checksummer.verify(payload_and_tag, crc):
            raise TableCorruption(
                f"compaction input checksum mismatch (source {block.source})"
            )


def step_decompress(blocks: Sequence[StoredBlock]) -> list[RawBlock]:
    """S3 DECOMPRESS: restore the original block contents."""
    from ..codec.compress import get_codec

    out: list[RawBlock] = []
    for block in blocks:
        tag = block.data[-BLOCK_TRAILER_SIZE]
        try:
            codec_name = TAG_TO_CODEC[tag]
        except KeyError:
            raise TableCorruption(f"unknown compression tag {tag}") from None
        payload = block.data[:-BLOCK_TRAILER_SIZE]
        out.append(RawBlock(block.source, get_codec(codec_name).decompress(payload)))
    return out


def step_merge(
    blocks: Sequence[RawBlock],
    lower_bound: Optional[bytes],
    upper_bound: Optional[bytes],
    block_bytes: int,
    restart_interval: int = 16,
    drop_deletes: bool = False,
    n_sources: Optional[int] = None,
    smallest_snapshot: Optional[int] = None,
) -> list[MergedBlock]:
    """S4 SORT: merge entries in [lower, upper) user-key range.

    * Sources are merged newest-first: blocks from source 0 shadow
      blocks from source 1, etc. (callers pass the upper component
      before the lower component).
    * A version is dropped when a newer version of the same user key
      has sequence <= ``smallest_snapshot`` (LevelDB's rule: nothing
      can ever observe the older one).  With no live snapshots
      (``smallest_snapshot=None``) only the newest version survives.
    * Tombstones are dropped only when ``drop_deletes`` (no older data
      below the output level) *and* no snapshot can still see them.
    * Output is re-blocked into ``block_bytes``-sized data blocks.
    """
    n_sources = n_sources if n_sources is not None else (
        max((b.source for b in blocks), default=-1) + 1
    )
    streams: list[Iterator[tuple[bytes, bytes]]] = []
    for source in range(n_sources):
        source_blocks = [b for b in blocks if b.source == source]
        streams.append(_entries_of(source_blocks))
    merged = merge_iterators(streams)

    from ..lsm.ikey import MAX_SEQUENCE

    if smallest_snapshot is None:
        smallest_snapshot = MAX_SEQUENCE
    out: list[MergedBlock] = []
    builder = BlockBuilder(restart_interval, compare=internal_compare)
    first_key: Optional[bytes] = None
    last_key: Optional[bytes] = None
    hashes: list[int] = []
    prev_user: Optional[bytes] = None
    last_seq_for_key = MAX_SEQUENCE + 1

    def _flush() -> None:
        nonlocal builder, first_key, last_key, hashes
        if builder.empty:
            return
        out.append(
            MergedBlock(
                raw=builder.finish(),
                first_key=first_key,
                last_key=last_key,
                num_entries=builder.num_entries,
                key_hashes=tuple(hashes),
            )
        )
        builder = BlockBuilder(restart_interval, compare=internal_compare)
        first_key = None
        last_key = None
        hashes = []

    for ikey, value in merged:
        user, seq, kind = decode_internal_key(ikey)
        if lower_bound is not None and user < lower_bound:
            continue
        if upper_bound is not None and user >= upper_bound:
            continue
        if user != prev_user:
            prev_user = user
            last_seq_for_key = MAX_SEQUENCE + 1
        drop = False
        if last_seq_for_key <= smallest_snapshot:
            # A newer version visible to every snapshot shadows this one.
            drop = True
        elif kind == KIND_DELETE and seq <= smallest_snapshot and drop_deletes:
            drop = True
        last_seq_for_key = seq
        if drop:
            continue
        if first_key is None:
            first_key = ikey
        builder.add(ikey, value)
        last_key = ikey
        hashes.append(bloom_hash(user))
        if builder.current_size_estimate() >= block_bytes:
            _flush()
    _flush()
    return out


def _entries_of(blocks: Sequence[RawBlock]) -> Iterator[tuple[bytes, bytes]]:
    for block in blocks:
        yield from Block(block.raw, compare=internal_compare)


def step_compress(blocks: Sequence[MergedBlock], codec: Codec) -> list[tuple[MergedBlock, bytes, int]]:
    """S5 COMPRESS: compress each rebuilt block.

    Returns ``(merged, payload, tag)`` triples; incompressible blocks
    fall back to the ``null`` tag (same heuristic as the table
    builder).
    """
    out = []
    for block in blocks:
        compressed = codec.compress(block.raw)
        if codec.name != "null" and len(compressed) < len(block.raw):
            out.append((block, compressed, COMPRESSION_TAGS[codec.name]))
        else:
            out.append((block, block.raw, COMPRESSION_TAGS["null"]))
    return out


def step_rechecksum(
    compressed: Sequence[tuple[MergedBlock, bytes, int]],
    checksummer: Checksummer,
) -> list[EncodedBlock]:
    """S6 RE-CHECKSUM: frame each compressed block with trailer CRC."""
    from ..codec.varint import put_fixed32

    out: list[EncodedBlock] = []
    for block, payload, tag in compressed:
        crc = checksummer.masked(payload + bytes([tag]))
        stored = payload + bytes([tag]) + put_fixed32(crc)
        out.append(
            EncodedBlock(
                stored=stored,
                first_key=block.first_key,
                last_key=block.last_key,
                num_entries=block.num_entries,
                key_hashes=block.key_hashes,
                uncompressed_bytes=len(block.raw),
            )
        )
    return out


def step_write(blocks: Sequence[EncodedBlock], sink) -> int:
    """S7 WRITE: append finished blocks to the output table sink.

    Returns the number of stored bytes written.
    """
    written = 0
    for block in blocks:
        sink.append(block)
        written += len(block.stored)
    return written
