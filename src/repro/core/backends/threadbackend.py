"""Real-thread execution of the compaction procedures.

This backend actually runs the seven steps on real data with real
``threading`` workers and bounded queues — the implementation a C++
port would mirror, and the functional engine the DB uses.  It measures
wall-clock stage times, but NOTE: under CPython's GIL the compute
stages of concurrent sub-tasks serialize, so measured speedups are a
*lower bound* on what the schedule allows; quantitative experiments
use :mod:`repro.core.backends.simbackend` instead (see DESIGN.md).

Write ordering: sub-tasks finish compute in any order when
``compute_workers > 1``, but output tables must be key-ordered, so the
write stage runs through :class:`ReorderBuffer`, releasing sub-task
results strictly by index.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Sequence

from ...analysis.locksan import make_lock
from ...codec.checksum import Checksummer
from ...codec.compress import Codec
from ...lsm.table_sink import EncodedBlock, TableSink
from ...obs.tracer import NULL_TRACER, Tracer
from ..steps import (
    step_checksum,
    step_compress,
    step_decompress,
    step_merge,
    step_read,
    step_rechecksum,
    step_write,
)
from ..subtask import SubTask

__all__ = ["ExecutionStats", "ReorderBuffer", "run_subtask_compute",
           "execute_scp", "execute_pipelined", "execute_pipelined_pooled"]

_SENTINEL = object()


@dataclass
class ExecutionStats:
    """Wall-clock accounting of a functional compaction run."""

    wall_seconds: float = 0.0
    n_subtasks: int = 0
    input_bytes: int = 0
    output_bytes: int = 0
    entries_out: int = 0
    stage_seconds: dict[str, float] = field(
        default_factory=lambda: {"read": 0.0, "compute": 0.0, "write": 0.0}
    )

    def bandwidth(self) -> float:
        return self.input_bytes / self.wall_seconds if self.wall_seconds > 0 else 0.0


class ReorderBuffer:
    """Release out-of-order results strictly by sub-task index."""

    def __init__(self) -> None:
        self._pending: dict[int, object] = {}
        self._next = 0

    def push(self, index: int, item: object) -> list[object]:
        """Insert a result; return the (possibly empty) ready run."""
        if index < self._next or index in self._pending:
            raise ValueError(f"duplicate or stale sub-task index {index}")
        self._pending[index] = item
        ready = []
        while self._next in self._pending:
            ready.append(self._pending.pop(self._next))
            self._next += 1
        return ready

    def __len__(self) -> int:
        return len(self._pending)


def run_subtask_read(subtask: SubTask, tracer: Tracer = NULL_TRACER) -> list:
    """S1 for one sub-task: fetch every input block."""
    files = [run.table.file for run in subtask.runs]
    handles = [run.handles for run in subtask.runs]
    with tracer.span("S1:read", cat="read", subtask=subtask.index):
        return step_read(files, handles)


def run_subtask_compute(
    subtask: SubTask,
    stored_blocks: list,
    codec: Codec,
    checksummer: Checksummer,
    block_bytes: int,
    restart_interval: int,
    drop_deletes: bool,
    smallest_snapshot=None,
    tracer: Tracer = NULL_TRACER,
) -> list[EncodedBlock]:
    """S2-S6 for one sub-task: verify, decompress, merge, re-encode."""
    i = subtask.index
    with tracer.span("S2:checksum", cat="compute", subtask=i):
        step_checksum(stored_blocks, checksummer)
    with tracer.span("S3:decompress", cat="compute", subtask=i):
        raw = step_decompress(stored_blocks)
    with tracer.span("S4:merge", cat="compute", subtask=i):
        merged = step_merge(
            raw,
            subtask.lower,
            subtask.upper,
            block_bytes,
            restart_interval,
            drop_deletes,
            n_sources=len(subtask.runs),
            smallest_snapshot=smallest_snapshot,
        )
    with tracer.span("S5:compress", cat="compute", subtask=i):
        compressed = step_compress(merged, codec)
    with tracer.span("S6:rechecksum", cat="compute", subtask=i):
        return step_rechecksum(compressed, checksummer)


def execute_scp(
    subtasks: Sequence[SubTask],
    sink: TableSink,
    codec: Codec,
    checksummer: Checksummer,
    block_bytes: int,
    restart_interval: int = 16,
    drop_deletes: bool = False,
    smallest_snapshot=None,
    tracer: Tracer = NULL_TRACER,
) -> ExecutionStats:
    """Sequential Compaction Procedure: one sub-task at a time."""
    stats = ExecutionStats()
    t_start = time.perf_counter()
    for subtask in subtasks:
        t0 = time.perf_counter()
        stored = run_subtask_read(subtask, tracer=tracer)
        t1 = time.perf_counter()
        encoded = run_subtask_compute(
            subtask, stored, codec, checksummer, block_bytes,
            restart_interval, drop_deletes, smallest_snapshot,
            tracer=tracer,
        )
        t2 = time.perf_counter()
        with tracer.span("S7:write", cat="write", subtask=subtask.index):
            written = step_write(encoded, sink)
        t3 = time.perf_counter()
        stats.stage_seconds["read"] += t1 - t0
        stats.stage_seconds["compute"] += t2 - t1
        stats.stage_seconds["write"] += t3 - t2
        stats.n_subtasks += 1
        stats.input_bytes += subtask.input_bytes()
        stats.output_bytes += written
        stats.entries_out += sum(b.num_entries for b in encoded)
    stats.wall_seconds = time.perf_counter() - t_start
    return stats


def execute_pipelined(
    subtasks: Sequence[SubTask],
    sink: TableSink,
    codec: Codec,
    checksummer: Checksummer,
    block_bytes: int,
    restart_interval: int = 16,
    drop_deletes: bool = False,
    compute_workers: int = 1,
    queue_capacity: int = 2,
    smallest_snapshot=None,
    tracer: Tracer = NULL_TRACER,
) -> ExecutionStats:
    """PCP / C-PPCP with real threads.

    Three stages — read thread, ``compute_workers`` compute threads,
    write thread — connected by bounded queues.  The write thread
    reorders results by sub-task index before appending to ``sink``.
    Any stage exception cancels the run and re-raises.
    """
    if compute_workers < 1:
        raise ValueError("compute_workers must be >= 1")
    stats = ExecutionStats()
    q1: queue.Queue = queue.Queue(maxsize=queue_capacity)
    q2: queue.Queue = queue.Queue(maxsize=queue_capacity)
    errors: list[BaseException] = []
    error_lock = make_lock("pcp.errors")
    stage_lock = make_lock("pcp.stage_stats")

    def fail(exc: BaseException) -> None:
        with error_lock:
            errors.append(exc)

    def reader() -> None:
        try:
            for subtask in subtasks:
                if errors:
                    break
                t0 = time.perf_counter()
                stored = run_subtask_read(subtask, tracer=tracer)
                with stage_lock:
                    stats.stage_seconds["read"] += time.perf_counter() - t0
                q1.put((subtask, stored))
        except BaseException as exc:  # pragma: no cover - defensive
            fail(exc)
        finally:
            for _ in range(compute_workers):
                q1.put(_SENTINEL)

    def computer() -> None:
        try:
            while True:
                item = q1.get()
                if item is _SENTINEL:
                    break
                if errors:
                    continue
                subtask, stored = item
                t0 = time.perf_counter()
                encoded = run_subtask_compute(
                    subtask, stored, codec, checksummer, block_bytes,
                    restart_interval, drop_deletes, smallest_snapshot,
                    tracer=tracer,
                )
                with stage_lock:
                    stats.stage_seconds["compute"] += time.perf_counter() - t0
                q2.put((subtask.index, subtask, encoded))
        except BaseException as exc:
            fail(exc)

    def writer() -> None:
        reorder = ReorderBuffer()
        expected = len(subtasks)
        done = 0
        try:
            while done < expected and not errors:
                index, subtask, encoded = q2.get()
                for sub, enc in reorder.push(index, (subtask, encoded)):
                    t0 = time.perf_counter()
                    with tracer.span("S7:write", cat="write", subtask=sub.index):
                        written = step_write(enc, sink)
                    with stage_lock:
                        stats.stage_seconds["write"] += time.perf_counter() - t0
                        stats.n_subtasks += 1
                        stats.input_bytes += sub.input_bytes()
                        stats.output_bytes += written
                        stats.entries_out += sum(b.num_entries for b in enc)
                    done += 1
        except BaseException as exc:  # pragma: no cover - defensive
            fail(exc)

    t_start = time.perf_counter()
    threads = [threading.Thread(target=reader, name="pcp-read")]
    threads += [
        threading.Thread(target=computer, name=f"pcp-compute{i}")
        for i in range(compute_workers)
    ]
    write_thread = threading.Thread(target=writer, name="pcp-write")

    for t in threads:
        t.start()
    write_thread.start()
    for t in threads:
        t.join()
    # Unblock the writer if an error starved it.
    if errors:
        q2.put((10**9, None, None))
    write_thread.join()
    stats.wall_seconds = time.perf_counter() - t_start
    if errors:
        raise errors[0]
    return stats


def execute_pipelined_pooled(
    subtasks: Sequence[SubTask],
    sink: TableSink,
    codec: Codec,
    checksummer: Checksummer,
    block_bytes: int,
    pool,
    restart_interval: int = 16,
    drop_deletes: bool = False,
    queue_capacity: int = 2,
    smallest_snapshot=None,
    tracer: Tracer = NULL_TRACER,
) -> ExecutionStats:
    """PCP with the compute stage on a *shared*, externally owned pool.

    The per-compaction variant (:func:`execute_pipelined`) spawns its
    own compute threads; with N shards compacting concurrently that is
    N × k threads.  Here the caller thread runs S1 (read) and S7
    (write) itself and submits each sub-task's S2–S6 to ``pool``
    (anything with ``submit(fn, *args) -> Future``, e.g.
    :class:`repro.cluster.SharedComputePool`), keeping up to
    ``queue_capacity`` sub-tasks in flight.  Reads of upcoming
    sub-tasks therefore overlap the pool's compute of earlier ones —
    the paper's 3-stage overlap — while *aggregate* compute concurrency
    across every concurrent compaction stays bounded by the pool.

    Results complete in submission order (a FIFO of futures), so no
    reorder buffer is needed and outputs stay key-ordered.  A failed
    sub-task re-raises in the caller after draining in-flight futures,
    preserving the retry/quarantine contract of the DB's compaction.
    """
    if queue_capacity < 1:
        raise ValueError("queue_capacity must be >= 1")
    stats = ExecutionStats()

    def compute_job(subtask: SubTask, stored: list):
        t0 = time.perf_counter()
        encoded = run_subtask_compute(
            subtask, stored, codec, checksummer, block_bytes,
            restart_interval, drop_deletes, smallest_snapshot,
            tracer=tracer,
        )
        return encoded, time.perf_counter() - t0

    t_start = time.perf_counter()
    pending: list = []  # FIFO of (subtask, future)
    iterator = iter(subtasks)

    def admit() -> bool:
        subtask = next(iterator, None)
        if subtask is None:
            return False
        t0 = time.perf_counter()
        stored = run_subtask_read(subtask, tracer=tracer)
        stats.stage_seconds["read"] += time.perf_counter() - t0
        pending.append((subtask, pool.submit(compute_job, subtask, stored)))
        return True

    try:
        while len(pending) < queue_capacity and admit():
            pass
        while pending:
            subtask, future = pending.pop(0)
            encoded, compute_s = future.result()
            stats.stage_seconds["compute"] += compute_s
            t0 = time.perf_counter()
            with tracer.span("S7:write", cat="write", subtask=subtask.index):
                written = step_write(encoded, sink)
            stats.stage_seconds["write"] += time.perf_counter() - t0
            stats.n_subtasks += 1
            stats.input_bytes += subtask.input_bytes()
            stats.output_bytes += written
            stats.entries_out += sum(b.num_entries for b in encoded)
            admit()
    except BaseException:
        # Let in-flight compute settle before re-raising so no pool
        # worker is left touching this compaction's tables.
        for _subtask, future in pending:
            future.cancel()
        for _subtask, future in pending:
            try:
                future.result()
            except BaseException:  # repro: noqa[RA105] original error wins
                pass
        raise
    stats.wall_seconds = time.perf_counter() - t_start
    return stats
