"""Virtual-time execution of the compaction procedures.

This backend runs the *schedule* of SCP/PCP/S-PPCP/C-PPCP on the
discrete-event kernel with per-sub-task stage service times from the
cost model.  It produces deterministic makespans, stage busy times, and
timelines — the quantities behind every figure of the paper — without
depending on wall-clock behaviour (which the GIL would distort for a
pure-Python threaded build; see DESIGN.md).

Model choices, stated explicitly:

* The read stage and the write stage are separate servers even on a
  single device (``shared_io=False``), matching the paper's Eq 2 where
  ``t1`` and ``t7`` appear as independent ``max`` terms.  NCQ and the
  HDD write-back buffer make this defensible; ``shared_io=True`` is
  provided as an ablation where S1 and S7 contend for one device.
* S-PPCP assigns sub-task *i* to device *i mod k* (paper: "Step 1 of
  sub-task 1 is scheduled on disk 1 and Step 1 of sub-task 2 is
  scheduled on disk 2"), with one read worker and one write worker per
  device.
* C-PPCP runs ``compute_workers`` identical compute workers pulling
  from the inter-stage queue.  ``handoff_overhead_s`` models the
  serialized synchronisation cost of the shared queues: each handoff
  holds a global lock for ``handoff_overhead_s * (compute_workers-1)``
  seconds, which is what makes throughput *decline* past the
  saturation point (paper Fig 12(d-f): "this is due to the overhead of
  creation and synchronization of multiple threads").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ...sim import Resource, Simulator, Store, StoreClosed
from ..costmodel import StageTimes

__all__ = ["SimJob", "PipelineConfig", "TimelineEvent", "ScheduleResult",
           "simulate_scp", "simulate_pipeline"]


@dataclass(frozen=True)
class SimJob:
    """One sub-task as the scheduler sees it."""

    index: int
    times: StageTimes
    nbytes: int


@dataclass(frozen=True)
class PipelineConfig:
    """Shape of the pipelined procedure.

    PCP      → defaults.
    S-PPCP   → ``n_devices=k`` (read/write workers follow the device
               count automatically).
    C-PPCP   → ``compute_workers=k`` (optionally with
               ``handoff_overhead_s`` > 0).
    """

    compute_workers: int = 1
    n_devices: int = 1
    queue_capacity: int = 2
    shared_io: bool = False
    handoff_overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if self.compute_workers < 1:
            raise ValueError("compute_workers must be >= 1")
        if self.n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.handoff_overhead_s < 0:
            raise ValueError("handoff_overhead_s must be >= 0")


@dataclass(frozen=True)
class TimelineEvent:
    """One stage execution interval."""

    index: int
    stage: str  # "read" | "compute" | "write"
    start: float
    end: float
    worker: int


@dataclass
class ScheduleResult:
    """Outcome of a simulated compaction schedule."""

    makespan: float
    n_subtasks: int
    total_bytes: int
    stage_busy: dict[str, float]
    timeline: list[TimelineEvent] = field(default_factory=list)

    def bandwidth(self) -> float:
        """Compaction bandwidth: input bytes per virtual second."""
        if self.makespan <= 0:
            return 0.0
        return self.total_bytes / self.makespan

    def stage_utilization(self, stage: str, capacity: int = 1) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.stage_busy.get(stage, 0.0) / (self.makespan * capacity)

    def breakdown_fractions(self) -> dict[str, float]:
        """Busy-time share per stage (sums to 1 over busy time)."""
        total = sum(self.stage_busy.values())
        if total <= 0:
            return {k: 0.0 for k in self.stage_busy}
        return {k: v / total for k, v in self.stage_busy.items()}


def simulate_scp(jobs: Sequence[SimJob]) -> ScheduleResult:
    """Sequential Compaction Procedure: strict S1..S7 per sub-task.

    The makespan is exactly ``Σ (t1 + tc + t7)`` (Eq 1's denominator
    summed over sub-tasks); a timeline is still produced for plotting.
    """
    now = 0.0
    timeline: list[TimelineEvent] = []
    busy = {"read": 0.0, "compute": 0.0, "write": 0.0}
    for job in jobs:
        t = job.times
        timeline.append(TimelineEvent(job.index, "read", now, now + t.t_read, 0))
        now += t.t_read
        timeline.append(
            TimelineEvent(job.index, "compute", now, now + t.t_compute, 0)
        )
        now += t.t_compute
        timeline.append(TimelineEvent(job.index, "write", now, now + t.t_write, 0))
        now += t.t_write
        busy["read"] += t.t_read
        busy["compute"] += t.t_compute
        busy["write"] += t.t_write
    return ScheduleResult(
        makespan=now,
        n_subtasks=len(jobs),
        total_bytes=sum(j.nbytes for j in jobs),
        stage_busy=busy,
        timeline=timeline,
    )


def simulate_pipeline(
    jobs: Sequence[SimJob], config: Optional[PipelineConfig] = None
) -> ScheduleResult:
    """Pipelined Compaction Procedure and its parallel variants."""
    config = config or PipelineConfig()
    jobs = list(jobs)
    if not jobs:
        return ScheduleResult(0.0, 0, 0, {"read": 0.0, "compute": 0.0, "write": 0.0})

    sim = Simulator()
    k = config.n_devices
    # One resource per device for reads; writes either share it
    # (shared_io) or get their own server per device.
    read_res = [Resource(sim, 1, f"disk{d}.read") for d in range(k)]
    if config.shared_io:
        write_res = read_res
    else:
        write_res = [Resource(sim, 1, f"disk{d}.write") for d in range(k)]

    q1 = Store(sim, config.queue_capacity, "read->compute")
    q2 = Store(sim, config.queue_capacity, "compute->write")
    sync_lock = Resource(sim, 1, "handoff") if (
        config.handoff_overhead_s > 0 and config.compute_workers > 1
    ) else None
    sync_cost = config.handoff_overhead_s * (config.compute_workers - 1)

    busy = {"read": 0.0, "compute": 0.0, "write": 0.0}
    timeline: list[TimelineEvent] = []

    def record(index: int, stage: str, start: float, worker: int) -> None:
        end = sim.now
        busy[stage] += end - start
        timeline.append(TimelineEvent(index, stage, start, end, worker))

    # --- read stage: one worker per device, sub-task i -> device i%k.
    def read_worker(worker_id: int):
        for job in jobs[worker_id::k]:
            res = read_res[worker_id]
            req = res.request(f"read:{job.index}")
            yield req
            start = sim.now
            try:
                yield sim.timeout(job.times.t_read)
            finally:
                res.release(req)
            record(job.index, "read", start, worker_id)
            yield q1.put(job)

    # --- compute stage: compute_workers identical workers.
    def compute_worker(worker_id: int):
        while True:
            try:
                job = yield q1.get()
            except StoreClosed:
                return
            if sync_lock is not None:
                yield from sync_lock.acquire(sync_cost, f"in:{job.index}")
            start = sim.now
            yield sim.timeout(job.times.t_compute)
            record(job.index, "compute", start, worker_id)
            if sync_lock is not None:
                yield from sync_lock.acquire(sync_cost, f"out:{job.index}")
            yield q2.put(job)

    # --- write stage: one worker per device.
    def write_worker(worker_id: int):
        while True:
            try:
                job = yield q2.get()
            except StoreClosed:
                return
            res = write_res[job.index % k]
            req = res.request(f"write:{job.index}")
            yield req
            start = sim.now
            try:
                yield sim.timeout(job.times.t_write)
            finally:
                res.release(req)
            record(job.index, "write", start, worker_id)

    readers = [sim.process(read_worker(w), f"reader{w}") for w in range(k)]
    computes = [
        sim.process(compute_worker(w), f"compute{w}")
        for w in range(config.compute_workers)
    ]
    for w in range(k):
        sim.process(write_worker(w), f"writer{w}")

    # Close q1 when all readers finish; close q2 when computes finish.
    def closer(procs, store):
        yield sim.all_of(procs)
        store.close()

    sim.process(closer(readers, q1), "close-q1")
    sim.process(closer(computes, q2), "close-q2")

    makespan = sim.run()
    timeline.sort(key=lambda e: (e.start, e.index))
    return ScheduleResult(
        makespan=makespan,
        n_subtasks=len(jobs),
        total_bytes=sum(j.nbytes for j in jobs),
        stage_busy=busy,
        timeline=timeline,
    )
