"""Execution backends: virtual-time (DES) and real threads."""

from .simbackend import (
    PipelineConfig,
    ScheduleResult,
    SimJob,
    TimelineEvent,
    simulate_pipeline,
    simulate_scp,
)
from .threadbackend import (
    ExecutionStats,
    ReorderBuffer,
    execute_pipelined,
    execute_scp,
)

__all__ = [
    "ExecutionStats",
    "PipelineConfig",
    "ReorderBuffer",
    "ScheduleResult",
    "SimJob",
    "TimelineEvent",
    "execute_pipelined",
    "execute_scp",
    "simulate_pipeline",
    "simulate_scp",
]
