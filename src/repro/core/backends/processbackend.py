"""C-PPCP with *real* parallelism: compute stage on worker processes.

The thread backend's compute workers serialize on CPython's GIL, so
its wall-clock gains cannot demonstrate the paper's CPU parallelism.
This backend ships each sub-task's S2-S6 to a
``concurrent.futures.ProcessPoolExecutor``: the parent process performs
S1 (reads) and S7 (ordered writes) while workers verify, decompress,
merge, compress, and re-checksum in genuinely parallel interpreters.

Costs and caveats (why this is optional, not the default):

* every stored block is pickled to the worker and every encoded block
  back — fine for compaction-sized payloads, wasteful for tiny ones;
* worker startup is ~100 ms per process; the pool should be reused
  across compactions (pass ``pool=``) in a long-lived DB;
* determinism: output remains bit-identical to SCP because merge work
  is order-independent and writes are reordered by sub-task index.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Optional, Sequence

from ...lsm.table_sink import EncodedBlock, TableSink
from ...obs.tracer import NULL_TRACER, Tracer
from ..steps import step_write
from ..subtask import SubTask
from .threadbackend import ExecutionStats, ReorderBuffer, run_subtask_read

__all__ = ["compute_remote", "execute_pipelined_mp"]


def compute_remote(
    stored_payloads: list[tuple[int, bytes]],
    lower: Optional[bytes],
    upper: Optional[bytes],
    codec_name: str,
    checksummer_name: str,
    block_bytes: int,
    restart_interval: int,
    drop_deletes: bool,
    smallest_snapshot: Optional[int],
) -> list[EncodedBlock]:
    """S2-S6 for one sub-task, runnable in a worker process.

    Takes only picklable primitives; reconstructs codecs by name.
    """
    from ...codec.checksum import get_checksummer
    from ...codec.compress import get_codec
    from ..steps import (
        StoredBlock,
        step_checksum,
        step_compress,
        step_decompress,
        step_merge,
        step_rechecksum,
    )

    checksummer = get_checksummer(checksummer_name)
    codec = get_codec(codec_name)
    stored = [StoredBlock(source, data) for source, data in stored_payloads]
    n_sources = max((s for s, _ in stored_payloads), default=-1) + 1
    step_checksum(stored, checksummer)
    raw = step_decompress(stored)
    merged = step_merge(
        raw, lower, upper, block_bytes, restart_interval, drop_deletes,
        n_sources=n_sources, smallest_snapshot=smallest_snapshot,
    )
    compressed = step_compress(merged, codec)
    return step_rechecksum(compressed, checksummer)


def execute_pipelined_mp(
    subtasks: Sequence[SubTask],
    sink: TableSink,
    codec_name: str,
    checksummer_name: str,
    block_bytes: int,
    restart_interval: int = 16,
    drop_deletes: bool = False,
    compute_workers: int = 2,
    max_inflight: Optional[int] = None,
    smallest_snapshot: Optional[int] = None,
    pool: Optional[ProcessPoolExecutor] = None,
    tracer: Tracer = NULL_TRACER,
) -> ExecutionStats:
    """Run a compaction with process-parallel compute.

    The parent reads sub-tasks ahead (bounded by ``max_inflight``),
    dispatches compute to the pool, and writes completed sub-tasks in
    index order.

    Tracing: S1/S7 spans come from the parent like the thread backend's;
    the remote S2–S6 work is recorded as one coarse ``S2-S6:compute``
    span per sub-task spanning dispatch→completion as observed by the
    parent (queue wait included — worker processes aren't instrumented).
    """
    if compute_workers < 1:
        raise ValueError("compute_workers must be >= 1")
    max_inflight = max_inflight or (2 * compute_workers)
    stats = ExecutionStats()
    own_pool = pool is None
    executor = pool or ProcessPoolExecutor(max_workers=compute_workers)
    t_start = time.perf_counter()
    reorder = ReorderBuffer()
    try:
        pending = {}
        dispatched_at: dict = {}
        it = iter(subtasks)
        exhausted = False
        while True:
            # Keep the pipeline primed: read + dispatch until full.
            while not exhausted and len(pending) < max_inflight:
                subtask = next(it, None)
                if subtask is None:
                    exhausted = True
                    break
                t0 = time.perf_counter()
                stored = run_subtask_read(subtask, tracer=tracer)
                stats.stage_seconds["read"] += time.perf_counter() - t0
                payload = [(b.source, b.data) for b in stored]
                future = executor.submit(
                    compute_remote, payload, subtask.lower, subtask.upper,
                    codec_name, checksummer_name, block_bytes,
                    restart_interval, drop_deletes, smallest_snapshot,
                )
                pending[future] = subtask
                dispatched_at[future] = tracer.now() if tracer.enabled else 0.0
            if not pending:
                break
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                subtask = pending.pop(future)
                t_dispatch = dispatched_at.pop(future, 0.0)
                encoded = future.result()  # re-raises worker exceptions
                if tracer.enabled:
                    tracer.add_complete(
                        "S2-S6:compute", t_dispatch, tracer.now(),
                        cat="compute", thread="mp-pool",
                        subtask=subtask.index,
                    )
                for sub, enc in reorder.push(subtask.index, (subtask, encoded)):
                    t0 = time.perf_counter()
                    with tracer.span("S7:write", cat="write", subtask=sub.index):
                        written = step_write(enc, sink)
                    stats.stage_seconds["write"] += time.perf_counter() - t0
                    stats.n_subtasks += 1
                    stats.input_bytes += sub.input_bytes()
                    stats.output_bytes += written
                    stats.entries_out += sum(b.num_entries for b in enc)
    finally:
        if own_pool:
            executor.shutdown(wait=True)
    stats.wall_seconds = time.perf_counter() - t_start
    # Compute happened remotely: report wall time minus read+write as a
    # coarse compute attribution (overlapped, so this is indicative).
    stats.stage_seconds["compute"] = max(
        0.0,
        stats.wall_seconds
        - stats.stage_seconds["read"]
        - stats.stage_seconds["write"],
    )
    return stats
