"""Pipelined Compaction for the LSM-tree — a full reproduction.

Reimplementation of Zhang et al., "Pipelined Compaction for the
LSM-tree" (IPDPS 2014): an LSM key-value storage engine whose
background compactions can run as the paper's Sequential (SCP),
Pipelined (PCP), Storage-Parallel (S-PPCP), or Computation-Parallel
(C-PPCP) procedures, plus the analytical bandwidth model (Eqs 1-7),
calibrated HDD/SSD device models, a discrete-event scheduler for
deterministic quantitative experiments, and the benchmark harness that
regenerates every figure of the paper's evaluation.

Package map
===========

``repro.db``        the key-value store facade (DB, snapshots, recovery)
``repro.core``      the paper's contribution: compaction procedures,
                    sub-task partitioning, cost model, Eqs 1-7
``repro.lsm``       engine substrate: memtable, WAL, SSTables, levels
``repro.codec``     varints, CRCs, block compression
``repro.devices``   HDD/SSD service-time models + virtual filesystem
``repro.sim``       discrete-event simulation kernel
``repro.workload``  key distributions, insert streams, YCSB mixes
``repro.bench``     profilers, virtual-clock runner, figure drivers

Quick start
===========

>>> from repro import DB, MemStorage, Options, ProcedureSpec
>>> db = DB(MemStorage(), Options(),
...         compaction_spec=ProcedureSpec.pcp())
>>> db.put(b"hello", b"world")
>>> db.get(b"hello")
b'world'
>>> db.close()
"""

from .core import ProcedureSpec
from .db import DB, Snapshot
from .devices import MemStorage, OSStorage
from .lsm import Options, WriteBatch

__version__ = "1.0.0"

__all__ = [
    "DB",
    "MemStorage",
    "OSStorage",
    "Options",
    "ProcedureSpec",
    "Snapshot",
    "WriteBatch",
    "__version__",
]
