"""Primary-side log shipping: buffer, subscriber positions, acks.

The hub attaches to a :class:`repro.db.DB` through its WAL-listener
hook, so every durable write batch lands in an in-memory ring ordered
by sequence.  Subscribers (follower connections held by the server)
pull from the ring with natural backpressure — a slow follower blocks
its own connection's ship loop, never the writers.

Catch-up tiers for a subscriber that starts at sequence ``S``:

1. ``S`` within the live buffer → stream from memory.
2. ``S`` within the DB's retired-WAL retention and the retention
   bridges to the buffer floor → replay retained files, then memory.
3. otherwise → full snapshot (SST streaming), then memory.

Ack bookkeeping doubles as the write path's durability barrier:
``wait_for_acks`` parks a write until enough followers confirmed its
sequence, and ``write_admissible`` is the key-aware STALLED admission
control — a primary whose followers lag too far refuses new writes
instead of silently queueing them.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional

from ..analysis.locksan import make_lock
from ..analysis.racesan import shared_state
from ..lsm.wal import batch_seq_bounds
from .errors import FencedError

__all__ = ["ReplicationHub", "Subscriber"]

#: Default cap on the in-memory record ring.
DEFAULT_BUFFER_BYTES = 4 * 1024 * 1024

#: Per-pull batching bounds (kept well under MAX_FRAME_BYTES).
MAX_PULL_RECORDS = 256
MAX_PULL_BYTES = 1 * 1024 * 1024


class Subscriber:
    """One follower's position in the stream (owned by the hub)."""

    __slots__ = (
        "follower_id", "next_seq", "acked_seq", "preload", "live",
        "acked_at",
    )

    def __init__(self, follower_id: str, next_seq: int) -> None:
        self.follower_id = follower_id
        self.next_seq = next_seq
        self.acked_seq = next_seq - 1
        #: records replayed from retained WAL files at subscribe time.
        self.preload: deque[bytes] = deque()
        self.live = True
        #: monotonic time of the last ack advance (health reporting).
        self.acked_at = time.monotonic()


class ReplicationHub:
    """Fan-out point between one primary DB and its followers."""

    def __init__(
        self,
        db,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        ack_timeout_s: float = 5.0,
        max_follower_lag: Optional[int] = None,
    ) -> None:
        """``max_follower_lag`` (records) turns on admission control:
        when every live follower lags the primary by more than this,
        writes are refused with STALLED until the followers catch up."""
        self._db = db
        self._metrics = db.obs.metrics
        self._events = db.obs.events
        self._cap = buffer_bytes
        self.ack_timeout_s = ack_timeout_s
        self.max_follower_lag = max_follower_lag
        self._lock = make_lock("repl.hub")
        self._cond = threading.Condition(self._lock)
        self._ring_state = shared_state("repl.hub.ring")
        # Ring of (base_seq, last_seq, record, append_time), oldest
        # first; append_time (monotonic) feeds the lag-seconds gauge.
        self._buffer: deque[tuple[int, int, bytes, float]] = deque()
        self._buffer_bytes = 0
        # Append time of the newest record evicted from the ring: a
        # follower whose position fell off the ring lags at least this
        # long.
        self._evicted_time: Optional[float] = None
        # Sequence the next buffered record must start at (buffer floor
        # when the ring is empty).
        self._next_seq = db.last_sequence + 1
        self._subscribers: list[Subscriber] = []
        self._shutdown_reason: Optional[str] = None
        self._ack_wait_hist = self._metrics.histogram("repl.ack_wait_seconds")
        self._metrics.gauge("repl.epoch").set(db.repl_epoch)
        db.add_wal_listener(self._on_record)

    # ------------------------------------------------------ ingestion
    def _on_record(self, base_seq: int, last_seq: int, record: bytes) -> None:
        # Called under the DB lock; keep it allocation-light.
        with self._cond:
            self._ring_state.write()
            self._buffer.append(
                (base_seq, last_seq, record, time.monotonic())
            )
            self._buffer_bytes += len(record)
            self._next_seq = last_seq + 1
            while self._buffer_bytes > self._cap and len(self._buffer) > 1:
                _, _, old, old_time = self._buffer.popleft()
                self._buffer_bytes -= len(old)
                self._evicted_time = old_time
            self._update_lag_gauge()
            self._cond.notify_all()

    def _buffer_floor(self) -> int:
        """Lowest sequence the in-memory ring can still serve."""
        return self._buffer[0][0] if self._buffer else self._next_seq

    # ---------------------------------------------------- subscription
    def subscribe(
        self, follower_id: str, start_seq: int, follower_epoch: int
    ) -> tuple[str, Subscriber]:
        """Register a follower wanting records from ``start_seq`` on.

        Returns ``("wal", sub)`` when the stream can replay from memory
        and/or retained WAL files, or ``("snapshot", sub)`` when the
        follower is too far behind and must receive a full SST snapshot
        first (the caller streams it, then calls
        :meth:`reset_after_snapshot`).  Raises :class:`FencedError`
        when the follower's epoch is newer than ours.
        """
        epoch = self._db.repl_epoch
        if follower_epoch > epoch:
            raise FencedError(
                f"follower epoch {follower_epoch} is newer than primary "
                f"epoch {epoch}: this node was superseded by a promotion"
            )
        sub = Subscriber(follower_id, start_seq)
        with self._cond:
            floor = self._buffer_floor()
            mode = "wal" if start_seq >= floor else "snapshot"
            if mode == "snapshot":
                retention = self._db.wal_retention
                if (
                    retention is not None
                    and retention.covers(start_seq)
                    and retention.ceiling_seq + 1 >= floor
                ):
                    try:
                        sub.preload.extend(
                            record
                            for base, count, record in retention.records_from(
                                start_seq
                            )
                            if base + count - 1 >= start_seq
                        )
                        mode = "wal"
                    except (OSError, ValueError):
                        # A retained file was pruned (or corrupted)
                        # under us: fall back to the snapshot path.
                        sub.preload.clear()
            # Drop a previous incarnation of the same follower id (a
            # reconnect after a kill) so ack counting never double
            # counts one node.
            for old in self._subscribers:
                if old.follower_id == sub.follower_id:
                    old.live = False
            self._subscribers = [
                s for s in self._subscribers if s.live
            ] + [sub]
            self._update_lag_gauge()
            self._cond.notify_all()
        if self._events.enabled:
            self._events.emit(
                "repl.subscribe",
                follower=follower_id,
                mode=mode,
                start_seq=start_seq,
                epoch=epoch,
            )
        return mode, sub

    def reset_after_snapshot(self, sub: Subscriber, last_seq: int) -> None:
        """Position ``sub`` right after a streamed snapshot."""
        with self._cond:
            sub.preload.clear()
            sub.next_seq = last_seq + 1
            sub.acked_seq = max(sub.acked_seq, last_seq)

    def unsubscribe(self, sub: Subscriber) -> None:
        with self._cond:
            sub.live = False
            if sub in self._subscribers:
                self._subscribers.remove(sub)
            self._update_lag_gauge()
            self._cond.notify_all()

    # ------------------------------------------------------- streaming
    def pull(
        self,
        sub: Subscriber,
        max_records: int = MAX_PULL_RECORDS,
        max_bytes: int = MAX_PULL_BYTES,
        timeout: float = 0.5,
    ) -> tuple[str, object]:
        """Blocking pull of the next batch for ``sub``.

        Returns one of ``("records", [record, ...])``, ``("idle",
        None)`` after ``timeout`` with nothing new, ``("gap", None)``
        when the subscriber's position fell out of the buffer (the
        caller restarts with a snapshot), or ``("goodbye", reason)``
        once the hub is shutting down.
        """
        with self._cond:
            while True:
                self._ring_state.read()
                if self._shutdown_reason is not None:
                    return "goodbye", self._shutdown_reason
                if not sub.live:
                    return "goodbye", "subscription replaced"
                batch = self._collect(sub, max_records, max_bytes)
                if batch is None:
                    return "gap", None
                if batch:
                    self._metrics.counter("repl.ship_records").inc(len(batch))
                    self._metrics.counter("repl.ship_bytes").inc(
                        sum(len(r) for r in batch)
                    )
                    return "records", batch
                if not self._cond.wait(timeout=timeout):
                    return "idle", None

    def _collect(
        self, sub: Subscriber, max_records: int, max_bytes: int
    ) -> Optional[list[bytes]]:
        """Next records for ``sub`` (empty = caught up, None = gap)."""
        out: list[bytes] = []
        size = 0
        while sub.preload and len(out) < max_records and size < max_bytes:
            record = sub.preload.popleft()
            out.append(record)
            size += len(record)
            # Each record carries its own sequence span; advancing
            # next_seq per record makes the handoff to the in-memory
            # ring skip any overlap between retained files and buffer.
            base, count = batch_seq_bounds(record)
            sub.next_seq = max(sub.next_seq, base + count)
        if out:
            return out
        if sub.next_seq < self._buffer_floor():
            return None  # evicted out from under the subscriber
        for base_seq, last_seq, record, _t in self._buffer:
            if last_seq < sub.next_seq:
                continue
            if len(out) >= max_records or size >= max_bytes:
                break
            out.append(record)
            size += len(record)
            sub.next_seq = last_seq + 1
        return out

    # ------------------------------------------------------------ acks
    def record_ack(self, sub: Subscriber, acked_seq: int) -> None:
        with self._cond:
            if acked_seq > sub.acked_seq:
                sub.acked_seq = acked_seq
                sub.acked_at = time.monotonic()
                self._metrics.counter("repl.acks").inc()
                self._update_lag_gauge()
                self._cond.notify_all()

    def acked_count(self, seq: int) -> int:
        """How many live followers have acked ``seq`` or beyond."""
        with self._cond:
            return sum(
                1
                for s in self._subscribers
                if s.live and s.acked_seq >= seq
            )

    def wait_for_acks(
        self, seq: int, need: int, timeout: Optional[float] = None
    ) -> bool:
        """Block until ``need`` followers acked ``seq``; False on
        timeout (the caller surfaces STALLED to the client).

        Every wait — satisfied or timed out — records into the
        ``repl.ack_wait_seconds`` histogram, so the exposition shows
        the durability tax ack-gated writes actually pay.
        """
        if need <= 0:
            return True
        if timeout is None:
            timeout = self.ack_timeout_s
        start = time.monotonic()
        deadline = start + timeout
        try:
            with self._cond:
                while True:
                    have = sum(
                        1
                        for s in self._subscribers
                        if s.live and s.acked_seq >= seq
                    )
                    if have >= need:
                        return True
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or self._shutdown_reason is not None:
                        self._metrics.counter(
                            "repl.ack_wait_timeouts"
                        ).inc()
                        return False
                    self._cond.wait(timeout=remaining)
        finally:
            self._ack_wait_hist.record(time.monotonic() - start)

    def majority_need(self) -> int:
        """Follower acks required for a cluster majority (primary
        included): ``majority(n+1) - 1`` with ``n`` live followers."""
        with self._cond:
            n = sum(1 for s in self._subscribers if s.live)
        return (n + 1) // 2

    def resolve_need(self, ack_level: int) -> int:
        """Map a connection's ack level (-1 = majority) to a count."""
        return self.majority_need() if ack_level < 0 else ack_level

    # ------------------------------------------------------- admission
    def lag_records(self) -> int:
        """Lag of the most-caught-up live follower (0 with none)."""
        last = self._db.last_sequence
        with self._cond:
            lags = [
                max(0, last - s.acked_seq)
                for s in self._subscribers
                if s.live
            ]
        return min(lags) if lags else 0

    def write_admissible(self) -> bool:
        """Admission control: False when every follower lags too far
        behind (replication cannot keep up — push back on writers)."""
        if self.max_follower_lag is None:
            return True
        return self.lag_records() <= self.max_follower_lag

    def _lag_seconds(self, sub: Subscriber, now: float) -> float:
        """Age of the oldest record ``sub`` has not acked (lock held).

        0 when fully caught up; when the follower's position already
        fell off the ring, the newest *evicted* record's age is the
        best lower bound available.
        """
        if sub.acked_seq >= self._next_seq - 1:
            return 0.0
        for _base, last, _record, appended in self._buffer:
            if last > sub.acked_seq:
                return max(0.0, now - appended)
        if self._evicted_time is not None:
            return max(0.0, now - self._evicted_time)
        return 0.0

    def _update_lag_gauge(self) -> None:
        # Callers hold the condition lock.
        last = self._db.last_sequence
        now = time.monotonic()
        lags = []
        lag_seconds = []
        for s in self._subscribers:
            if not s.live:
                continue
            lags.append(max(0, last - s.acked_seq))
            lag_seconds.append(self._lag_seconds(s, now))
        self._metrics.gauge("repl.lag_records").set(max(lags) if lags else 0)
        self._metrics.gauge("repl.lag_seconds").set(
            max(lag_seconds) if lag_seconds else 0.0
        )
        self._metrics.gauge("repl.ring_records").set(len(self._buffer))
        self._metrics.gauge("repl.ring_bytes").set(self._buffer_bytes)
        self._metrics.gauge("repl.followers").set(len(lags))

    def refresh_gauges(self) -> None:
        """Recompute the health gauges now (scrape time).

        The gauges otherwise update on write/ack activity; an idle
        primary with a dead follower would keep reporting the stale
        last-event lag, so the exposition path refreshes first.
        """
        with self._cond:
            self._update_lag_gauge()
        self._metrics.gauge("repl.epoch").set(self._db.repl_epoch)

    # ------------------------------------------------------------ admin
    def followers_status(self) -> list[dict]:
        last = self._db.last_sequence
        now = time.monotonic()
        with self._cond:
            return [
                {
                    "id": s.follower_id,
                    "acked_seq": s.acked_seq,
                    "lag_records": max(0, last - s.acked_seq),
                    "lag_seconds": round(self._lag_seconds(s, now), 6),
                    "acked_age_seconds": round(max(0.0, now - s.acked_at), 6),
                }
                for s in self._subscribers
                if s.live
            ]

    @property
    def n_followers(self) -> int:
        with self._cond:
            return sum(1 for s in self._subscribers if s.live)

    def shutdown(self, reason: str = "server shutting down") -> None:
        """Wake every ship loop with a GOODBYE (graceful stop)."""
        first = False
        with self._cond:
            if self._shutdown_reason is None:
                self._shutdown_reason = reason
                first = True
                self._metrics.counter("repl.goodbyes").inc(
                    sum(1 for s in self._subscribers if s.live)
                )
            self._cond.notify_all()
        if first and self._events.enabled:
            self._events.emit("repl.goodbye", reason=reason)

    def detach(self) -> None:
        """Stop observing the DB (hub becomes inert)."""
        self._db.remove_wal_listener(self._on_record)
