"""A shard that lives in another process: the wire as a shard seam.

``RemoteShard`` implements the same shard interface
:class:`repro.cluster.ShardedDB` consumes — the
:class:`repro.cluster.ShardLike` protocol — by speaking the CRC-framed
wire protocol to a ``repro.server`` process.  The PR 5 facade then
composes local and remote shards transparently
(:meth:`repro.cluster.ShardedDB.from_shards`).

Construction performs the version hello and refuses servers whose
protocol major predates replication, so misuse fails with one clear
error instead of a frame desync mid-workload.
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional

from ..analysis.locksan import make_lock
from ..db.db import DBStats
from ..lsm.ikey import KIND_VALUE
from ..obs import Observability
from ..server.client import CircuitBreaker, RetryPolicy, SyncClient
from .errors import ProtocolTooOldError

__all__ = ["RemoteShard"]

#: Page size used by the scan generators.
_SCAN_PAGE = 1024


class RemoteShard:
    """ShardLike adapter over one server connection (thread-safe)."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 30.0,
        ack_level: Optional[int] = None,
        require_protocol: int = 2,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.obs = obs if obs is not None else Observability()
        # SyncClient is not thread-safe; ShardedDB may be driven from
        # several server worker threads, so serialise all calls.
        self._lock = make_lock("repl.remote")
        self._client = SyncClient(
            host,
            port,
            timeout=timeout,
            retry_policy=retry_policy,
            breaker=breaker,
            metrics=self.obs.metrics,
        )
        major, minor = self._client.hello(ack_level=ack_level)
        if major < require_protocol:
            self._client.close()
            raise ProtocolTooOldError(
                f"server {host}:{port} speaks protocol {major}.{minor}; "
                f"remote shards need major >= {require_protocol}"
            )
        self.protocol = (major, minor)

    # ----------------------------------------------------------- writes
    def put(self, key: bytes, value: bytes) -> None:
        with self._lock:
            self._client.put(key, value)

    def delete(self, key: bytes) -> None:
        with self._lock:
            self._client.delete(key)

    def write(self, batch) -> None:
        """Apply a :class:`repro.lsm.wal.WriteBatch` atomically."""
        if len(batch) == 0:
            return
        ops = [
            ("put", key, value) if kind == KIND_VALUE else ("delete", key)
            for kind, key, value in batch
        ]
        with self._lock:
            self._client.batch(ops)

    # ------------------------------------------------------------ reads
    def get(self, key: bytes, snapshot=None) -> Optional[bytes]:
        self._reject_snapshot(snapshot)
        with self._lock:
            return self._client.get(key)

    def multi_get(self, keys, snapshot=None) -> list[Optional[bytes]]:
        self._reject_snapshot(snapshot)
        keys = list(keys)
        with self._lock:
            with self._client.pipeline() as pipe:
                for key in keys:
                    pipe.get(key)
            return pipe.results

    def scan(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        snapshot=None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """Paged forward iteration (each page is one SCAN round trip)."""
        self._reject_snapshot(snapshot)
        cursor = start
        while True:
            with self._lock:
                pairs, truncated = self._client.scan(
                    cursor, end, limit=_SCAN_PAGE
                )
            yield from pairs
            if len(pairs) < _SCAN_PAGE and not truncated:
                return
            # Resume strictly after the last key seen (inclusive start).
            cursor = pairs[-1][0] + b"\x00"

    def scan_reverse(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        snapshot=None,
    ) -> Iterator[tuple[bytes, bytes]]:
        self._reject_snapshot(snapshot)
        cursor = end
        while True:
            with self._lock:
                pairs, truncated = self._client.scan(
                    start, cursor, limit=_SCAN_PAGE, reverse=True
                )
            yield from pairs
            if len(pairs) < _SCAN_PAGE and not truncated:
                return
            # [start, end): the last yielded key is the next exclusive
            # upper bound.
            cursor = pairs[-1][0]

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        return self.scan()

    @staticmethod
    def _reject_snapshot(snapshot) -> None:
        if snapshot is not None:
            raise NotImplementedError(
                "remote shards do not support pinned snapshots"
            )

    # ------------------------------------------------------ maintenance
    def flush(self) -> None:
        with self._lock:
            self._client.flush()

    def compact_range(self, start=None, end=None) -> int:
        # The wire compaction is always full-range.
        with self._lock:
            return self._client.compact()

    def compact_all(self) -> int:
        with self._lock:
            return self._client.compact()

    def wait_for_compactions(self) -> None:
        """The server compacts synchronously inside OP_COMPACT."""

    # ------------------------------------------------------------ admin
    def promote(self, min_epoch: int = 0) -> int:
        """Promote the server behind this shard; returns its new epoch."""
        with self._lock:
            return self._client.promote(min_epoch)

    @property
    def retries(self) -> int:
        """Wire-level retries performed by the underlying client."""
        return self._client.retries

    def remote_stats(self) -> dict:
        """The server's full STATS document."""
        with self._lock:
            return self._client.stats()

    @property
    def stats(self) -> DBStats:
        """Engine counters of the remote DB, DBStats-shaped."""
        db = self.remote_stats().get("db", {})
        return DBStats(
            writes=db.get("writes", 0),
            gets=db.get("gets", 0),
            flushes=db.get("flushes", 0),
            compactions=db.get("compactions", 0),
            trivial_moves=db.get("trivial_moves", 0),
            compaction_input_bytes=db.get("compaction_input_bytes", 0),
            compaction_output_bytes=db.get("compaction_output_bytes", 0),
            write_stalls=db.get("write_stalls", 0),
        )

    def write_stalled(self, keys=None) -> bool:
        return bool(
            self.remote_stats().get("db", {}).get("write_stalled_now", False)
        )

    def num_files(self, level: int) -> int:
        if level == 0:
            return int(self.remote_stats().get("db", {}).get("l0_files", 0))
        return 0  # the wire only reports L0 depth

    def total_bytes(self) -> int:
        return int(self.remote_stats().get("db", {}).get("total_bytes", 0))

    def get_property(self, name: str) -> Optional[str]:
        return None  # engine introspection stays process-local

    def describe(self) -> str:
        return f"(remote shard {self.host}:{self.port})"

    def close(self) -> None:
        self._client.close()

    def __enter__(self) -> "RemoteShard":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
