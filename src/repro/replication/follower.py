"""Follower side of log shipping: subscribe, apply, ack.

A :class:`Follower` owns a background thread with one long-lived
socket to the primary.  After the version hello and a
``REPL_SUBSCRIBE``, the connection inverts: the primary pushes
``REPL_SHIP`` frames, the follower applies them and pushes
``REPL_ACK`` frames back.  Every ack is preceded by a WAL sync, so an
acked sequence is durable on the follower — that is the invariant the
zero-acked-write-loss guarantee rests on.

When the primary answers the subscribe with snapshot mode, the
follower receives the primary's SSTables wholesale, rebuilds its
manifest, and reopens its DB (``db_factory``), then continues with WAL
records from the snapshot's sequence.  A ``SHIP_GOODBYE`` (primary
shutting down cleanly) parks the follower in a quiet retry loop
instead of logging connection errors.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from typing import Callable, Optional

from ..analysis.locksan import make_lock
from ..db.manifest import ManifestWriter, VersionEdit, set_current
from ..lsm.version import FileMetaData
from ..server import protocol as P
from .errors import ProtocolTooOldError, ReplicationError

__all__ = ["Follower"]

logger = logging.getLogger("repro.replication")

#: Socket receive timeout; bounds how fast stop() is noticed.
_RECV_TIMEOUT_S = 0.5

#: Overall deadline for the hello/subscribe exchanges: a black-holed
#: primary (socket open, no bytes) must not park the follower in the
#: handshake forever.
_HANDSHAKE_DEADLINE_S = 10.0


class _PrimaryGoodbye(Exception):
    """The primary announced a clean shutdown (not an error)."""


class _Resubscribe(Exception):
    """Stream state forces a fresh subscribe (e.g. sequence gap)."""


class Follower:
    """Tails a primary and replays its WAL into a local DB."""

    def __init__(
        self,
        db,
        storage,
        db_factory: Callable[[], object],
        primary_host: str,
        primary_port: int,
        follower_id: str,
        on_db_swap: Optional[Callable[[object], None]] = None,
        retry_interval_s: float = 0.5,
        max_silence_s: float = 5.0,
    ) -> None:
        """``storage`` is the *raw* storage behind ``db`` — snapshot
        install wipes and repopulates it, then calls ``db_factory()``
        to reopen; ``on_db_swap(new_db)`` lets an embedding server
        switch its serving handle.  ``max_silence_s`` is the partition
        detector: against a >= 2.2 primary (which heartbeats an idle
        stream) a connection silent that long is declared dead and
        re-dialled instead of blocking forever."""
        self.db = db
        self._storage = storage
        self._db_factory = db_factory
        self._host = primary_host
        self._port = primary_port
        self.follower_id = follower_id
        self._on_db_swap = on_db_swap
        self._retry_s = retry_interval_s
        self.max_silence_s = max_silence_s
        #: Set per connection once the hello learns the primary's
        #: version; silence is only fatal when heartbeats are promised.
        self._heartbeats_expected = False
        self.heartbeats = 0
        #: Primary's last sequence as of the latest heartbeat.
        self.primary_seq: Optional[int] = None
        self._stop = threading.Event()
        self._sock: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._lock = make_lock("repl.follower")
        # Observable state for repl-status / stats.
        self.connected = False
        self.mode: Optional[str] = None
        self.last_error: Optional[str] = None
        self.goodbyes = 0
        # After a clean GOODBYE the primary is *expected* to be down;
        # demote reconnect noise until a connect succeeds again.
        self._saw_goodbye = False

    # ---------------------------------------------------------- control
    def start(self) -> "Follower":
        self._thread = threading.Thread(
            target=self._run, name=f"repl-follower-{self.follower_id}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
        if self._thread is not None:
            self._thread.join(timeout=5)

    def bind_db_swap(self, fn: Callable[[object], None]) -> None:
        """Late-bind the DB-swap callback (an embedding server's
        ``swap_db``) when the server is built after the follower."""
        self._on_db_swap = fn

    def repoint(self, host: str, port: int) -> None:
        """Re-parent onto a different primary (post-failover).

        Swaps the target and drops the live connection; the run loop
        re-dials the new primary with the normal subscribe flow, so
        catch-up (WAL tail or snapshot) needs no special casing.
        """
        # Logging hint only, owned by the run loop — kept outside the
        # lock to match its other (unlocked) writers.
        self._saw_goodbye = False
        with self._lock:
            self._host = host
            self._port = port
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass

    def status(self) -> dict:
        return {
            "role": "follower",
            "primary": f"{self._host}:{self._port}",
            "follower_id": self.follower_id,
            "connected": self.connected,
            "mode": self.mode,
            "applied_seq": self.db.last_sequence,
            "epoch": self.db.repl_epoch,
            "goodbyes": self.goodbyes,
            "heartbeats": self.heartbeats,
            "primary_seq": self.primary_seq,
            "last_error": self.last_error,
        }

    # ------------------------------------------------------------- loop
    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self._connect_and_stream()
            except _PrimaryGoodbye as exc:
                # Clean shutdown on the other side: no error noise,
                # quiet periodic reconnect attempts.
                self.goodbyes += 1
                self._saw_goodbye = True
                self.db.obs.metrics.counter("repl.goodbyes_received").inc()
                logger.info(
                    "primary said goodbye (%s); will retry quietly", exc
                )
            except ProtocolTooOldError as exc:
                # Terminal: retrying cannot fix a protocol mismatch.
                self.last_error = str(exc)
                logger.error("%s", exc)
                return
            except _Resubscribe as exc:
                logger.info("resubscribing to primary: %s", exc)
                events = self.db.obs.events
                if events.enabled:
                    events.emit(
                        "follower.resubscribe",
                        follower=self.follower_id,
                        reason=str(exc),
                    )
                continue
            except (OSError, ConnectionError, P.ProtocolError) as exc:
                if self._stop.is_set():
                    break
                self.last_error = str(exc)
                log = logger.debug if self._saw_goodbye else logger.warning
                log(
                    "lost primary %s:%s (%s); retrying",
                    self._host, self._port, exc,
                )
            except ReplicationError as exc:
                self.last_error = str(exc)
                logger.error("replication halted: %s", exc)
                return
            finally:
                self.connected = False
            self._stop.wait(self._retry_s)

    # -------------------------------------------------------- transport
    def _open_socket(self) -> socket.socket:
        sock = socket.create_connection(
            (self._host, self._port), timeout=5.0
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(_RECV_TIMEOUT_S)
        return sock

    def _send_frame(self, sock: socket.socket, frame: bytes) -> None:
        sock.sendall(frame)

    def _recv_exact(
        self,
        sock: socket.socket,
        n: int,
        deadline: Optional[float] = None,
    ) -> bytes:
        """``deadline`` (monotonic seconds) bounds total silence: a
        black-holed connection raises instead of spinning on the short
        recv timeout forever."""
        buf = bytearray()
        while len(buf) < n:
            try:
                chunk = sock.recv(min(65536, n - len(buf)))
            except socket.timeout:
                if self._stop.is_set():
                    raise ConnectionError("follower stopping") from None
                if deadline is not None and time.monotonic() >= deadline:
                    raise ConnectionError(
                        f"primary silent past deadline "
                        f"(partition?): {self._host}:{self._port}"
                    ) from None
                continue
            if not chunk:
                raise ConnectionError("primary closed the connection")
            buf += chunk
        return bytes(buf)

    def _recv_payload(
        self, sock: socket.socket, deadline: Optional[float] = None
    ) -> bytes:
        length = P.frame_length(self._recv_exact(sock, 4, deadline))
        return P.decode_frame(
            length, self._recv_exact(sock, length + 4, deadline)
        )

    def _recv_stream_payload(self, sock: socket.socket) -> bytes:
        """One pushed frame with the per-frame silence deadline armed
        (only when the primary promised heartbeats)."""
        deadline = (
            time.monotonic() + self.max_silence_s
            if self._heartbeats_expected
            else None
        )
        return self._recv_payload(sock, deadline)

    # --------------------------------------------------------- protocol
    def _connect_and_stream(self) -> None:
        sock = self._open_socket()
        with self._lock:
            self._sock = sock
        try:
            self._handshake(sock)
            self._subscribe_and_apply(sock)
        finally:
            with self._lock:
                self._sock = None
            try:
                sock.close()
            except OSError:
                pass

    def _handshake(self, sock: socket.socket) -> None:
        deadline = time.monotonic() + _HANDSHAKE_DEADLINE_S
        self._send_frame(
            sock, P.encode_request(P.OP_PING, 1, P.encode_hello_body())
        )
        response = P.decode_response(self._recv_payload(sock, deadline))
        if not response.ok:
            raise ConnectionError(
                f"hello rejected: {response.status_name}"
            )
        negotiated = P.decode_hello_ack(response.body)
        if negotiated is None or negotiated[0] < 2:
            raise ProtocolTooOldError(
                f"primary {self._host}:{self._port} speaks protocol "
                f"{negotiated[0] if negotiated else 1}.x, which has no "
                f"replication support (need major >= 2)"
            )
        # A >= 2.2 primary heartbeats idle streams, which arms the
        # silence deadline in the ship loop; older primaries stay on
        # the legacy wait-forever behaviour (idle is indistinguishable
        # from partitioned without heartbeats).
        self._heartbeats_expected = negotiated >= (2, 2)

    def _subscribe_and_apply(self, sock: socket.socket) -> None:
        start_seq = self.db.last_sequence + 1
        body = P.encode_subscribe_body(
            start_seq, self.db.repl_epoch, self.follower_id.encode()
        )
        self._send_frame(
            sock, P.encode_request(P.OP_REPL_SUBSCRIBE, 2, body)
        )
        response = P.decode_response(
            self._recv_payload(
                sock, time.monotonic() + _HANDSHAKE_DEADLINE_S
            )
        )
        if response.status == P.ST_FENCED:
            raise ReplicationError(
                "primary refused subscription: our epoch is newer "
                "(this node was promoted; stop following)"
            )
        if not response.ok:
            raise ConnectionError(
                f"subscribe rejected: {response.status_name}"
            )
        mode, primary_epoch, _primary_seq = P.decode_subscribe_ack(
            response.body
        )
        self.mode = "snapshot" if mode == P.SUB_MODE_SNAPSHOT else "wal"
        self._primary_epoch = primary_epoch
        if primary_epoch > self.db.repl_epoch:
            # Adopt the primary's fencing epoch so a later promotion
            # of *this* node outranks it.
            self.db.set_repl_epoch(primary_epoch)
        self.connected = True
        self.last_error = None
        self._saw_goodbye = False
        self._ship_loop(sock)

    def _ship_loop(self, sock: socket.socket) -> None:
        metrics = self.db.obs.metrics
        while not self._stop.is_set():
            request = P.decode_request(self._recv_stream_payload(sock))
            if request.opcode != P.OP_REPL_SHIP:
                raise P.ProtocolError(
                    f"expected REPL_SHIP, got {request.opcode_name}"
                )
            decoded = P.decode_ship_body(request.body)
            kind = decoded[0]
            if kind == P.SHIP_RECORDS:
                self._apply_records(sock, decoded[1], metrics)
            elif kind == P.SHIP_HEARTBEAT:
                self.heartbeats += 1
                self.primary_seq = decoded[1]
                metrics.counter("repl.heartbeats").inc()
            elif kind == P.SHIP_SNAP_BEGIN:
                self._receive_snapshot(sock, decoded[1], decoded[2])
                self.mode = "wal"  # tail resumes after install
            elif kind == P.SHIP_GOODBYE:
                raise _PrimaryGoodbye(decoded[1])
            else:
                raise P.ProtocolError(
                    f"unexpected ship kind {kind} outside a snapshot"
                )

    def _apply_records(self, sock, records, metrics) -> None:
        with self.db.obs.tracer.span("repl-apply", cat="repl"):
            applied = 0
            for record in records:
                try:
                    if self.db.apply_replicated(record):
                        applied += 1
                except ValueError as exc:
                    raise _Resubscribe(str(exc)) from None
            metrics.counter("repl.apply_records").inc(applied)
            metrics.counter("repl.apply_bytes").inc(
                sum(len(r) for r in records)
            )
            # Durable-before-ack: the primary may count this sequence
            # toward a client's ack level, so it must survive a
            # follower crash from here on.
            self.db.sync_wal()
        self._send_frame(
            sock,
            P.encode_request(
                P.OP_REPL_ACK,
                3,
                P.encode_repl_ack_body(self.db.last_sequence),
            ),
        )

    # --------------------------------------------------------- snapshot
    def _receive_snapshot(self, sock, last_seq: int, n_files: int) -> None:
        """Receive a full SST snapshot and rebuild the local DB."""
        logger.info(
            "receiving snapshot: %d files up to seq %d", n_files, last_seq
        )
        with self.db.obs.tracer.span("repl-snapshot", cat="repl"):
            files: list[tuple[int, FileMetaData]] = []
            self.db.close()
            for name in self._storage.list():
                try:
                    self._storage.delete(name)
                except OSError:
                    pass
            for _ in range(n_files):
                request = P.decode_request(self._recv_stream_payload(sock))
                decoded = P.decode_ship_body(request.body)
                if decoded[0] != P.SHIP_SNAP_FILE:
                    raise P.ProtocolError("expected SHIP_SNAP_FILE")
                _, level, name, size, smallest, largest = decoded
                received = 0
                with self._storage.create(name) as out:
                    while received < size:
                        request = P.decode_request(
                            self._recv_stream_payload(sock)
                        )
                        chunk_msg = P.decode_ship_body(request.body)
                        if chunk_msg[0] != P.SHIP_SNAP_CHUNK:
                            raise P.ProtocolError("expected SHIP_SNAP_CHUNK")
                        out.append(chunk_msg[1])
                        received += len(chunk_msg[1])
                    out.sync()
                number = int(name.split(".")[0])
                files.append(
                    (level, FileMetaData(number, size, smallest, largest))
                )
            request = P.decode_request(self._recv_stream_payload(sock))
            end_msg = P.decode_ship_body(request.body)
            if end_msg[0] != P.SHIP_SNAP_END:
                raise P.ProtocolError("expected SHIP_SNAP_END")
            install_seq = end_msg[1]
            self._install_manifest(files, install_seq)
            self.db = self._db_factory()
            if self._on_db_swap is not None:
                self._on_db_swap(self.db)
        self.db.obs.metrics.counter("repl.snapshots_installed").inc()
        events = self.db.obs.events
        if events.enabled:
            events.emit(
                "follower.snapshot",
                follower=self.follower_id,
                seq=install_seq,
                files=n_files,
            )
        logger.info("snapshot installed at seq %d", install_seq)
        self._send_frame(
            sock,
            P.encode_request(
                P.OP_REPL_ACK, 3, P.encode_repl_ack_body(install_seq)
            ),
        )

    def _install_manifest(
        self, files: list[tuple[int, FileMetaData]], last_seq: int
    ) -> None:
        """Write a manifest + CURRENT describing the shipped tree."""
        numbers = [meta.number for _lv, meta in files]
        manifest_number = max(numbers, default=0) + 1
        manifest_name = f"MANIFEST-{manifest_number:06d}"
        writer = ManifestWriter(self._storage, manifest_name)
        edit = VersionEdit(
            next_file_number=manifest_number + 1,
            last_sequence=last_seq,
            repl_epoch=getattr(self, "_primary_epoch", 0),
        )
        for level, meta in files:
            edit.add_file(level, meta)
        writer.append(edit, sync=True)
        writer.close()
        set_current(self._storage, manifest_name)
