"""Typed failures of the replication subsystem."""

from __future__ import annotations

__all__ = [
    "ReplicationError",
    "FencedError",
    "CatchupLostError",
    "ProtocolTooOldError",
]


class ReplicationError(RuntimeError):
    """Base class for replication failures."""


class FencedError(ReplicationError):
    """The peer's fencing epoch is newer than ours.

    Raised on the primary when a subscriber presents a higher epoch —
    the subscriber was promoted, this node must not keep acting as a
    primary for it.
    """


class CatchupLostError(ReplicationError):
    """A subscriber's position fell out of the primary's retained log
    mid-stream; the catch-up must restart (usually via snapshot)."""


class ProtocolTooOldError(ReplicationError):
    """The remote server negotiated a protocol major without
    replication support (a pre-versioning or protocol-1 server)."""
