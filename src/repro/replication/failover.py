"""Automatic failover: health probing, election, wire-level promotion.

PR 6 made failover *possible* (``dbtool promote`` + epoch fencing);
this module makes it *automatic*.  A :class:`FailoverCoordinator`
probes every endpoint of a replica set on a heartbeat interval.  When
the primary misses ``failure_threshold`` consecutive probes and a
promotable follower is reachable, it:

1. emits ``failover.detected`` (the primary is declared dead),
2. elects the most-caught-up follower via :func:`elect_candidate`
   (``failover.elected``),
3. promotes it over the wire with ``PROMOTE min_epoch =
   highest-epoch-ever-seen + 1`` (``failover.promoted``) — the epoch
   bump rides the existing fencing path, so the old primary comes back
   fenced, not split-brained,
4. invokes ``on_failover`` so an embedding client (e.g.
   :class:`~repro.replication.replicated.ReplicatedShard`) can repoint
   immediately instead of waiting for its next role refresh.

Election is deterministic and pure (unit-testable without sockets):
highest fencing epoch wins, then highest applied sequence (most
caught-up loses the least data — and with durable-before-ack shipping,
a follower at the acked sequence loses none), then lowest endpoint
index as the final tie-break.

The coordinator is deliberately client-side and lease-free: it acts
only on *its own* view of liveness, which is the right authority for
the clients it serves, and promotion is idempotent under ``min_epoch``
so two racing coordinators converge on the same fenced outcome (the
second promote of the same epoch is a no-op; a later one just bumps
the epoch again — epochs are a monotonic counter, gaps are harmless).
"""

from __future__ import annotations

import logging
import threading
from typing import Callable, Optional

from ..analysis.locksan import make_lock
from ..obs import Observability
from ..server.client import ClientError, ProtocolError, SyncClient

__all__ = ["FailoverCoordinator", "elect_candidate"]

logger = logging.getLogger("repro.replication")

_PROBE_ERRORS = (OSError, ClientError, ProtocolError)


def elect_candidate(statuses: list[dict]) -> Optional[dict]:
    """Pick the follower to promote from a round of probe statuses.

    ``statuses`` is one dict per endpoint (list order = configured
    endpoint order) with at least ``reachable``, ``role``, ``epoch``,
    ``applied_seq``.  Ordering: highest epoch, then highest applied
    sequence, then earliest endpoint position (strict-greater
    comparison makes the earlier candidate win every tie).  Returns
    the winning status dict, or None when no reachable follower
    exists.
    """
    best: Optional[tuple[tuple[int, int], dict]] = None
    for status in statuses:
        if not status.get("reachable") or status.get("role") != "follower":
            continue
        key = (
            int(status.get("epoch", 0)),
            int(status.get("applied_seq", 0)),
        )
        if best is None or key > best[0]:
            best = (key, status)
    return best[1] if best else None


class FailoverCoordinator:
    """Heartbeat loop that detects a dead primary and promotes.

    ``check_once()`` runs a single probe/elect/promote round (used by
    ``dbtool failover --once`` and tests); ``start()`` runs it forever
    on ``heartbeat_interval_s`` in a named daemon thread.
    """

    def __init__(
        self,
        endpoints: list[tuple[str, int]],
        heartbeat_interval_s: float = 0.5,
        failure_threshold: int = 3,
        probe_timeout_s: float = 1.0,
        obs: Optional[Observability] = None,
        on_failover: Optional[Callable[[tuple[str, int], int], None]] = None,
    ) -> None:
        if not endpoints:
            raise ValueError("need at least one endpoint")
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.endpoints = list(endpoints)
        self.heartbeat_interval_s = heartbeat_interval_s
        self.failure_threshold = failure_threshold
        self.probe_timeout_s = probe_timeout_s
        self.obs = obs if obs is not None else Observability()
        self.on_failover = on_failover
        self._lock = make_lock("repl.failover")
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._misses = 0
        self._detected = False
        #: Highest fencing epoch observed anywhere; promotion targets
        #: this + 1 so the dead primary is outranked even if no live
        #: node has adopted its epoch yet.
        self._max_epoch = 0
        self.last_primary: Optional[tuple[str, int]] = None
        self.promotions = 0

    # ----------------------------------------------------------- probing
    def probe(self, endpoint: tuple[str, int]) -> dict:
        """One endpoint's replication status, never raising."""
        host, port = endpoint
        status = {
            "endpoint": endpoint,
            "reachable": False,
            "role": None,
            "epoch": 0,
            "applied_seq": 0,
        }
        try:
            client = SyncClient(host, port, timeout=self.probe_timeout_s)
        except OSError:
            return status
        try:
            repl = client.stats().get("repl") or {}
            status["reachable"] = True
            # A server with no replication wiring is a standalone
            # primary, same default as ReplicatedShard role discovery.
            status["role"] = repl.get("role", "primary")
            status["epoch"] = int(repl.get("epoch", 0))
            status["applied_seq"] = int(
                repl.get("applied_seq", repl.get("last_sequence", 0))
            )
        except _PROBE_ERRORS:
            pass
        finally:
            client.close()
        return status

    def poll(self) -> list[dict]:
        return [self.probe(endpoint) for endpoint in self.endpoints]

    # ---------------------------------------------------------- failover
    def check_once(self) -> Optional[tuple[tuple[str, int], int]]:
        """One heartbeat round; returns ``(endpoint, new_epoch)`` when
        it promoted, else None."""
        statuses = self.poll()
        metrics, events = self.obs.metrics, self.obs.events
        with self._lock:
            for status in statuses:
                if status["reachable"]:
                    self._max_epoch = max(self._max_epoch, status["epoch"])
            primaries = [
                s
                for s in statuses
                if s["reachable"] and s["role"] == "primary"
            ]
            if primaries:
                current = max(primaries, key=lambda s: s["epoch"])
                self._misses = 0
                self._detected = False
                self.last_primary = current["endpoint"]
                return None
            self._misses += 1
            if self._misses < self.failure_threshold:
                return None
            if not self._detected:
                self._detected = True
                metrics.counter("failover.detected").inc()
                if events.enabled:
                    events.emit(
                        "failover.detected",
                        misses=self._misses,
                        last_primary=(
                            f"{self.last_primary[0]}:{self.last_primary[1]}"
                            if self.last_primary
                            else None
                        ),
                    )
                logger.warning(
                    "primary unreachable for %d probes; electing",
                    self._misses,
                )
            candidate = elect_candidate(statuses)
            if candidate is None:
                return None  # nothing promotable yet; keep watching
            target_epoch = self._max_epoch + 1
        endpoint = candidate["endpoint"]
        metrics.counter("failover.elected").inc()
        if events.enabled:
            events.emit(
                "failover.elected",
                endpoint=f"{endpoint[0]}:{endpoint[1]}",
                epoch=candidate["epoch"],
                applied_seq=candidate["applied_seq"],
            )
        new_epoch = self.promote(endpoint, min_epoch=target_epoch)
        with self._lock:
            self._max_epoch = max(self._max_epoch, new_epoch)
            self._misses = 0
            self._detected = False
            self.last_primary = endpoint
            self.promotions += 1
        metrics.counter("failover.promoted").inc()
        if events.enabled:
            events.emit(
                "failover.promoted",
                endpoint=f"{endpoint[0]}:{endpoint[1]}",
                epoch=new_epoch,
            )
        logger.warning(
            "promoted %s:%s to primary at epoch %d",
            endpoint[0], endpoint[1], new_epoch,
        )
        if self.on_failover is not None:
            self.on_failover(endpoint, new_epoch)
        return (endpoint, new_epoch)

    def promote(self, endpoint: tuple[str, int], min_epoch: int = 0) -> int:
        """Wire-promote ``endpoint``; returns its new epoch."""
        client = SyncClient(
            endpoint[0], endpoint[1], timeout=self.probe_timeout_s
        )
        try:
            return client.promote(min_epoch)
        finally:
            client.close()

    # --------------------------------------------------------- lifecycle
    def start(self) -> "FailoverCoordinator":
        with self._lock:
            if self._thread is not None:
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repl-failover", daemon=True
            )
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.heartbeat_interval_s):
            try:
                self.check_once()
            except _PROBE_ERRORS as exc:
                # e.g. the elected candidate died between probe and
                # promote; the next round re-elects.
                logger.warning("failover round failed: %s", exc)

    def stop(self) -> None:
        self._stop.set()
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join(timeout=5)

    def status(self) -> dict:
        with self._lock:
            return {
                "endpoints": [f"{h}:{p}" for h, p in self.endpoints],
                "running": self._thread is not None,
                "misses": self._misses,
                "max_epoch": self._max_epoch,
                "last_primary": (
                    f"{self.last_primary[0]}:{self.last_primary[1]}"
                    if self.last_primary
                    else None
                ),
                "promotions": self.promotions,
            }

    def __enter__(self) -> "FailoverCoordinator":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
