"""Replication: remote shards and primary/follower log shipping.

This package turns the single-process engine into the substrate of a
fault-tolerant cluster, the ROADMAP's top open item.  Three layers:

``remote``      :class:`RemoteShard` — the ShardLike interface spoken
                over the PR 1 wire protocol, so
                :meth:`repro.cluster.ShardedDB.from_shards` composes
                local and remote shards transparently
``hub``         :class:`ReplicationHub` — primary-side log shipping:
                WAL-listener ingestion, per-subscriber positions,
                retained-WAL replay, snapshot decisions, ack counting,
                lag-based write admission
``follower``    :class:`Follower` — subscriber thread that replays
                shipped records into a local DB (sync-before-ack) and
                installs full SST snapshots when too far behind
``replicated``  :class:`ReplicatedShard` — client-side policy: writes
                to the primary at a configurable ack level, reads
                primary-first with stale follower fallback, epoch-led
                failover after ``dbtool promote``
``failover``    :class:`FailoverCoordinator` — automatic failover:
                heartbeat probing, deterministic most-caught-up
                election (:func:`elect_candidate`), wire-level PROMOTE
                through the epoch-fencing path

The durable unit shipped between replicas is the engine's own encoded
:class:`repro.lsm.wal.WriteBatch` record — the same bytes the WAL
fsyncs, CRC-framed by the wire protocol, applied idempotently by
sequence number on the follower.
"""

from .errors import (
    CatchupLostError,
    FencedError,
    ProtocolTooOldError,
    ReplicationError,
)
from .failover import FailoverCoordinator, elect_candidate
from .follower import Follower
from .hub import ReplicationHub, Subscriber
from .remote import RemoteShard
from .replicated import ReplicatedShard

__all__ = [
    "CatchupLostError",
    "FailoverCoordinator",
    "FencedError",
    "Follower",
    "ProtocolTooOldError",
    "RemoteShard",
    "ReplicatedShard",
    "ReplicationError",
    "ReplicationHub",
    "Subscriber",
    "elect_candidate",
]
