"""Read/write policy over a replica set: one logical shard, N servers.

``ReplicatedShard`` fronts a primary and its followers with the same
ShardLike surface as a local DB or a single :class:`RemoteShard`:

* **Writes** go to the primary, acked at the connection's configured
  ack level (0 = local durability only, N = that many follower acks,
  ``"majority"`` = a cluster majority).  The ack level rides in the
  hello, so the server's write path enforces it.
* **Reads** are primary-first.  When the primary is down or stalled
  and ``allow_stale`` is set, reads fall back to the most-caught-up
  follower — explicitly stale (bounded by replication lag), never
  write-losing.
* **Failover** can be manual (``dbtool promote`` bumps a follower's
  fencing epoch; the next role refresh sees the higher epoch and
  redirects writes) or automatic (``auto_failover=True`` embeds a
  :class:`~repro.replication.failover.FailoverCoordinator` that
  detects a dead primary by missed health probes, promotes the
  most-caught-up follower over the wire, and repoints this client —
  no human in the loop).  Either way the fenced old primary refuses
  subscriptions, so a partitioned stale primary cannot silently accept
  acked writes from this client once the refresh ran.
* **Resilience**: pass a :class:`~repro.server.retry.RetryPolicy` to
  give every underlying connection jittered-backoff retries, and each
  endpoint gets its own circuit breaker so a dead replica is skipped
  after a few failures instead of costing a connect timeout per call.
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional, Union

from ..analysis.locksan import make_lock
from ..obs import Observability
from ..server.client import ClientError, ServerBusyError
from ..server.retry import CircuitBreaker, RetryPolicy
from .errors import ReplicationError
from .remote import RemoteShard

__all__ = ["ReplicatedShard"]

_RETRYABLE = (OSError, ConnectionError, ClientError)


class ReplicatedShard:
    """ShardLike facade over ``[(host, port), ...]`` replica endpoints."""

    def __init__(
        self,
        endpoints: list[tuple[str, int]],
        ack_level: Union[int, str] = 1,
        allow_stale: bool = True,
        timeout: Optional[float] = 10.0,
        retry_policy: Optional[RetryPolicy] = None,
        obs: Optional[Observability] = None,
        auto_failover: bool = False,
        failover_interval_s: float = 0.5,
        failover_threshold: int = 3,
    ) -> None:
        if not endpoints:
            raise ValueError("need at least one endpoint")
        self.endpoints = list(endpoints)
        self.ack_level = -1 if ack_level == "majority" else int(ack_level)
        self.allow_stale = allow_stale
        self.obs = obs if obs is not None else Observability()
        self._timeout = timeout
        self._retry_policy = retry_policy
        self._lock = make_lock("repl.replicated")
        self._conns: dict[tuple[str, int], RemoteShard] = {}
        # One breaker per endpoint, shared across reconnects, so a dead
        # replica fails fast instead of costing a connect timeout on
        # every role refresh while it is down.
        self._breakers: dict[tuple[str, int], CircuitBreaker] = {}
        self._primary: Optional[tuple[str, int]] = None
        self._coordinator = None
        self._refresh_roles()
        if auto_failover:
            from .failover import FailoverCoordinator

            self._coordinator = FailoverCoordinator(
                self.endpoints,
                heartbeat_interval_s=failover_interval_s,
                failure_threshold=failover_threshold,
                obs=self.obs,
                on_failover=self._after_failover,
            ).start()

    # -------------------------------------------------------- discovery
    def _after_failover(self, endpoint: tuple[str, int], epoch: int) -> None:
        """Coordinator callback: a follower was just promoted."""
        self._refresh_roles()

    def _connect(self, endpoint: tuple[str, int]) -> RemoteShard:
        conn = self._conns.get(endpoint)
        if conn is None:
            breaker = self._breakers.get(endpoint)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=3, reset_timeout_s=1.0
                )
                self._breakers[endpoint] = breaker
            conn = RemoteShard(
                endpoint[0],
                endpoint[1],
                timeout=self._timeout,
                ack_level=self.ack_level,
                retry_policy=self._retry_policy,
                breaker=breaker,
                obs=self.obs,
            )
            self._conns[endpoint] = conn
        return conn

    def _drop(self, endpoint: tuple[str, int]) -> None:
        conn = self._conns.pop(endpoint, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass

    def _refresh_roles(self) -> None:
        """Probe every endpoint; elect the primary with the highest
        fencing epoch (a promoted follower outranks its old primary)."""
        with self._lock:
            best: Optional[tuple[int, tuple[str, int]]] = None
            for endpoint in self.endpoints:
                try:
                    repl = self._connect(endpoint).remote_stats().get(
                        "repl", {}
                    )
                except _RETRYABLE:
                    self._drop(endpoint)
                    continue
                if repl.get("role", "primary") == "primary":
                    epoch = int(repl.get("epoch", 0))
                    if best is None or epoch > best[0]:
                        best = (epoch, endpoint)
            self._primary = best[1] if best else None

    def _primary_conn(self) -> RemoteShard:
        with self._lock:
            primary = self._primary
        if primary is None:
            self._refresh_roles()
            with self._lock:
                primary = self._primary
        if primary is None:
            raise ReplicationError(
                f"no reachable primary among {self.endpoints}"
            )
        with self._lock:
            return self._connect(primary)

    def _fallback_conn(self) -> Optional[RemoteShard]:
        """Most-caught-up reachable non-primary replica, if any."""
        best: Optional[tuple[int, RemoteShard]] = None
        with self._lock:
            primary = self._primary
            candidates = [e for e in self.endpoints if e != primary]
        for endpoint in candidates:
            try:
                with self._lock:
                    conn = self._connect(endpoint)
                repl = conn.remote_stats().get("repl", {})
                applied = int(repl.get("applied_seq", 0))
            except _RETRYABLE:
                with self._lock:
                    self._drop(endpoint)
                continue
            if best is None or applied > best[0]:
                best = (applied, conn)
        return best[1] if best else None

    def _on_primary(self, fn, *args, **kwargs):
        """Run against the primary, refreshing roles once on failure."""
        try:
            return fn(self._primary_conn(), *args, **kwargs)
        except _RETRYABLE:
            with self._lock:
                if self._primary is not None:
                    self._drop(self._primary)
                self._primary = None
            return fn(self._primary_conn(), *args, **kwargs)

    def _read(self, fn, *args, **kwargs):
        """Primary-first read with optional stale follower fallback."""
        try:
            return self._on_primary(fn, *args, **kwargs)
        except (ReplicationError, ServerBusyError, *_RETRYABLE):
            if not self.allow_stale:
                raise
            fallback = self._fallback_conn()
            if fallback is None:
                raise
            return fn(fallback, *args, **kwargs)

    # ----------------------------------------------------------- writes
    def put(self, key: bytes, value: bytes) -> None:
        self._on_primary(lambda c: c.put(key, value))

    def delete(self, key: bytes) -> None:
        self._on_primary(lambda c: c.delete(key))

    def write(self, batch) -> None:
        self._on_primary(lambda c: c.write(batch))

    # ------------------------------------------------------------ reads
    def get(self, key: bytes, snapshot=None) -> Optional[bytes]:
        return self._read(lambda c: c.get(key, snapshot=snapshot))

    def multi_get(self, keys, snapshot=None) -> list[Optional[bytes]]:
        keys = list(keys)
        return self._read(lambda c: c.multi_get(keys, snapshot=snapshot))

    def scan(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        snapshot=None,
    ) -> Iterator[tuple[bytes, bytes]]:
        # Materialised per call so the fallback decision happens here,
        # not lazily inside a half-consumed generator.
        return iter(
            self._read(
                lambda c: list(c.scan(start, end, snapshot=snapshot))
            )
        )

    def scan_reverse(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        snapshot=None,
    ) -> Iterator[tuple[bytes, bytes]]:
        return iter(
            self._read(
                lambda c: list(c.scan_reverse(start, end, snapshot=snapshot))
            )
        )

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        return self.scan()

    # ------------------------------------------------------ maintenance
    def flush(self) -> None:
        self._on_primary(lambda c: c.flush())

    def compact_range(self, start=None, end=None) -> int:
        return self._on_primary(lambda c: c.compact_range(start, end))

    def compact_all(self) -> int:
        return self._on_primary(lambda c: c.compact_all())

    def wait_for_compactions(self) -> None:
        pass

    # ------------------------------------------------------------ admin
    @property
    def stats(self):
        return self._read(lambda c: c.stats)

    def write_stalled(self, keys=None) -> bool:
        try:
            return self._on_primary(lambda c: c.write_stalled(keys=keys))
        except (ReplicationError, *_RETRYABLE):
            return True  # unreachable primary = not accepting writes

    def num_files(self, level: int) -> int:
        return self._read(lambda c: c.num_files(level))

    def total_bytes(self) -> int:
        return self._read(lambda c: c.total_bytes())

    def get_property(self, name: str) -> Optional[str]:
        return None

    def describe(self) -> str:
        with self._lock:
            primary = self._primary
        return f"(replicated shard primary={primary} of {self.endpoints})"

    def status(self) -> dict:
        """Role map as last discovered (refreshes first)."""
        self._refresh_roles()
        out: dict = {"endpoints": [], "primary": None}
        with self._lock:
            primary = self._primary
        for endpoint in self.endpoints:
            try:
                with self._lock:
                    conn = self._connect(endpoint)
                repl = conn.remote_stats().get("repl", {})
                repl["endpoint"] = f"{endpoint[0]}:{endpoint[1]}"
                repl["reachable"] = True
            except _RETRYABLE:
                repl = {
                    "endpoint": f"{endpoint[0]}:{endpoint[1]}",
                    "reachable": False,
                }
            out["endpoints"].append(repl)
        if primary is not None:
            out["primary"] = f"{primary[0]}:{primary[1]}"
        return out

    def retries(self) -> int:
        """Total wire-level retries across all live connections."""
        with self._lock:
            return sum(conn.retries for conn in self._conns.values())

    def close(self) -> None:
        if self._coordinator is not None:
            self._coordinator.stop()
            self._coordinator = None
        with self._lock:
            for endpoint in list(self._conns):
                self._drop(endpoint)

    def __enter__(self) -> "ReplicatedShard":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
