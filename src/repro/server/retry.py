"""Client-side resilience policy: retries with jittered backoff and
per-endpoint circuit breakers.

A served replica set turns every client call into a distributed-systems
problem: connections get refused, cut mid-frame, or silently
black-holed.  The rules for surviving that are uniform across
:class:`~repro.server.client.SyncClient`,
:class:`~repro.server.client.AsyncClient` and
:class:`~repro.replication.remote.RemoteShard`, so they live here as a
declarative :class:`RetryPolicy` instead of ad-hoc ``try``/``sleep``
loops at each call site.

Idempotence rule (mirrors the server's documented at-least-once write
contract in ``KVServer._write_done``): **reads retry freely**; a
**write** whose request frame may have reached the server is only
retried when ``resend_writes`` is on — safe for this protocol because
PUT/DELETE/BATCH are idempotent overwrites and replaying one is
equivalent to the server's own duplicate-apply on reconnect, but a
policy can turn it off for at-most-once semantics.

:class:`CircuitBreaker` is the standard closed → open → half-open
state machine, one per endpoint: after ``failure_threshold``
consecutive connection failures the endpoint is declared down and
calls fail fast with :class:`CircuitOpenError` (no connect timeout
burned per call) until ``reset_timeout_s`` elapses, when a single
probe is let through.

Backoff is exponential with *seeded* jitter — chaos tests replay the
exact same retry schedule from the same seed, the same idiom as
:class:`repro.devices.faults.FaultPlan`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..analysis.locksan import make_lock
from ..devices.faults import _DeterministicRNG

__all__ = ["RetryPolicy", "CircuitBreaker", "CircuitOpenError"]


class CircuitOpenError(ConnectionError):
    """The endpoint's circuit breaker is open: call refused locally.

    Subclasses :class:`ConnectionError` so every caller that already
    treats an endpoint's connection failures as "try elsewhere"
    (``ReplicatedShard``, cluster routing) handles breaker rejections
    the same way for free.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative retry/backoff/timeout policy for one client.

    ``max_attempts`` counts the first try: 3 means one call plus two
    retries.  Attempt ``n`` (1-based retry index) backs off
    ``min(max_delay_s, base_delay_s * multiplier**(n-1))`` scaled by a
    seeded jitter factor in ``[1 - jitter, 1 + jitter]``.
    ``connect_timeout_s`` bounds (re)connection establishment;
    ``resend_writes`` is the idempotence switch documented in the
    module docstring.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    connect_timeout_s: float = 5.0
    resend_writes: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError(
                "need 0 <= base_delay_s <= max_delay_s, got "
                f"{self.base_delay_s}/{self.max_delay_s}"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1: {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter out of [0, 1]: {self.jitter}")
        if self.connect_timeout_s <= 0:
            raise ValueError("connect_timeout_s must be > 0")

    def backoff_s(self, attempt: int, u: float = 0.5) -> float:
        """Delay before retry ``attempt`` (1-based), jittered by ``u``.

        ``u`` is a uniform sample in [0, 1) (0.5 → no jitter); pure so
        the bounds are unit-testable: the result always lies in
        ``[delay * (1 - jitter), delay * (1 + jitter)]``.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1: {attempt}")
        delay = min(
            self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1)
        )
        return delay * (1.0 + self.jitter * (2.0 * u - 1.0))

    def rng(self) -> _DeterministicRNG:
        """A fresh seeded jitter source (one per client instance)."""
        return _DeterministicRNG(self.seed)


class CircuitBreaker:
    """Closed → open → half-open breaker for one endpoint.

    Thread-safe; ``clock`` is injectable so the state machine is
    unit-testable without sleeping.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1: {failure_threshold}")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be > 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._lock = make_lock("server.breaker")
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        self.opens = 0

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._probing:
                return "half-open"
            if self._clock() - self._opened_at >= self.reset_timeout_s:
                return "half-open"
            return "open"

    def allow(self) -> bool:
        """May a call go out now?  (Admits one probe when half-open.)"""
        with self._lock:
            if self._opened_at is None:
                return True
            if self._probing:
                return False  # one probe already in flight
            if self._clock() - self._opened_at >= self.reset_timeout_s:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            if self._probing:
                # Failed probe: re-open for a fresh cooldown.
                self._probing = False
                self._opened_at = self._clock()
                self.opens += 1
                return
            self._failures += 1
            if self._failures >= self.failure_threshold and self._opened_at is None:
                self._opened_at = self._clock()
                self.opens += 1
