"""Server-side observability: per-opcode counters and latency tails.

The motivation for the whole server subsystem is making
compaction-induced write pauses visible *at the network edge*, so the
metrics layer is built around tail latency: every request records into
a log-bucketed histogram whose p50/p95/p99 are queryable over the wire
via the STATS opcode.

The histogram uses fixed logarithmic buckets (~24 per decade) from
1 µs to ~1000 s: recording is O(1), percentile estimation interpolates
inside the winning bucket, and the whole structure serialises to a
compact dict.  This mirrors what production engines (RocksDB's
``HistogramImpl``) do, scaled down.

Thread-safety: recording happens from the server's worker threads and
the asyncio loop; a single lock guards the buckets (the GIL makes the
counters safe, the lock makes snapshot() consistent).
"""

from __future__ import annotations

import math
import threading
from typing import Optional

from .protocol import OPCODE_NAMES

__all__ = ["LatencyHistogram", "OpMetrics", "ServerMetrics"]

_BUCKETS_PER_DECADE = 24
_MIN_LATENCY_S = 1e-6
_MAX_LATENCY_S = 1e3
_N_BUCKETS = int(_BUCKETS_PER_DECADE * math.log10(_MAX_LATENCY_S / _MIN_LATENCY_S)) + 2


class LatencyHistogram:
    """Log-bucketed latency histogram with percentile estimation."""

    __slots__ = ("counts", "count", "sum_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.counts = [0] * _N_BUCKETS
        self.count = 0
        self.sum_s = 0.0
        self.min_s = math.inf
        self.max_s = 0.0

    def _bucket(self, seconds: float) -> int:
        if seconds <= _MIN_LATENCY_S:
            return 0
        index = int(
            math.log10(seconds / _MIN_LATENCY_S) * _BUCKETS_PER_DECADE
        ) + 1
        return min(index, _N_BUCKETS - 1)

    @staticmethod
    def _bucket_upper(index: int) -> float:
        if index <= 0:
            return _MIN_LATENCY_S
        return _MIN_LATENCY_S * 10 ** (index / _BUCKETS_PER_DECADE)

    def record(self, seconds: float) -> None:
        self.counts[self._bucket(seconds)] += 1
        self.count += 1
        self.sum_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def percentile(self, p: float) -> float:
        """Estimated latency (seconds) at percentile ``p`` in [0, 100]."""
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        seen = 0
        for index, n in enumerate(self.counts):
            if n == 0:
                continue
            if seen + n >= rank:
                lo = self._bucket_upper(index - 1)
                hi = self._bucket_upper(index)
                fraction = (rank - seen) / n
                return min(max(lo + (hi - lo) * fraction, self.min_s), self.max_s)
            seen += n
        return self.max_s

    def mean(self) -> float:
        return self.sum_s / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """Summary dict (latencies in milliseconds, for STATS/JSON)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean_ms": self.mean() * 1e3,
            "min_ms": self.min_s * 1e3,
            "max_ms": self.max_s * 1e3,
            "p50_ms": self.percentile(50) * 1e3,
            "p95_ms": self.percentile(95) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
        }


class OpMetrics:
    """Counters for one opcode."""

    __slots__ = ("requests", "errors", "bytes_in", "bytes_out", "latency")

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.latency = LatencyHistogram()

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "latency": self.latency.snapshot(),
        }


class ServerMetrics:
    """All counters of one server instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.per_op: dict[int, OpMetrics] = {
            opcode: OpMetrics() for opcode in OPCODE_NAMES
        }
        self.stall_rejections = 0
        self.protocol_errors = 0
        self.connections_opened = 0
        self.connections_closed = 0

    # ------------------------------------------------------- recording
    def record(
        self,
        opcode: int,
        seconds: float,
        bytes_in: int,
        bytes_out: int,
        error: bool = False,
    ) -> None:
        with self._lock:
            op = self.per_op[opcode]
            op.requests += 1
            op.bytes_in += bytes_in
            op.bytes_out += bytes_out
            op.latency.record(seconds)
            if error:
                op.errors += 1

    def record_stall_rejection(self) -> None:
        with self._lock:
            self.stall_rejections += 1

    def record_protocol_error(self) -> None:
        with self._lock:
            self.protocol_errors += 1

    def connection_opened(self) -> None:
        with self._lock:
            self.connections_opened += 1

    def connection_closed(self) -> None:
        with self._lock:
            self.connections_closed += 1

    # ------------------------------------------------------- reporting
    @property
    def active_connections(self) -> int:
        return self.connections_opened - self.connections_closed

    def total_requests(self) -> int:
        with self._lock:
            return sum(op.requests for op in self.per_op.values())

    def op(self, opcode: int) -> OpMetrics:
        return self.per_op[opcode]

    def snapshot(self) -> dict:
        """A JSON-serialisable dict of everything (STATS opcode body)."""
        with self._lock:
            return {
                "ops": {
                    OPCODE_NAMES[opcode]: op.snapshot()
                    for opcode, op in self.per_op.items()
                    if op.requests
                },
                "stall_rejections": self.stall_rejections,
                "protocol_errors": self.protocol_errors,
                "connections_opened": self.connections_opened,
                "connections_closed": self.connections_closed,
                "active_connections": self.connections_opened
                - self.connections_closed,
            }

    def render(self) -> str:
        """Human-readable one-opcode-per-line summary."""
        snap = self.snapshot()
        lines = []
        for name, op in sorted(snap["ops"].items()):
            lat: Optional[dict] = op.get("latency")
            tail = ""
            if lat and lat.get("count"):
                tail = (
                    f"  p50={lat['p50_ms']:.3f}ms"
                    f" p95={lat['p95_ms']:.3f}ms p99={lat['p99_ms']:.3f}ms"
                )
            lines.append(
                f"{name:<8} n={op['requests']:<8} err={op['errors']:<4}"
                f" in={op['bytes_in']:<10} out={op['bytes_out']:<10}{tail}"
            )
        lines.append(
            f"connections: {snap['active_connections']} active"
            f" ({snap['connections_opened']} opened)"
            f"  stall_rejections: {snap['stall_rejections']}"
            f"  protocol_errors: {snap['protocol_errors']}"
        )
        return "\n".join(lines)
