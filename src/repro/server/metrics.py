"""Server-side observability: per-opcode counters and latency tails.

The motivation for the whole server subsystem is making
compaction-induced write pauses visible *at the network edge*, so the
metrics layer is built around tail latency: every request records into
a log-bucketed histogram whose p50/p95/p99 are queryable over the wire
via the STATS opcode.

The histogram itself now lives in :mod:`repro.obs` — the engine-wide
metrics subsystem generalised this module's original private
implementation — and this module re-exports it, so
``from repro.server.metrics import LatencyHistogram`` keeps working.
:class:`ServerMetrics` is likewise backed by a
:class:`repro.obs.MetricsRegistry` (counters under ``server.*`` and
``server.op.<NAME>.*``), while its ``snapshot()`` wire payload — the
STATS opcode body — is byte-for-byte what it always was.

Thread-safety: recording happens from the server's worker threads and
the asyncio loop; every obs metric carries its own lock, and a
registry-level snapshot is consistent per metric.
"""

from __future__ import annotations

from typing import Optional

from ..obs import LatencyHistogram, MetricsRegistry
from .protocol import OPCODE_NAMES

__all__ = ["LatencyHistogram", "OpMetrics", "ServerMetrics"]


class OpMetrics:
    """Counters for one opcode, backed by registry metrics."""

    __slots__ = ("_requests", "_errors", "_bytes_in", "_bytes_out", "latency")

    def __init__(self, registry: MetricsRegistry, op_name: str) -> None:
        prefix = f"server.op.{op_name}"
        self._requests = registry.counter(f"{prefix}.requests")
        self._errors = registry.counter(f"{prefix}.errors")
        self._bytes_in = registry.counter(f"{prefix}.bytes_in")
        self._bytes_out = registry.counter(f"{prefix}.bytes_out")
        self.latency = registry.latency_histogram(f"{prefix}.latency")

    # Back-compat int views (older code read these as plain attributes).
    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def errors(self) -> int:
        return self._errors.value

    @property
    def bytes_in(self) -> int:
        return self._bytes_in.value

    @property
    def bytes_out(self) -> int:
        return self._bytes_out.value

    def record(
        self, seconds: float, bytes_in: int, bytes_out: int, error: bool
    ) -> None:
        self._requests.inc()
        self._bytes_in.inc(bytes_in)
        self._bytes_out.inc(bytes_out)
        self.latency.record(seconds)
        if error:
            self._errors.inc()

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "latency": self.latency.snapshot(),
        }


class ServerMetrics:
    """All counters of one server instance.

    ``registry`` may be shared (e.g. the DB's
    :class:`~repro.obs.Observability` registry) so server- and
    engine-side metrics land in one snapshot; by default each server
    gets its own.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.per_op: dict[int, OpMetrics] = {
            opcode: OpMetrics(self.registry, name)
            for opcode, name in OPCODE_NAMES.items()
        }
        self._stall_rejections = self.registry.counter("server.stall_rejections")
        self._protocol_errors = self.registry.counter("server.protocol_errors")
        self._conns_opened = self.registry.counter("server.connections_opened")
        self._conns_closed = self.registry.counter("server.connections_closed")

    # ------------------------------------------------------- recording
    def record(
        self,
        opcode: int,
        seconds: float,
        bytes_in: int,
        bytes_out: int,
        error: bool = False,
    ) -> None:
        self.per_op[opcode].record(seconds, bytes_in, bytes_out, error)

    def record_stall_rejection(self) -> None:
        self._stall_rejections.inc()

    def record_protocol_error(self) -> None:
        self._protocol_errors.inc()

    def connection_opened(self) -> None:
        self._conns_opened.inc()

    def connection_closed(self) -> None:
        self._conns_closed.inc()

    # ------------------------------------------------------- reporting
    @property
    def stall_rejections(self) -> int:
        return self._stall_rejections.value

    @property
    def protocol_errors(self) -> int:
        return self._protocol_errors.value

    @property
    def connections_opened(self) -> int:
        return self._conns_opened.value

    @property
    def connections_closed(self) -> int:
        return self._conns_closed.value

    @property
    def active_connections(self) -> int:
        return self.connections_opened - self.connections_closed

    def total_requests(self) -> int:
        return sum(op.requests for op in self.per_op.values())

    def op(self, opcode: int) -> OpMetrics:
        return self.per_op[opcode]

    def snapshot(self) -> dict:
        """A JSON-serialisable dict of everything (STATS opcode body)."""
        return {
            "ops": {
                OPCODE_NAMES[opcode]: op.snapshot()
                for opcode, op in self.per_op.items()
                if op.requests
            },
            "stall_rejections": self.stall_rejections,
            "protocol_errors": self.protocol_errors,
            "connections_opened": self.connections_opened,
            "connections_closed": self.connections_closed,
            "active_connections": self.active_connections,
        }

    def render(self) -> str:
        """Human-readable one-opcode-per-line summary."""
        snap = self.snapshot()
        lines = []
        for name, op in sorted(snap["ops"].items()):
            lat: Optional[dict] = op.get("latency")
            tail = ""
            if lat and lat.get("count"):
                tail = (
                    f"  p50={lat['p50_ms']:.3f}ms"
                    f" p95={lat['p95_ms']:.3f}ms p99={lat['p99_ms']:.3f}ms"
                )
            lines.append(
                f"{name:<8} n={op['requests']:<8} err={op['errors']:<4}"
                f" in={op['bytes_in']:<10} out={op['bytes_out']:<10}{tail}"
            )
        lines.append(
            f"connections: {snap['active_connections']} active"
            f" ({snap['connections_opened']} opened)"
            f"  stall_rejections: {snap['stall_rejections']}"
            f"  protocol_errors: {snap['protocol_errors']}"
        )
        return "\n".join(lines)
